"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure reproductions are full simulations taking tens of seconds;
    re-running them for statistical timing would multiply the harness run
    time for no benefit, so every benchmark uses a single round.
    """

    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
