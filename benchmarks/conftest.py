"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.runner.ExperimentRunner` is shared by every
benchmark module in the session.  Figures 10-15 all plot the same underlying
(workload × configuration) runs, so the first module to execute pays for the
simulations and the rest replay them from the run cache; the format-study,
ablation and multiprogrammed benchmarks add their own runs on top.

Each benchmark prints the reproduced figure as a text table — the same rows
and series the paper plots — and asserts the *shape* relationships the paper
reports (who wins, roughly by how much), not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared full-scale experiment runner."""

    return ExperimentRunner()
