"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.runner.ExperimentRunner` is shared by every
benchmark module in the session, and its result store points at a directory
shared *across* sessions (``.repro_cache/benchmarks`` at the repository
root, overridable with ``REPRO_CACHE_DIR``).  Each benchmark runs one
registered :class:`~repro.experiments.study.Study` through its legacy
``figure_N`` wrapper; figures 10-15 compile to overlapping (workload ×
configuration) batches, so the first module to execute pays for the
simulations and the rest replay them from the store — and because *every*
simulation flows through the store (figure 16's multiprogrammed pairs and
the parameterised replacement study included, each keyed by spec hash +
code version), a *re-run* of the harness in a fresh process re-executes
**zero** simulations until the simulator's sources change.

Set ``REPRO_JOBS=N`` to run store misses in N worker processes, and
``REPRO_PREWARM=1`` to batch-submit the full figure 10-15 matrix before any
benchmark runs (useful with ``REPRO_JOBS`` to fill the store in parallel;
it shifts the simulation cost out of the individual benchmark timings).

Each benchmark prints the reproduced figure as a text table — the same rows
and series the paper plots — and asserts the *shape* relationships the paper
reports (who wins, roughly by how much), not absolute numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import main_matrix_specs
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import CACHE_DIR_ENV, ResultStore

#: Store shared by every benchmark session (unless REPRO_CACHE_DIR says otherwise).
_SHARED_CACHE_DIR = Path(__file__).resolve().parent.parent / ".repro_cache" / "benchmarks"


@pytest.fixture(scope="session")
def store() -> ResultStore:
    """The session-spanning persistent result store."""

    return ResultStore(os.environ.get(CACHE_DIR_ENV, _SHARED_CACHE_DIR))


@pytest.fixture(scope="session")
def runner(store) -> ExperimentRunner:
    """The shared full-scale experiment runner."""

    # resolve_jobs validates REPRO_JOBS up front: a typo'd value fails the
    # session with one clear line instead of a traceback mid-benchmark.
    runner = ExperimentRunner(
        jobs=resolve_jobs(),
        store=store,
    )
    if os.environ.get("REPRO_PREWARM") == "1":
        runner.submit(main_matrix_specs(runner))
    return runner
