"""Figure 10: speedup of each prefetcher over the stride-only baseline."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_10_speedup(benchmark, runner):
    result = run_once(benchmark, figures.figure_10_speedup, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triangel ≈ Triangel-Bloom > Triage-Deg4-Look2 > Triage-Deg4
    # > Triage > baseline (figure 10's geomean bars).
    assert summary["triangel"] > 1.0
    assert summary["triangel"] > summary["triage"]
    assert summary["triangel"] > summary["triage-deg4"]
    assert summary["triage-deg4-look2"] >= summary["triage-deg4"] * 0.97
    assert summary["triage-deg4"] >= summary["triage"] * 0.97
    assert abs(summary["triangel"] - summary["triangel-bloom"]) < 0.35
