"""Figure 11: normalised DRAM traffic (lower is better)."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_11_dram_traffic(benchmark, runner):
    result = run_once(benchmark, figures.figure_11_dram_traffic, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triangel raises DRAM traffic far less than any Triage
    # configuration, and Triage-Deg4 is the worst offender.
    assert summary["triangel"] < summary["triage"]
    assert summary["triangel"] < summary["triage-deg4"]
    assert summary["triage-deg4"] >= summary["triage"] * 0.98
    assert summary["triangel"] < 1.25
