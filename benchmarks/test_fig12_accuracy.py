"""Figure 12: temporal-prefetch accuracy (used before L2 eviction)."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_12_accuracy(benchmark, runner):
    result = run_once(benchmark, figures.figure_12_accuracy, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triangel (and Triangel-Bloom) are substantially more
    # accurate than every Triage configuration.
    assert summary["triangel"] > summary["triage"]
    assert summary["triangel"] > summary["triage-deg4"]
    assert summary["triangel"] > 0.5
