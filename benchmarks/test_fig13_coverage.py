"""Figure 13: coverage of the baseline's L2 demand misses."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_13_coverage(benchmark, runner):
    result = run_once(benchmark, figures.figure_13_coverage, runner)
    print()
    print(result.rendered)

    table = result.table
    summary = result.geomean_row()
    # Paper shape: overall coverage favours Triangel, while on the
    # poor-quality streams (Astar) Triangel deliberately declines to
    # prefetch, so its coverage there is at or near zero.
    assert summary["triangel"] >= summary["triage"]
    assert table["astar"]["triangel"] < 0.2
    assert table["xalan"]["triangel"] > 0.5
