"""Figure 14: normalised L3 accesses, including Markov-table accesses."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_14_l3_traffic(benchmark, runner):
    result = run_once(benchmark, figures.figure_14_l3_traffic, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triage-Deg4 multiplies L3 traffic; Triangel, despite also
    # reaching degree 4, stays near (or below) degree-1 Triage thanks to its
    # filtering and the Metadata Reuse Buffer; removing the MRB
    # (Triangel-NoMRB) gives the redundant accesses back.
    assert summary["triage-deg4"] > summary["triage"]
    assert summary["triangel"] < summary["triage-deg4"]
    assert summary["triangel"] <= summary["triage"] * 1.1
    assert summary["triangel-nomrb"] > summary["triangel"]
