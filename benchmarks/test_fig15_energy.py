"""Figure 15: normalised DRAM+L3 dynamic energy (25:1 weighting, §6.2)."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_15_energy(benchmark, runner):
    result = run_once(benchmark, figures.figure_15_energy, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triangel's energy overhead is far below Triage's, and
    # Triage-Deg4 is the most expensive configuration.
    assert summary["triangel"] < summary["triage"]
    assert summary["triage-deg4"] > summary["triage"] * 0.98
    assert summary["triangel"] < 1.3
    assert summary["triangel"] <= summary["triangel-nomrb"] * 1.02
