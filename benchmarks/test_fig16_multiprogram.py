"""Figure 16: multiprogrammed-pair speedups (shared L3, Markov partition, DRAM)."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_16_multiprogram(benchmark, runner):
    result = run_once(benchmark, figures.figure_16_multiprogram, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: Triangel keeps most of its single-core gains when sharing
    # the memory system; Triage-Deg4's indiscriminate aggression means it does
    # not pull ahead of plain Triage under bandwidth constraint.
    assert summary["triangel"] > 1.0
    assert summary["triangel"] > summary["triage"]
    assert summary["triage-deg4"] < summary["triangel"]
