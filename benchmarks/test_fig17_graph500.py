"""Figure 17: Graph500 search — slowdown and DRAM traffic for an adversarial workload."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_17_graph500(benchmark, runner):
    result = run_once(benchmark, figures.figure_17_graph500, runner)
    print()
    print(result.rendered)

    table = result.table
    # Paper shape: the Triage configurations slow Graph500 down and inflate
    # DRAM traffic markedly on both inputs, because they grow the Markov
    # partition for a workload with no temporal correlation; Triangel's Set
    # Dueller keeps both effects small, and on the too-large s21-like input
    # Triangel barely activates at all.
    for workload in ("graph500_s16", "graph500_s21"):
        slowdown = table[f"{workload} slowdown"]
        traffic = table[f"{workload} dram"]
        assert slowdown["triage"] >= 1.0
        assert traffic["triage"] > traffic["triangel"]
        assert slowdown["triangel"] <= slowdown["triage"] + 0.02
        assert traffic["triangel"] < 1.3
    assert table["graph500_s21 dram"]["triage-deg4"] > 1.3
