"""Figure 18: Triage speedup under different Markov-table entry formats."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_18_metadata_formats(benchmark, runner):
    result = run_once(benchmark, figures.figure_18_metadata_formats, runner)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # Paper shape: storing the full 42-bit address beats every LUT-compressed
    # variant; the 16-way LUT performs like the fully-associative LUT; the
    # ideal (impossible) LUT is an upper bound on the 32-bit formats; and the
    # fragmented 10-bit-offset variant is the worst configuration.
    assert summary["42-bit"] >= summary["32-bit-LUT-16-way"] * 0.98
    assert summary["32-bit-ideal"] >= summary["32-bit-LUT-16-way"] * 0.98
    assert abs(summary["32-bit-LUT-16-way"] - summary["32-bit-LUT-1024-way"]) < 0.2
    assert summary["32-bit-LUT-16-way-10b-offset"] <= summary["32-bit-LUT-16-way"] * 1.02
    assert summary["32-bit-LUT-16-way-10b-offset"] <= summary["42-bit"]
