"""Figure 19: Triage LUT accuracy with 11-bit vs 10-bit offsets."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_19_lut_accuracy(benchmark, runner):
    result = run_once(benchmark, figures.figure_19_lut_accuracy, runner)
    print()
    print(result.rendered)

    table = result.table
    summary = result.geomean_row()
    # Paper shape: accuracy through the LUT is workload-dependent — good for
    # the low-fragmentation workloads (GCC, Sphinx), poor for the large
    # fragmented footprints — and shrinking the offset to 10 bits (more
    # fragmentation pressure) makes it worse overall.
    assert summary["10-bit"] <= summary["11-bit"] * 1.05
    assert table["gcc_166"]["11-bit"] > 0.6
    assert table["sphinx3"]["11-bit"] > 0.6
    assert table["mcf"]["11-bit"] < table["gcc_166"]["11-bit"]
