"""Figure 20: ablation — progressively adding Triangel's mechanisms to Triage-Deg4."""

from bench_utils import run_once

from repro.experiments import figures


def test_figure_20_ablation(benchmark, runner):
    result = run_once(benchmark, figures.figure_20_ablation, runner)
    print()
    print(result.rendered)

    speedup = result.extras["speedup"]["geomean"]
    traffic = result.extras["dram_traffic"]["geomean"]
    # Paper shape: the full ladder ends faster *and* with far less DRAM
    # traffic than the Triage-Deg4 starting point; the accuracy gate
    # (BasePatternConf) is the step that slashes traffic; HighPatternConf
    # deliberately trades a little speed for further traffic reduction.
    assert speedup["+HighPatternConf"] > speedup["Triage-Deg-4"]
    assert traffic["+HighPatternConf"] < traffic["Triage-Deg-4"]
    assert traffic["+BasePatternConf"] < traffic["+Triangel Metadata"]
    assert traffic["+HighPatternConf"] <= traffic["+ReuseConf"] * 1.05
