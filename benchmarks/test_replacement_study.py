"""Section 3.3: Markov replacement policy study under constrained capacity.

The paper observes that HawkEye only pays off over LRU/RRIP when the Markov
table's capacity is artificially limited (footnote 4); with the full 1 MiB
budget the policies are within noise of each other.  This benchmark runs the
constrained version of that comparison.
"""

from bench_utils import run_once

from repro.experiments import figures


def test_replacement_study_constrained_capacity(benchmark, runner):
    result = run_once(benchmark, figures.replacement_study, runner, 768)
    print()
    print(result.rendered)

    summary = result.geomean_row()
    # All three policies must produce working prefetchers; under constrained
    # capacity the smarter policies should not lose to LRU by much (the paper
    # reports HawkEye ahead, with LRU worst).
    for configuration, value in summary.items():
        assert value > 0.85, f"{configuration} collapsed: {value}"
    assert summary["triage-hawkeye"] >= summary["triage-lru"] * 0.9
