"""Table 1: Triangel's dedicated-storage budget (~17.6 KiB)."""

import pytest
from bench_utils import run_once

from repro.experiments import figures


def test_table_1_structure_sizes(benchmark):
    result = run_once(benchmark, figures.table_1_structure_sizes)
    print()
    print(result.rendered)

    table = result.table
    # Paper's table 1 values, allowing small rounding slack on the per-field
    # bit-width reconstruction.
    assert table["Training Table"]["bytes"] == pytest.approx(7808, rel=0.02)
    assert table["History Sampler"]["bytes"] == pytest.approx(6080, rel=0.05)
    assert table["Second-Chance Sampler"]["bytes"] == pytest.approx(584, rel=0.10)
    assert table["Metadata Reuse Buffer"]["bytes"] == pytest.approx(1472, rel=0.02)
    assert table["Set Dueller"]["bytes"] == pytest.approx(2106, rel=0.05)
    assert table["Total"]["bytes"] == pytest.approx(17.6 * 1024, rel=0.08)
