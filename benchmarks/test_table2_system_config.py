"""Table 2: the core and memory configuration used for the experiments."""

from bench_utils import run_once

from repro.experiments import figures
from repro.sim.config import SystemConfig


def test_table_2_paper_configuration(benchmark):
    result = run_once(benchmark, figures.table_2_system_config, SystemConfig.paper())
    print()
    print(result.rendered)

    description = result.extras["description"]
    assert "64 KiB" in description["L1 DCache"]
    assert "512 KiB" in description["L2 Cache"]
    assert "2048 KiB" in description["L3 Cache"]
    assert "stride" in description["L1 DCache"]
    assert "25" in description["Markov lookup"]


def test_table_2_scaled_configuration(benchmark):
    result = figures.table_2_system_config(SystemConfig.scaled())
    print()
    print(result.rendered)
    assert "sim-scale" in result.title
