#!/usr/bin/env python3
"""Ablation study: build Triangel up from Triage-Deg4 one mechanism at a time.

Reproduces the structure of the paper's figure 20 on a configurable subset of
workloads: starting from aggressive Triage (degree 4), each step adds one of
Triangel's mechanisms — lookahead-2 training, the 42-bit metadata format,
the BasePatternConf accuracy gate, the Second-Chance Sampler, the Metadata
Reuse Buffer, the Set Dueller, ReuseConf and finally HighPatternConf — and
the speedup/DRAM-traffic effect of each addition is printed.

The whole experiment is the registered ``fig20`` :class:`~repro.experiments.
study.Study` with its workload axis overridden — no harness code, and every
run persists in the shared result store.  The same override is available
from the CLI::

    python -m repro study run fig20 --workloads xalan,omnet

Run with::

    python examples/ablation_study.py                # xalan + omnet (quicker)
    python examples/ablation_study.py mcf astar      # any workload subset
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner
from repro.experiments.configs import ABLATION_LADDER
from repro.experiments.studies import STUDIES
from repro.workloads.registry import SPEC_WORKLOADS

DEFAULT_WORKLOADS = ["xalan", "omnet"]


def main() -> None:
    requested = [name for name in sys.argv[1:] if name in SPEC_WORKLOADS]
    workloads = requested or DEFAULT_WORKLOADS
    study = STUDIES.get("fig20").overridden(workloads=workloads)

    print(f"Ablation ladder over: {', '.join(workloads)}")
    print("Steps:")
    for index, step in enumerate(ABLATION_LADDER, start=1):
        print(f"  {index}. {step}")
    print()

    result = study.run(ExperimentRunner())
    print(result.rendered)
    print()
    print(
        "Expected shape (paper, figure 20): the accuracy gate (BasePatternConf)\n"
        "is the step that slashes DRAM traffic; the Second-Chance Sampler wins\n"
        "back the coverage it costs on loosely ordered workloads; the Set\n"
        "Dueller trims traffic further; HighPatternConf trades a little speed\n"
        "for the final traffic reduction."
    )


if __name__ == "__main__":
    main()
