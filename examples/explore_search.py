#!/usr/bin/env python3
"""Design-space search: screen on sampled windows, confirm on the full trace.

The end-to-end ``repro.experiments.explore`` workflow:

1. declare a search space — Triage replacement policies × metadata-cache
   capacities — over the Xalancbmk-like workload;
2. run a successive-halving search: every candidate screens on a sampled
   prefix window, survivors replay on longer windows, and the last one is
   confirmed on the full trace;
3. print the Pareto front (coverage/accuracy vs metadata traffic) and
   check the full-trace confirmation agrees with the screen's top pick.

Every evaluated point goes through the executor and the result store, so
re-running this script replays everything from ``.repro_cache/`` without
executing a single simulation.

Run with::

    PYTHONPATH=src python examples/explore_search.py
"""

from __future__ import annotations

from repro.experiments import SearchSpace, render_search, run_search


def main() -> int:
    space = SearchSpace.create(
        workloads=("xalan",),
        configurations=("triage-lru", "triage-srrip"),
        param_grid={"max_entries": (64, 4096)},
    )
    print(
        f"Searching {len(space.candidates())} candidates "
        "(screen windows first, full trace last)...\n"
    )
    result = run_search(
        space,
        strategy="halving",
        seed=0,
        trace_overrides={"length": 8000},
        screen_accesses=4000,
        confirm=2,
    )
    print(render_search(result))

    if not result.screen_confirms:
        print("\nunexpected: the screen's top pick lost the full-trace confirmation")
        return 1
    print(
        "\nExpected shape (paper, section 3.3): the sampled screen eliminates the"
        "\nsmall-capacity candidates on half the trace, and the two surviving"
        "\nlarge-cache policies confirm with identical metrics — on this workload"
        "\nmetadata-cache capacity, not replacement policy, decides coverage."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
