#!/usr/bin/env python3
"""Adversarial workload study: Graph500 breadth-first search (paper §6.4).

Graph500 search has essentially no temporal correlation, so a well-behaved
temporal prefetcher should recognise that and stay out of the way.  This
example reproduces figure 17: it runs BFS traces for the two scaled inputs
(``s16``-like, which fits the Markov table but barely repeats, and
``s21``-like, whose footprint dwarfs it) under Triage and Triangel, and
reports slowdown and DRAM traffic relative to the stride-only baseline.

Run with::

    python examples/graph500_adversarial.py
"""

from __future__ import annotations

from repro import ExperimentRunner
from repro.workloads.registry import GRAPH500_WORKLOADS

CONFIGURATIONS = ["triage", "triage-deg4", "triangel", "triangel-bloom"]


def main() -> None:
    runner = ExperimentRunner()
    print("Graph500 search: an adversarial workload for temporal prefetching\n")
    for workload in GRAPH500_WORKLOADS:
        baseline = runner.run(workload, "baseline")
        trace = runner.trace_for(workload)
        print(
            f"{workload}: {trace.metadata['vertices']} vertices, "
            f"{trace.metadata['edges']} edges, footprint "
            f"{trace.metadata['footprint_lines']} lines"
        )
        header = f"  {'configuration':<16} {'slowdown':>9} {'dram traffic':>13} {'markov ways':>12}"
        print(header)
        print("  " + "-" * (len(header) - 2))
        for configuration in CONFIGURATIONS:
            stats = runner.run(workload, configuration)
            speedup = stats.speedup_relative_to(baseline)
            slowdown = 1.0 / speedup if speedup else float("inf")
            print(
                f"  {configuration:<16} {slowdown:>9.3f} "
                f"{stats.dram_traffic_relative_to(baseline):>13.3f} "
                f"{stats.markov_final_ways:>12d}"
            )
        print()

    print(
        "Expected shape (paper, figure 17): the Triage configurations slow the\n"
        "workload down and inflate DRAM traffic because they grow the Markov\n"
        "partition regardless of usefulness; Triangel's Set Dueller keeps the\n"
        "partition small, and on the too-large input Triangel barely activates."
    )


if __name__ == "__main__":
    main()
