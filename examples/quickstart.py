#!/usr/bin/env python3
"""Quickstart: simulate one workload under the baseline, Triage and Triangel.

This is the smallest end-to-end use of the library's public API:

1. generate a workload trace (here the Xalancbmk-like SPEC stand-in);
2. build the scaled system configuration;
3. run it under three prefetcher configurations;
4. print the metrics the paper reports (speedup, DRAM traffic, accuracy,
   coverage).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentRunner

CONFIGURATIONS = ["baseline", "triage", "triage-deg4", "triangel"]


def main() -> None:
    runner = ExperimentRunner()
    workload = "xalan"
    print(f"Simulating {workload!r} under {len(CONFIGURATIONS)} configurations...")
    print("(the first run generates the trace; each simulation takes a few seconds)\n")

    baseline = runner.run(workload, "baseline")
    header = f"{'configuration':<14} {'speedup':>8} {'dram':>7} {'accuracy':>9} {'coverage':>9}"
    print(header)
    print("-" * len(header))
    for configuration in CONFIGURATIONS:
        stats = runner.run(workload, configuration)
        print(
            f"{configuration:<14} "
            f"{stats.speedup_relative_to(baseline):>8.3f} "
            f"{stats.dram_traffic_relative_to(baseline):>7.3f} "
            f"{stats.accuracy:>9.3f} "
            f"{stats.coverage_relative_to(baseline):>9.3f}"
        )

    print(
        "\nExpected shape (paper, figure 10/11): Triangel is both the fastest and"
        "\nthe cheapest in DRAM traffic; Triage-Deg4 is faster than Triage but"
        "\npays for it in traffic."
    )


if __name__ == "__main__":
    main()
