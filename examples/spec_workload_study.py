#!/usr/bin/env python3
"""SPEC-like workload study: reproduce the figure 10 / figure 11 comparison.

Runs every SPEC-like workload under the paper's five main configurations and
prints the speedup and normalised-DRAM-traffic tables exactly as the
benchmark harness does, plus a short per-workload commentary relating the
result to the paper's analysis (section 6.1).

Run with::

    python examples/spec_workload_study.py            # all 7 workloads (slow)
    python examples/spec_workload_study.py xalan mcf   # a subset
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner
from repro.analysis.metrics import add_geomean_row
from repro.analysis.report import render_figure
from repro.experiments.configs import MAIN_SERIES
from repro.workloads.registry import SPEC_WORKLOADS

COMMENTARY = {
    "xalan": "strict temporal repetition: everyone gains, Triangel most",
    "omnet": "loose (out-of-order) repeats: the Second-Chance Sampler pays off",
    "mcf": "one stream exceeds the Markov capacity: ReuseConf saves the space",
    "gcc_166": "temporal + stride mix near the L3 capacity: Set Dueller territory",
    "astar": "poor-quality streams: Triangel declines to prefetch",
    "soplex_3500": "poor-quality streams plus strides: filtering again",
    "sphinx3": "small loose sequences: accurate for everyone, Triangel cheapest",
}


def main() -> None:
    requested = [name for name in sys.argv[1:] if name in SPEC_WORKLOADS]
    workloads = requested or list(SPEC_WORKLOADS)
    runner = ExperimentRunner()

    print(f"Workloads: {', '.join(workloads)}")
    print(f"Configurations: {', '.join(MAIN_SERIES)}\n")

    speedup = runner.normalized_matrix(workloads, list(MAIN_SERIES), "speedup")
    traffic = runner.normalized_matrix(workloads, list(MAIN_SERIES), "dram_traffic")

    print(render_figure("Speedup over stride-only baseline", speedup, MAIN_SERIES))
    print()
    print(render_figure("Normalised DRAM traffic (lower is better)", traffic, MAIN_SERIES))
    print()
    print("Per-workload behaviour (paper section 6.1):")
    for workload in workloads:
        print(f"  {workload:<12} {COMMENTARY[workload]}")


if __name__ == "__main__":
    main()
