"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``python setup.py develop`` works on offline machines that lack the
``wheel`` package (PEP 517 editable installs require it, and pip refuses
``--no-use-pep517`` without it); the legacy develop-mode path used through
this shim does not.  Anywhere ``wheel`` is available — CI, normal dev
machines — plain ``pip install -e .`` works.
"""

from setuptools import setup

setup()
