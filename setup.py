"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e . --no-build-isolation --no-use-pep517`` works on
offline machines that lack the ``wheel`` package (PEP 517 editable installs
require it); the legacy develop-mode path used through this shim does not.
"""

from setuptools import setup

setup()
