"""repro — a pure-Python reproduction of Triangel (ISCA 2024).

This package implements, from scratch, the systems described in
"Triangel: A High-Performance, Accurate, Timely On-Chip Temporal Prefetcher"
(Ainsworth & Mukhanov, ISCA 2024):

* the **Triangel** temporal prefetcher itself (:mod:`repro.core`) — History
  Sampler, Second-Chance Sampler, Metadata Reuse Buffer, Set Dueller and the
  aggression-control policy built on them;
* the fixed **Triage** baseline it is compared against (:mod:`repro.triage`),
  including the Markov metadata formats and Bloom-filter sizing studied in
  the paper's section 3;
* the **memory-system substrate** both run on (:mod:`repro.memory`,
  :mod:`repro.sim`): a three-level cache hierarchy with a partitioned L3,
  DRAM traffic/energy accounting and an analytic timing model;
* **workload generators** (:mod:`repro.workloads`) standing in for the SPEC
  CPU2006 traces and Graph500 inputs of the evaluation;
* a **trace I/O layer** (:mod:`repro.traces`) that records, imports
  (ChampSim-style LS traces) and samples on-disk packed access streams,
  which run as first-class ``trace:<name>`` workloads;
* two **execution kernels** (:mod:`repro.sim.kernel`): the readable
  reference engine and a fused, allocation-free columnar fast kernel —
  bit-identical by contract, benchmarked by ``repro bench``;
* an **experiment harness** (:mod:`repro.experiments`) that regenerates every
  figure and table of the paper's evaluation section;
* a **service layer** (:mod:`repro.service`) — the scheduling core behind
  both the one-shot CLI and the ``repro serve`` HTTP/JSON daemon, where
  many concurrent clients share one warm result store — with a thin Python
  client (:mod:`repro.client`).

Quick start::

    from repro import ExperimentRunner, figures

    runner = ExperimentRunner()
    result = figures.figure_10_speedup(runner)
    print(result.rendered)
"""

from repro.client import ServiceClient
from repro.core import TriangelConfig, TriangelPrefetcher
from repro.experiments import figures
from repro.experiments.configs import available_configurations, build_prefetchers
from repro.experiments.runner import ExperimentRunner
from repro.experiments.studies import STUDIES
from repro.experiments.study import Study
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.kernel import KERNELS, resolve_kernel, run_simulation
from repro.sim.multiprogram import MultiProgramSimulator
from repro.sim.stream import AccessColumns, access_columns
from repro.traces import (
    PackedTrace,
    import_champsim_trace,
    load_trace,
    record_workload,
    sample_systematic,
    sample_window,
    save_trace,
)
from repro.service.scheduler import Scheduler
from repro.triage.triage import TriageConfig, TriagePrefetcher
from repro.workloads.registry import available_workloads, generate_workload

__version__ = "1.0.0"

__all__ = [
    "TriangelConfig",
    "TriangelPrefetcher",
    "TriageConfig",
    "TriagePrefetcher",
    "StridePrefetcher",
    "MemoryHierarchy",
    "SystemConfig",
    "Simulator",
    "MultiProgramSimulator",
    "KERNELS",
    "resolve_kernel",
    "run_simulation",
    "AccessColumns",
    "access_columns",
    "ExperimentRunner",
    "STUDIES",
    "Scheduler",
    "ServiceClient",
    "Study",
    "figures",
    "available_configurations",
    "build_prefetchers",
    "available_workloads",
    "generate_workload",
    "PackedTrace",
    "load_trace",
    "save_trace",
    "import_champsim_trace",
    "record_workload",
    "sample_window",
    "sample_systematic",
    "__version__",
]
