"""Analysis helpers: metric math and report rendering."""

from repro.analysis.metrics import geomean, normalize_against_baseline, summarize_ratio
from repro.analysis.report import format_results_table, render_figure

__all__ = [
    "geomean",
    "normalize_against_baseline",
    "summarize_ratio",
    "format_results_table",
    "render_figure",
]
