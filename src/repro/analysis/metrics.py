"""Metric math shared by the experiment harness and the benchmarks.

The paper summarises per-workload results with geometric means (its headline
"26.4% geomean speedup" numbers), and every traffic/energy figure is
normalised against the stride-only baseline.  These helpers implement that
arithmetic once so every figure reproduction uses identical conventions.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.sim.stats import SimulationStats


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 1.0 for an empty input."""

    values = [float(value) for value in values]
    if not values:
        return 1.0
    if any(value <= 0 for value in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(value) for value in values) / len(values))


#: The relative metrics a run can be normalised on, mapped to the
#: corresponding :class:`SimulationStats` method.
RELATIVE_METRICS = {
    "speedup": SimulationStats.speedup_relative_to,
    "dram_traffic": SimulationStats.dram_traffic_relative_to,
    "l3_accesses": SimulationStats.l3_accesses_relative_to,
    "energy": SimulationStats.energy_relative_to,
    "coverage": SimulationStats.coverage_relative_to,
}


def normalize_against_baseline(
    results: Mapping[str, Mapping[str, SimulationStats]],
    metric: str,
    baseline_config: str = "baseline",
) -> dict[str, dict[str, float]]:
    """Normalise a (workload × configuration) result matrix against a baseline.

    ``results[workload][config]`` must be the :class:`SimulationStats` of one
    run.  Absolute metrics (``accuracy``) are returned as-is; relative
    metrics are computed against the same workload's ``baseline_config`` run.
    """

    normalized: dict[str, dict[str, float]] = {}
    for workload, per_config in results.items():
        normalized[workload] = {}
        baseline = per_config.get(baseline_config)
        for config, stats in per_config.items():
            if metric == "accuracy":
                normalized[workload][config] = stats.accuracy
            elif metric in RELATIVE_METRICS:
                if baseline is None:
                    raise KeyError(
                        f"workload {workload!r} has no {baseline_config!r} run to normalise against"
                    )
                normalized[workload][config] = RELATIVE_METRICS[metric](stats, baseline)
            else:
                raise ValueError(
                    f"unknown metric {metric!r}; expected one of "
                    f"{sorted(RELATIVE_METRICS) + ['accuracy']}"
                )
    return normalized


def summarize_ratio(per_workload: Mapping[str, float]) -> float:
    """Geomean summary of a per-workload relative metric (the figures' last bar).

    Coverage and accuracy can legitimately be zero, which a geometric mean
    cannot represent; those are summarised with an arithmetic mean instead,
    mirroring how a zero-coverage workload contributes to the paper's bars.
    """

    values = list(per_workload.values())
    if not values:
        return 1.0
    if any(value <= 0 for value in values):
        return sum(values) / len(values)
    return geomean(values)


def add_geomean_row(
    table: Mapping[str, Mapping[str, float]], label: str = "geomean"
) -> dict[str, dict[str, float]]:
    """Return a copy of a per-workload table with a summary row appended."""

    configs: set[str] = set()
    for per_config in table.values():
        configs.update(per_config)
    result = {workload: dict(per_config) for workload, per_config in table.items()}
    summary = {}
    for config in configs:
        summary[config] = summarize_ratio(
            {workload: per_config[config] for workload, per_config in table.items() if config in per_config}
        )
    result[label] = summary
    return result
