"""Plain-text rendering of the reproduced figures and tables.

The paper's evaluation figures are bar charts over (workload ×
configuration).  The benchmark harness reproduces them as aligned text
tables — the same rows and series, printable in a terminal and easy to diff
against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_results_table(
    table: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    row_order: Sequence[str] | None = None,
    value_format: str = "{:.3f}",
    row_header: str = "workload",
) -> str:
    """Format a (row × column) mapping of floats as an aligned text table."""

    rows = list(row_order) if row_order is not None else list(table.keys())
    header_cells = [row_header] + list(columns)
    body: list[list[str]] = []
    for row in rows:
        per_column = table.get(row, {})
        cells = [row]
        for column in columns:
            value = per_column.get(column)
            cells.append("-" if value is None else value_format.format(value))
        body.append(cells)

    widths = [
        max(len(header_cells[index]), *(len(line[index]) for line in body)) if body else len(header_cells[index])
        for index in range(len(header_cells))
    ]
    lines = []
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header_cells, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for cells in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def render_figure(
    title: str,
    table: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    row_order: Sequence[str] | None = None,
    note: str | None = None,
) -> str:
    """Render one reproduced figure: a title, the table, and an optional note."""

    parts = [title, "=" * len(title)]
    parts.append(format_results_table(table, columns, row_order))
    if note:
        parts.append("")
        parts.append(note)
    return "\n".join(parts)
