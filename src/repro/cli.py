"""Command-line interface for the Triangel reproduction.

The subcommands cover the common workflows without writing any Python:

``list``
    Show the available workloads, prefetcher configurations (parameterised
    ones with their parameter signatures), and registered studies.
``run``
    Simulate one workload under one (or several) configurations and print
    the paper's headline metrics, normalised against the stride-only
    baseline.
``figure``
    Regenerate one of the paper's figures or tables and print it as a text
    table (the same output the benchmark harness produces).
``study``
    Work with the declarative study registry: ``list`` the registered
    studies, ``describe`` one study's axes and compiled batch, or ``run``
    a study — optionally with its axes overridden (``--workloads``,
    ``--configs``, and ``--set key=value`` for the system scale, metric, or
    any configuration parameter).  ``run --all`` regenerates every study;
    against a warm store that re-executes zero simulations.
``trace``
    Work with on-disk packed traces (the ``.rtrc`` format of
    :mod:`repro.traces`): ``record`` a registered generator's stream to a
    file, ``import`` a ChampSim-style LS text/gzip trace, ``info`` a
    file's header and footprint, or ``sample`` a window / systematic
    subsample into a new file.  Files on the trace search path (the
    ``REPRO_TRACE_DIR`` environment variable, default ``./traces``)
    resolve as first-class ``trace:<name>`` workloads everywhere a
    workload name is accepted — ``repro run``, ``--workloads`` study
    overrides, multiprogram pairs.
``explore``
    Search the configuration design space (:mod:`repro.experiments.
    explore`): ``run`` a grid, seeded-random, or successive-halving search
    — halving screens candidates on cheap sampled trace windows before
    promoting survivors to full-trace confirmation — ``describe`` the
    compiled plan without simulating, or ``resume`` a killed search from
    its directory's manifest.  Every evaluated point is a normal spec in
    the result store, so resumed (or re-run) searches replay completed
    evaluations and re-execute nothing; results land as a Pareto front of
    coverage/accuracy against metadata traffic (``front.json``) plus a
    provenance log (``log.jsonl``).  Axis overrides (``--workloads``,
    ``--configs``, ``--set max_entries=64,4096``, ``--set scale=0.5,1``)
    are validated up front, exactly as ``study run`` overrides are.
``bench``
    Measure simulated accesses/second under both execution kernels (the
    readable reference engine and the fused columnar fast kernel of
    :mod:`repro.sim.kernel`) on a fixed synthetic workload and a recorded
    ``.rtrc`` trace, verify the two agree bit-for-bit, and write the
    ``BENCH_engine.json`` performance record.
``cache``
    Inspect (``show``) or empty (``clear``) the persistent result store
    that the simulating subcommands read and write under ``.repro_cache/``.
    ``show`` breaks the entries down by record kind (plain single-core
    runs, parameterised runs such as the replacement study, and
    multiprogram runs) and lists the latter two individually;
    ``show --json`` prints the same machine-readable statistics the
    daemon's ``GET /store/stats`` endpoint serves.
``serve``
    Run the simulation service daemon (:mod:`repro.service`): a
    long-running HTTP/JSON API over the shared result store, with a
    priority job scheduler, per-client quotas and cooperative
    cancellation.  Every client dedupes against the daemon's warm store,
    so concurrent submissions of overlapping studies execute each unique
    simulation at most once.
``submit`` / ``status`` / ``result`` / ``cancel``
    Talk to a running daemon (``--url``, or ``REPRO_SERVE_URL``):
    ``submit`` a run/multiprogram/study/explore job — with the same axis
    overrides ``study run`` takes — and optionally ``--wait`` for it;
    ``status`` polls a job's state and progress events; ``result``
    fetches the reduced tables plus the run manifest (spec digests,
    code-version salt, store provenance); ``cancel`` stops a queued job.

``run``, ``figure`` and ``study run`` accept ``--jobs N`` to execute
simulation matrices in N worker processes (default: the ``REPRO_JOBS``
environment variable, or 1), ``--cache-dir`` to relocate
the result store (the ``REPRO_CACHE_DIR`` environment variable does the
same), and ``--kernel reference|fast|fast-sharded`` to pick the execution
kernel (the ``REPRO_KERNEL`` environment variable does the same; the
kernels produce bit-identical statistics, so this never changes any
result).  ``--shards K`` (or ``REPRO_SHARDS``) splits each single-core
replay into K trace-window shards that run as sibling pool tasks under
``--jobs``, each re-warming over ``--shard-overlap`` accesses of its
predecessor's tail before sampling (see :mod:`repro.sim.shard`; sharded
runs key the store separately from sequential ones).  A second invocation
with the same parameters replays completed simulations from the store
instead of re-running them.

Examples::

    python -m repro list
    python -m repro run xalan --config triangel --config triage
    python -m repro run mcf --trace-length 20000 --max-accesses 10000
    python -m repro figure fig10 --jobs 4
    python -m repro figure table1
    python -m repro study list
    python -m repro study describe fig16
    python -m repro study run fig10 --workloads mcf,astar --jobs 4
    python -m repro study run replacement-study --set max_entries=2048
    python -m repro study run --all
    python -m repro trace record mcf --length 20000
    python -m repro trace import champsim_dump.trace.gz --name leela
    python -m repro trace info trace:leela
    python -m repro trace sample trace:leela --window 5000:20000 --name leela_hot
    python -m repro study run fig10 --workloads trace:leela --configs triangel
    python -m repro explore describe --set max_entries=64,256,1024
    python -m repro explore run --strategy halving --budget 12 --jobs 4
    python -m repro explore run --strategy random --seed 7 --set scale=0.5,1.0
    python -m repro explore resume --dir .repro_search
    python -m repro run xalan --kernel reference --no-cache
    python -m repro bench
    python -m repro cache show
    python -m repro cache show --json
    python -m repro cache clear
    python -m repro serve --port 8642 --jobs 4
    python -m repro submit study fig10 --workloads xalan --configs triangel --wait
    python -m repro status job-1a2b3c4d5e6f
    python -m repro result job-1a2b3c4d5e6f --json
    python -m repro cancel job-1a2b3c4d5e6f
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro.client import ServiceClient, ServiceError
from repro.experiments import figures
from repro.experiments.configs import configuration_signatures
from repro.experiments.parallel import resolve_jobs, resolve_shards
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore, default_store
from repro.experiments.studies import STUDIES
from repro.experiments.study import parse_assignments
from repro.sim.config import SystemConfig
from repro.workloads.registry import available_workloads

#: Figure/table name → harness function.  Functions that take a runner get
#: one; the table reproductions are analytic and take none.
FIGURE_COMMANDS: dict[str, Callable] = {
    "fig10": figures.figure_10_speedup,
    "fig11": figures.figure_11_dram_traffic,
    "fig12": figures.figure_12_accuracy,
    "fig13": figures.figure_13_coverage,
    "fig14": figures.figure_14_l3_traffic,
    "fig15": figures.figure_15_energy,
    "fig16": figures.figure_16_multiprogram,
    "fig17": figures.figure_17_graph500,
    "fig18": figures.figure_18_metadata_formats,
    "fig19": figures.figure_19_lut_accuracy,
    "fig20": figures.figure_20_ablation,
    "replacement-study": figures.replacement_study,
}

ANALYTIC_COMMANDS: dict[str, Callable] = {
    "table1": figures.table_1_structure_sizes,
    "table2": figures.table_2_system_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Triangel (ISCA 2024): temporal prefetching experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available workloads and configurations")

    run_parser = subparsers.add_parser(
        "run", help="simulate one workload under one or more configurations"
    )
    run_parser.add_argument("workload", help="workload name (see `repro list`)")
    run_parser.add_argument(
        "--config",
        action="append",
        default=None,
        help="configuration name; may be repeated (default: triage and triangel)",
    )
    run_parser.add_argument(
        "--trace-length", type=int, default=None, help="override the trace length"
    )
    run_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses"
    )
    run_parser.add_argument(
        "--warmup-fraction", type=float, default=0.4, help="warm-up fraction of the trace"
    )
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="system scale factor (1.0 = default sim scale)"
    )
    _add_execution_arguments(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures or tables"
    )
    figure_parser.add_argument(
        "name",
        choices=sorted(FIGURE_COMMANDS) + sorted(ANALYTIC_COMMANDS),
        help="which figure/table to reproduce",
    )
    figure_parser.add_argument(
        "--trace-length", type=int, default=None, help="override every trace's length"
    )
    figure_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses per run"
    )
    _add_execution_arguments(figure_parser)

    study_parser = subparsers.add_parser(
        "study", help="list, describe, or run declarative studies"
    )
    study_subparsers = study_parser.add_subparsers(dest="study_command", required=True)
    study_subparsers.add_parser("list", help="list every registered study")
    describe_parser = study_subparsers.add_parser(
        "describe", help="show one study's axes and compiled batch"
    )
    describe_parser.add_argument("name", help="study name (see `repro study list`)")
    study_run_parser = study_subparsers.add_parser(
        "run", help="run one study (or --all), with optional axis overrides"
    )
    study_run_parser.add_argument(
        "name", nargs="?", default=None, help="study name (see `repro study list`)"
    )
    study_run_parser.add_argument(
        "--all", action="store_true", help="run every registered study"
    )
    study_run_parser.add_argument(
        "--set",
        action="append",
        dest="sets",
        default=None,
        metavar="KEY=VALUE",
        help="override a study axis (scale, system, metric, baseline, "
        "max_accesses_per_core) or any configuration parameter; repeatable",
    )
    study_run_parser.add_argument(
        "--workloads", default=None, help="comma-separated workload-axis override"
    )
    study_run_parser.add_argument(
        "--configs", default=None, help="comma-separated configuration-axis override"
    )
    study_run_parser.add_argument(
        "--trace-length", type=int, default=None, help="override every trace's length"
    )
    study_run_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses per run"
    )
    _add_execution_arguments(study_run_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="record, import, inspect or sample on-disk packed traces"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)

    def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--name", default=None, help="name for the written trace (sets the file stem)"
        )
        parser.add_argument(
            "--dir",
            dest="trace_dir",
            default=None,
            help="directory to write into (default: the first trace search-path entry)",
        )
        parser.add_argument(
            "--gzip", action="store_true", help="gzip-compress the written file"
        )

    record_parser = trace_subparsers.add_parser(
        "record", help="record a registered workload generator's stream to disk"
    )
    record_parser.add_argument("workload", help="workload name (see `repro list`)")
    record_parser.add_argument(
        "--length", type=int, default=None, help="override the generated trace length"
    )
    record_parser.add_argument(
        "--override",
        action="append",
        dest="overrides",
        default=None,
        metavar="KEY=VALUE",
        help="extra generator override (e.g. seed=9); repeatable",
    )
    _add_output_arguments(record_parser)

    import_parser = trace_subparsers.add_parser(
        "import", help="import a ChampSim-style LS text/gzip trace file"
    )
    import_parser.add_argument("file", help="path of the trace file to import")
    import_parser.add_argument(
        "--radix",
        choices=("auto", "hex", "dec"),
        default="auto",
        help="radix of bare (un-prefixed) numbers; auto sniffs the file "
        "(one radix per file)",
    )
    _add_output_arguments(import_parser)

    pack_parser = trace_subparsers.add_parser(
        "pack",
        help="re-encode an existing trace file "
        "(v1 <-> v2 chunked delta/varint, optional gzip)",
    )
    pack_parser.add_argument(
        "trace", help="source: trace workload name (trace:<name>) or a file path"
    )
    pack_parser.add_argument(
        "--version",
        type=int,
        choices=(1, 2),
        default=None,
        dest="format_version",
        help="target .rtrc format version (default: 2)",
    )
    pack_parser.add_argument(
        "--name", default=None, help="name for the written trace (sets the file stem)"
    )
    pack_parser.add_argument(
        "--dir",
        dest="trace_dir",
        default=None,
        help="directory to write into (default: the source file's directory)",
    )
    pack_parser.add_argument(
        "--gzip", action="store_true", help="gzip-compress the written file"
    )

    info_parser = trace_subparsers.add_parser(
        "info", help="show a trace file's header, footprint and provenance"
    )
    info_parser.add_argument(
        "trace", help="trace workload name (trace:<name> or <name>) or a file path"
    )
    info_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="also show the shard plan a run with --shards N would use",
    )
    info_parser.add_argument(
        "--shard-overlap",
        default=None,
        metavar="N|warmup|full",
        help="overlap policy for the reported shard plan (default: warmup)",
    )
    info_parser.add_argument(
        "--warmup-fraction",
        type=float,
        default=0.4,
        help="warm-up fraction assumed by the reported shard plan",
    )

    sample_parser = trace_subparsers.add_parser(
        "sample", help="write a sampled sub-trace (window or systematic) to disk"
    )
    sample_parser.add_argument(
        "trace", help="source: trace workload name (trace:<name>) or a file path"
    )
    sample_parser.add_argument(
        "--window",
        default=None,
        metavar="START:LENGTH",
        help="keep the contiguous window of LENGTH accesses starting at START",
    )
    sample_parser.add_argument(
        "--every",
        type=int,
        default=None,
        metavar="PERIOD",
        help="systematic sampling: keep a block out of every PERIOD accesses",
    )
    sample_parser.add_argument(
        "--block", type=int, default=1, help="accesses kept per period (default: 1)"
    )
    sample_parser.add_argument(
        "--offset", type=int, default=0, help="first sampled index (default: 0)"
    )
    _add_output_arguments(sample_parser)

    explore_parser = subparsers.add_parser(
        "explore",
        help="search the configuration design space "
        "(grid, random, successive halving on sampled windows)",
    )
    explore_subparsers = explore_parser.add_subparsers(
        dest="explore_command", required=True
    )

    def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
        """The flags declaring a search (shared by ``run`` and ``describe``)."""

        parser.add_argument(
            "--strategy",
            choices=("grid", "random", "halving"),
            default="halving",
            help="search strategy (default: halving — screen on sampled "
            "windows, confirm survivors on the full trace)",
        )
        parser.add_argument(
            "--budget",
            type=int,
            default=None,
            help="cap on candidate evaluations (rung entrants summed); the "
            "selection shrinks to fit, never exceeding it",
        )
        parser.add_argument(
            "--seed", type=int, default=0,
            help="seed of the random/halving candidate order (default: 0)",
        )
        parser.add_argument(
            "--workloads",
            default=None,
            metavar="W1[,W2...]",
            help="workload axis override (default: xalan)",
        )
        parser.add_argument(
            "--configs",
            default=None,
            metavar="C1[,C2...]",
            help="configuration axis override "
            "(default: triage-lru,triage-srrip,triage-hawkeye)",
        )
        parser.add_argument(
            "--set",
            action="append",
            dest="sets",
            default=None,
            metavar="KEY=V1[,V2...]",
            help="axis override: a comma list per key — configuration "
            "parameters become grid axes (--set max_entries=64,4096), "
            "'scale' a system-scale axis, 'system'/'baseline' single names",
        )
        parser.add_argument(
            "--objective",
            choices=("accuracy", "coverage", "metadata_traffic", "speedup"),
            default="coverage",
            help="metric the strategies rank candidates by (default: coverage)",
        )
        parser.add_argument(
            "--screen-accesses",
            type=int,
            default=None,
            help="first screen rung's window length (default: 2000; doubles "
            "by --eta per rung)",
        )
        parser.add_argument(
            "--eta",
            type=int,
            default=None,
            help="halving rate: survivors per rung ≈ entrants/eta, screen "
            "windows grow by eta (default: 2)",
        )
        parser.add_argument(
            "--confirm",
            type=int,
            default=None,
            help="stop screening at this many survivors and run them on the "
            "full trace (default: 3)",
        )
        parser.add_argument(
            "--trace-length",
            type=int,
            default=None,
            help="truncate/extend generated source traces to N accesses "
            "(screens are carved from the overridden stream)",
        )

    explore_run_parser = explore_subparsers.add_parser(
        "run", help="run a search and print its Pareto front"
    )
    _add_search_arguments(explore_run_parser)
    explore_run_parser.add_argument(
        "--dir",
        dest="search_dir",
        default=None,
        help="search directory for the manifest, screens, log and front "
        "(default: .repro_search)",
    )
    _add_execution_arguments(explore_run_parser)
    explore_describe_parser = explore_subparsers.add_parser(
        "describe", help="show a search's candidates and rung plan (no simulation)"
    )
    _add_search_arguments(explore_describe_parser)
    explore_resume_parser = explore_subparsers.add_parser(
        "resume",
        help="re-run the search a directory's manifest describes; completed "
        "evaluations replay from the store",
    )
    explore_resume_parser.add_argument(
        "--dir",
        dest="search_dir",
        default=None,
        help="search directory holding search.json (default: .repro_search)",
    )
    _add_execution_arguments(explore_resume_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure simulated accesses/second under both execution kernels",
    )
    bench_parser.add_argument(
        "--length", type=int, default=44_000, help="accesses per benchmark stream"
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per (case, kernel); best wins"
    )
    bench_parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON record (default: ./BENCH_engine.json; "
        "'-' skips writing)",
    )
    bench_parser.add_argument(
        "--shards",
        default="2,4",
        metavar="K[,K...]",
        help="comma-separated shard counts for the sharded replay cases "
        "(default: 2,4; empty string skips them)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache_parser.add_argument(
        "action", choices=("show", "clear"), help="what to do with the store"
    )
    cache_parser.add_argument(
        "--cache-dir", default=None, help="result-store directory (default: .repro_cache)"
    )
    cache_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable statistics for `show` (the same payload the "
        "serve daemon's /store/stats endpoint returns)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the simulation service daemon (HTTP/JSON API)"
    )
    serve_parser.add_argument(
        "--host", default=None, help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, help="TCP port (default: 8642; 0 picks a free port)"
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for submitted simulations "
        "(default: $REPRO_JOBS, or 1)",
    )
    serve_parser.add_argument(
        "--quota",
        type=int,
        default=None,
        help="per-client cap on unresolved (not-yet-simulated) specs; "
        "over-quota submissions are rejected with HTTP 429 (default: none)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, help="result-store directory (default: .repro_cache)"
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="serve without a persistent store"
    )
    serve_parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "fast-sharded"),
        default=None,
        help="execution kernel for submitted simulations (default: fast)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the telemetry layer (metrics registry, timing spans, "
        "event log; same as REPRO_TELEMETRY=1) — GET /metrics serves the "
        "registry either way, but series only move when enabled",
    )

    obs_parser = subparsers.add_parser(
        "obs", help="inspect the telemetry event log (requires REPRO_TELEMETRY=1 runs)"
    )
    obs_parser.add_argument(
        "action",
        choices=("tail", "summary"),
        help="'tail' prints the newest events; 'summary' aggregates by event type",
    )
    obs_parser.add_argument(
        "--count", type=int, default=20, help="events to show with 'tail' (default: 20)"
    )
    obs_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory whose obs/ log to read (default: .repro_cache "
        "or $REPRO_CACHE_DIR)",
    )
    obs_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url",
            default=None,
            help="daemon base URL (default: $REPRO_SERVE_URL, or "
            "http://127.0.0.1:8642)",
        )
        parser.add_argument(
            "--json", action="store_true", help="print the raw JSON response"
        )

    submit_parser = subparsers.add_parser(
        "submit", help="submit a job to a running repro serve daemon"
    )
    submit_parser.add_argument(
        "kind",
        choices=("run", "multiprogram", "study", "spec", "explore"),
        help="what to submit (mirrors the daemon's request kinds)",
    )
    submit_parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="workload (run), study name (study), or configuration "
        "(multiprogram, with --workloads)",
    )
    _add_client_arguments(submit_parser)
    submit_parser.add_argument(
        "--client", default=None, help="client name for quotas and manifests"
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0, help="scheduling priority (higher first)"
    )
    submit_parser.add_argument(
        "--workloads", default=None, help="comma-separated workload list/override"
    )
    submit_parser.add_argument(
        "--configs", default=None, help="comma-separated configuration list/override"
    )
    submit_parser.add_argument(
        "--set",
        action="append",
        dest="sets",
        default=None,
        metavar="KEY=VALUE",
        help="axis/parameter override, exactly as `study run --set`; repeatable",
    )
    submit_parser.add_argument(
        "--trace-length", type=int, default=None, help="override every trace's length"
    )
    submit_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses per run"
    )
    submit_parser.add_argument(
        "--file",
        default=None,
        help="read the request body from a JSON file ('-' for stdin); "
        "command-line fields override its keys",
    )
    submit_parser.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up waiting after this many seconds (with --wait)",
    )

    status_parser = subparsers.add_parser(
        "status", help="show a submitted job's state and progress events"
    )
    status_parser.add_argument("job", help="job id (from `repro submit`)")
    status_parser.add_argument(
        "--after",
        type=int,
        default=None,
        help="only events with seq greater than this (streaming polls)",
    )
    _add_client_arguments(status_parser)

    result_parser = subparsers.add_parser(
        "result", help="fetch a completed job's result and run manifest"
    )
    result_parser.add_argument("job", help="job id (from `repro submit`)")
    _add_client_arguments(result_parser)

    cancel_parser = subparsers.add_parser(
        "cancel", help="cooperatively cancel a submitted job"
    )
    cancel_parser.add_argument("job", help="job id (from `repro submit`)")
    _add_client_arguments(cancel_parser)
    return parser


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation matrices "
        "(default: $REPRO_JOBS, or 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-store directory (default: .repro_cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result store for this invocation",
    )
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "fast-sharded"),
        default=None,
        help="execution kernel (default: fast, or $REPRO_KERNEL); all "
        "produce bit-identical statistics — 'reference' is the readable "
        "debugging implementation, 'fast-sharded' an alias of fast that "
        "pairs with --shards",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split each single-core replay into N trace-window shards "
        "(default: 1, or $REPRO_SHARDS); shards of one run execute in "
        "pool workers alongside other runs under --jobs",
    )
    parser.add_argument(
        "--shard-overlap",
        default=None,
        metavar="N|warmup|full",
        help="warm-up overlap each shard replays before its sampling window "
        "opens: an access count, 'warmup' (one warm-up length; default), or "
        "'full' (the entire sequential prefix — bit-identical to unsharded)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the telemetry layer for this invocation (metrics, "
        "timing spans, event log; same as REPRO_TELEMETRY=1); results are "
        "bit-identical either way",
    )


def _store_for(args: argparse.Namespace) -> ResultStore:
    cache_dir = getattr(args, "cache_dir", None)
    return ResultStore(cache_dir) if cache_dir else default_store()


def _trace_overrides(args: argparse.Namespace) -> dict:
    """Trace-generation overrides from the CLI flags (validated)."""

    length = getattr(args, "trace_length", None)
    if length is None:
        return {}
    if length <= 0:
        raise ValueError("--trace-length must be positive")
    return {"length": length}


def _resolve_shards(args: argparse.Namespace) -> int:
    """The shard count for this invocation: flag, then environment, then 1."""

    return resolve_shards(getattr(args, "shards", None))


def _resolve_jobs(args: argparse.Namespace) -> int:
    """The worker count for this invocation: flag, then environment, then 1."""

    return resolve_jobs(getattr(args, "jobs", None))


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    overrides = _trace_overrides(args)
    return ExperimentRunner(
        system=SystemConfig.scaled(getattr(args, "scale", 1.0)),
        max_accesses=getattr(args, "max_accesses", None),
        trace_overrides=overrides,
        warmup_fraction=getattr(args, "warmup_fraction", 0.4),
        use_cache=not getattr(args, "no_cache", False),
        jobs=_resolve_jobs(args),
        store=_store_for(args),
        kernel=getattr(args, "kernel", None),
        shards=_resolve_shards(args),
        shard_overlap=getattr(args, "shard_overlap", None) or "warmup",
    )


def _command_list() -> str:
    lines = ["Workloads:"]
    lines.extend(f"  {name}" for name in available_workloads())
    lines.append("Configurations:")
    # Parameterised configurations show their call-time parameter signature
    # (plain ones show nothing): e.g. `triage-lru(max_entries=1024)`.
    lines.extend(
        f"  {name}{signature}"
        for name, signature in configuration_signatures().items()
    )
    lines.append("Studies:")
    lines.extend(f"  {name}" for name in STUDIES.names())
    return "\n".join(lines)


def _command_run(args: argparse.Namespace) -> str:
    runner = _make_runner(args)
    configurations = args.config or ["triage", "triangel"]
    # One batch for the baseline plus every requested configuration, so
    # --jobs parallelises across them and the store is consulted once.
    matrix = runner.run_matrix([args.workload], ["baseline"] + configurations)
    per_config = matrix[args.workload]
    baseline = per_config["baseline"]
    lines = [
        f"workload: {args.workload} ({baseline.accesses} sampled accesses)",
        f"{'configuration':<20} {'speedup':>8} {'dram':>7} {'accuracy':>9} {'coverage':>9} {'markov ways':>12}",
    ]
    for configuration in configurations:
        stats = per_config[configuration]
        lines.append(
            f"{configuration:<20} "
            f"{stats.speedup_relative_to(baseline):>8.3f} "
            f"{stats.dram_traffic_relative_to(baseline):>7.3f} "
            f"{stats.accuracy:>9.3f} "
            f"{stats.coverage_relative_to(baseline):>9.3f} "
            f"{stats.markov_final_ways:>12d}"
        )
    return "\n".join(lines)


def _command_figure(args: argparse.Namespace) -> str:
    if args.name in ANALYTIC_COMMANDS:
        return ANALYTIC_COMMANDS[args.name]().rendered
    runner = _make_runner(args)
    return FIGURE_COMMANDS[args.name](runner).rendered


def _split_names(raw: str | None, flag: str) -> list[str] | None:
    """Split a comma-separated name list, tolerating whitespace.

    An explicitly given but empty list is an error — overriding an axis
    to nothing would print a degenerate table, not fail loudly.
    """

    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise ValueError(f"{flag}: no names given")
    return names


def _command_study(args: argparse.Namespace) -> str | None:
    """Implement ``repro study list|describe|run``.

    Returns the text to print, or ``None`` when the ``run --all`` path has
    already streamed each table as it completed.
    """

    if args.study_command == "list":
        lines = []
        for name, study in STUDIES.items():
            lines.append(f"{name:<20} {study.figure}: {study.display_title()}")
        return "\n".join(lines)
    if args.study_command == "describe":
        return STUDIES.describe(args.name)

    # -- run ---------------------------------------------------------------
    assignments = parse_assignments(args.sets)
    workloads = _split_names(args.workloads, "--workloads")
    configurations = _split_names(args.configs, "--configs")
    if args.all:
        # Axis overrides are per-study (a scale valid for fig10 is invalid
        # for table2's fixed paper system); combining them with --all would
        # either crash mid-sweep or silently skip, so reject up front — as
        # is a study name, which --all would otherwise silently ignore.
        if args.name is not None:
            raise ValueError(
                f"repro study run: give either {args.name!r} or --all, not both"
            )
        if assignments or workloads or configurations:
            raise ValueError(
                "repro study run --all does not take axis overrides; "
                "run the overridden study by name instead"
            )
        if args.max_accesses is not None or args.trace_length is not None:
            # Truncation flags don't apply uniformly across the sweep
            # (multiprogram studies cap per-core, Graph500 traces take no
            # length); failing at fig16/fig17 mid-sweep would waste the
            # minutes already simulated, so reject before starting.
            raise ValueError(
                "repro study run --all does not take truncation flags; "
                "run truncated studies by name instead"
            )
        names = STUDIES.names()
    elif args.name is not None:
        names = [args.name]
    else:
        raise ValueError("repro study run: give a study name or --all")

    store = _store_for(args)
    outputs = []
    for name in names:
        study = STUDIES.get(name).overridden(
            workloads=workloads,
            configurations=configurations,
            assignments=assignments,
        )
        if study.pairs and args.max_accesses is not None:
            # Multiprogram specs cap per-core accesses, not total sampled
            # accesses; silently running uncapped would mislabel the table.
            raise ValueError(
                f"study {name!r} runs multiprogrammed; --max-accesses does "
                f"not apply — use --set max_accesses_per_core=N"
            )
        # The runner carries the study's (possibly overridden) system axis
        # plus this invocation's execution policy.
        runner = study.make_runner(
            max_accesses=args.max_accesses,
            trace_overrides=_trace_overrides(args),
            use_cache=not args.no_cache,
            jobs=_resolve_jobs(args),
            store=store,
            kernel=args.kernel,
            shards=_resolve_shards(args),
            shard_overlap=args.shard_overlap or "warmup",
        )
        rendered = study.run(runner).rendered
        if args.all:
            # Print each table as it completes so a long sweep streams its
            # results instead of holding everything until the end.
            print(rendered)
            print()
        else:
            outputs.append(rendered)
    return "\n".join(outputs) if not args.all else None


def _trace_output_dir(args: argparse.Namespace) -> Path:
    """The directory a trace-writing subcommand targets (one rule for all)."""

    from repro.workloads.registry import trace_search_path

    return Path(args.trace_dir) if args.trace_dir else trace_search_path()[0]


def _trace_output_path(args: argparse.Namespace, default_name: str) -> Path:
    """Where a trace-writing subcommand should put its file."""

    from repro.traces.format import trace_suffix

    return _trace_output_dir(args) / (
        f"{args.name or default_name}{trace_suffix(args.gzip)}"
    )


def _resolve_trace_source(raw: str) -> Path:
    """A trace argument as a file path or a (``trace:``-prefixed) name."""

    from repro.workloads.registry import resolve_trace_path

    path = Path(raw)
    if path.is_file():
        return path
    return resolve_trace_path(raw)


def _workload_claim(path: Path, name: str) -> str:
    """How a freshly written trace file is addressable as a workload.

    Only files on the trace search path resolve as ``trace:<name>``;
    claiming the name for a file written elsewhere (``--dir /tmp/out``)
    would advertise a workload that does not exist, so point at the
    environment variable instead.
    """

    from repro.workloads.registry import TRACE_DIR_ENV, TRACE_PREFIX, trace_search_path

    parent = path.parent.resolve()
    if any(parent == directory.resolve() for directory in trace_search_path()):
        return f"workload {TRACE_PREFIX}{name}"
    return (
        f"not on the trace search path — set {TRACE_DIR_ENV}={path.parent} "
        f"to run it as {TRACE_PREFIX}{name}"
    )


def _command_trace(args: argparse.Namespace) -> str:
    """Implement ``repro trace record|import|pack|info|sample``."""

    from repro.traces.format import (
        open_trace,
        remove_stale_sibling,
        save_trace,
        trace_file_digest,
    )
    from repro.workloads.registry import TRACE_PREFIX

    # `--name trace:leela` means the workload name, not a literal file stem
    # — a stem containing the prefix would resolve as trace:trace:leela,
    # i.e. never.  Normalise once for every writing subcommand.
    explicit_name = getattr(args, "name", None)
    if explicit_name and explicit_name.startswith(TRACE_PREFIX):
        args.name = explicit_name[len(TRACE_PREFIX):]
        if not args.name:
            raise ValueError("--name: empty trace name")

    if args.trace_command == "record":
        from repro.experiments.study import coerce_param
        from repro.traces.recorder import record_workload

        overrides = {
            key: coerce_param(value)
            for key, value in parse_assignments(args.overrides).items()
        }
        if args.length is not None:
            if args.length <= 0:
                raise ValueError("--length must be positive")
            overrides["length"] = args.length
        path = record_workload(
            args.workload,
            directory=_trace_output_dir(args),
            name=args.name,
            compress=args.gzip,
            overrides=overrides,
        )
        # The written file's stem IS the workload name; path.name already
        # reflects the recorder's prefix-stripping, so derive it from there
        # rather than re-deriving (and possibly double-prefixing) it here.
        from repro.traces.format import TRACE_SUFFIXES

        stem = path.name
        for suffix in sorted(TRACE_SUFFIXES, key=len, reverse=True):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
                break
        return (
            f"recorded {args.workload} -> {path} "
            f"({_workload_claim(path, stem)})"
        )

    if args.trace_command == "import":
        from repro.traces.champsim import import_champsim_trace

        imported = import_champsim_trace(args.file, name=args.name, radix=args.radix)
        path = _trace_output_path(args, imported.name)
        save_trace(imported, path)
        remove_stale_sibling(path)
        return (
            f"imported {args.file} -> {path} "
            f"({len(imported)} accesses; {_workload_claim(path, imported.name)})"
        )

    if args.trace_command == "pack":
        from repro.traces.format import FORMAT_VERSION, trace_suffix

        source_path = _resolve_trace_source(args.trace)
        source_size = source_path.stat().st_size
        source_digest = trace_file_digest(source_path)
        trace, header = open_trace(source_path)
        stem = args.name or trace.name
        directory = (
            Path(args.trace_dir) if args.trace_dir else source_path.parent
        )
        version = args.format_version or FORMAT_VERSION
        path = directory / f"{stem}{trace_suffix(args.gzip)}"
        written = save_trace(trace, path, name=stem, version=version)
        new_size = written.stat().st_size
        new_digest = trace_file_digest(written)
        ratio = source_size / new_size if new_size else 0.0
        lines = [
            f"packed {source_path} (v{header.version}, {source_size} bytes) -> "
            f"{written} (v{version}, {new_size} bytes, {ratio:.1f}x)",
        ]
        if new_digest != source_digest:
            # Results are keyed on file *content*: the re-encoded file is a
            # new key, so warm-store entries for the old bytes re-execute.
            lines.append(
                f"digest:       {source_digest[:16]} -> {new_digest[:16]} "
                "(content re-keyed; stored results for the old encoding "
                "will re-execute)"
            )
        else:
            lines.append(f"digest:       {new_digest[:16]} (unchanged)")
        # Unlike record/import/sample, pack never deletes the other-suffix
        # spelling — it may be the source file the user is converting from.
        # Point out the shadowing hazard instead.
        from repro.traces.format import TRACE_SUFFIXES

        name = written.name
        for suffix in sorted(TRACE_SUFFIXES, key=len, reverse=True):
            if name.endswith(suffix):
                stem_only = name[: -len(suffix)]
                for other in TRACE_SUFFIXES:
                    sibling = written.with_name(stem_only + other)
                    if other != suffix and sibling.is_file():
                        lines.append(
                            f"note:         {sibling} still exists; "
                            f"trace:{stem_only} resolves by suffix "
                            "preference — remove one spelling to avoid "
                            "shadowing"
                        )
                break
        return "\n".join(lines)

    if args.trace_command == "info":
        from repro.traces.format import ChunkedTrace, TraceFormatError, read_header
        from repro.workloads.trace import LINE_SHIFT

        path = _resolve_trace_source(args.trace)
        if args.shards is not None:
            # The plan needs only the record count: read the bounded header
            # prefix (gzip files included — no payload decompression) so
            # planning over a multi-GB capture stays instant.
            from repro.sim.shard import plan_shards

            if args.shards < 1:
                raise ValueError(f"--shards must be at least 1, got {args.shards}")
            header = read_header(path)
            plan = plan_shards(
                total_accesses=header.records,
                warmup_accesses=int(header.records * args.warmup_fraction),
                shards=args.shards,
                overlap=args.shard_overlap,
            )
            lines = [
                f"file:         {path} ({path.stat().st_size} bytes"
                f"{', gzip' if header.compressed else ''})",
                f"name:         {header.name}",
                f"format:       .rtrc v{header.version}, line shift "
                f"{header.line_shift}",
                f"accesses:     {header.records}",
                "shard plan:",
            ]
            lines.extend(f"  {line}" for line in plan.describe())
            return "\n".join(lines)
        try:
            trace, header = open_trace(path)
        except TraceFormatError:
            # Inspection must still work on files this build refuses to
            # *simulate* — a foreign line shift is exactly what a user
            # needs `info` to diagnose.  Genuinely corrupt files re-raise.
            header = read_header(path)
            if header.line_shift == LINE_SHIFT:
                raise
            lines = [
                f"file:         {path} ({path.stat().st_size} bytes"
                f"{', gzip' if header.compressed else ''})",
                f"name:         {header.name}",
                f"format:       .rtrc v{header.version}, line shift "
                f"{header.line_shift}",
                f"accesses:     {header.records}",
                f"note:         recorded under line shift "
                f"{header.line_shift}; this build simulates "
                f"{1 << LINE_SHIFT}-byte lines (shift {LINE_SHIFT}), so "
                f"the payload cannot be replayed (header shown only)",
            ]
            if header.metadata.get("generator"):
                lines.append(f"generator:    {header.metadata['generator']}")
            return "\n".join(lines)
        unique_lines = trace.unique_lines()
        lines = [
            f"file:         {path} ({path.stat().st_size} bytes"
            f"{', gzip' if header.compressed else ''})",
            f"name:         {trace.name}",
            f"format:       .rtrc v{header.version}, line shift {header.line_shift}",
        ]
        if isinstance(trace, ChunkedTrace) and len(trace):
            payload = trace.payload_bytes
            per_access = payload / len(trace)
            ratio = (16 * len(trace)) / payload if payload else 0.0
            lines += [
                f"encoding:     {trace.chunk_count} chunk(s) x "
                f"{trace.chunk_records} records, delta/varint payload "
                f"{payload} bytes",
                f"              {per_access:.2f} B/access vs 16 raw "
                f"({ratio:.1f}x smaller)",
            ]
        lines += [
            f"accesses:     {len(trace)}",
            f"writes:       {trace.write_count()}",
            f"unique lines: {unique_lines} "
            f"({unique_lines << header.line_shift} bytes footprint)",
            f"unique pcs:   {trace.unique_pcs()}",
            f"digest:       {trace_file_digest(path)[:16]}",
        ]
        for key in ("recorded", "imported", "sampled"):
            if key in trace.metadata:
                details = ", ".join(
                    f"{k}={v}" for k, v in sorted(trace.metadata[key].items())
                )
                lines.append(f"{key + ':':<13} {details}")
        generator = trace.metadata.get("generator")
        if generator:
            lines.append(f"generator:    {generator}")
        return "\n".join(lines)

    # -- sample ------------------------------------------------------------
    if (args.window is None) == (args.every is None):
        raise ValueError(
            "repro trace sample: give exactly one of --window START:LENGTH "
            "or --every PERIOD"
        )
    source, _header = open_trace(_resolve_trace_source(args.trace))
    if args.window is not None:
        from repro.traces.samplers import sample_window

        if args.block != 1 or args.offset != 0:
            # Silently writing a plain window would drop the options the
            # user asked for; reject, as every other inapplicable-override
            # path in this CLI does.
            raise ValueError(
                "--block/--offset apply to --every (systematic) sampling, "
                "not --window"
            )
        start_text, separator, length_text = args.window.partition(":")
        if not separator:
            raise ValueError("--window takes START:LENGTH (e.g. 5000:20000)")
        try:
            start, length = int(start_text), int(length_text)
        except ValueError:
            raise ValueError("--window START and LENGTH must be integers") from None
        sampled = sample_window(source, start, length, name=args.name)
    else:
        from repro.traces.samplers import sample_systematic

        sampled = sample_systematic(
            source, args.every, block=args.block, offset=args.offset, name=args.name
        )
    path = _trace_output_path(args, sampled.name)
    save_trace(sampled, path)
    remove_stale_sibling(path)
    provenance = sampled.metadata["sampled"]
    return (
        f"sampled {source.name} ({len(source)} accesses) -> {path} "
        f"({len(sampled)} accesses, {provenance['sampler']} sampler; "
        f"{_workload_claim(path, sampled.name)})"
    )


def _command_explore(args: argparse.Namespace) -> str:
    """Implement ``repro explore run|describe|resume``."""

    from repro.experiments import explore

    if args.explore_command == "resume":
        directory = args.search_dir or explore.DEFAULT_SEARCH_DIR
        result = explore.resume_search(
            directory,
            store=_store_for(args),
            use_cache=not args.no_cache,
            jobs=_resolve_jobs(args),
            kernel=args.kernel,
            shards=_resolve_shards(args),
            shard_overlap=args.shard_overlap or "warmup",
        )
        return explore.render_search(result)

    space = explore.overridden_space(
        workloads=_split_names(args.workloads, "--workloads"),
        configurations=_split_names(args.configs, "--configs"),
        assignments=parse_assignments(args.sets),
    )
    # None-guarded so `describe` and `run` share the library defaults with
    # programmatic callers instead of re-declaring them here.
    tuning = {
        key: value
        for key, value in (
            ("screen_accesses", args.screen_accesses),
            ("eta", args.eta),
            ("confirm", args.confirm),
        )
        if value is not None
    }
    if args.explore_command == "describe":
        return explore.describe_search(
            space,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            objective=args.objective,
            trace_overrides=_trace_overrides(args),
            **tuning,
        )
    result = explore.run_search(
        space,
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        directory=args.search_dir or explore.DEFAULT_SEARCH_DIR,
        objective=args.objective,
        trace_overrides=_trace_overrides(args),
        store=_store_for(args),
        use_cache=not args.no_cache,
        jobs=_resolve_jobs(args),
        kernel=args.kernel,
        shards=_resolve_shards(args),
        shard_overlap=args.shard_overlap or "warmup",
        **tuning,
    )
    return explore.render_search(result)


def _command_bench(args: argparse.Namespace) -> str:
    """Implement ``repro bench``: kernel microbenchmark + JSON record."""

    from repro.experiments.bench import (
        BENCH_FILENAME,
        render_bench,
        run_bench,
        write_bench,
    )

    raw_shards = [part.strip() for part in args.shards.split(",") if part.strip()]
    try:
        shard_counts = tuple(int(part) for part in raw_shards)
    except ValueError:
        raise ValueError(
            f"--shards {args.shards!r}: expected comma-separated integers"
        ) from None
    if any(count < 2 for count in shard_counts):
        raise ValueError("--shards: bench shard counts must be at least 2")
    record = run_bench(
        length=args.length, repeats=args.repeats, shard_counts=shard_counts
    )
    lines = [render_bench(record)]
    if args.output != "-":
        path = write_bench(record, args.output or BENCH_FILENAME)
        lines.append(f"wrote {path}")
    return "\n".join(lines)


def _command_cache(args: argparse.Namespace) -> str:
    """Implement ``repro cache show|clear``: inspect or empty the store."""

    from repro.experiments.store import store_stats_payload

    store = _store_for(args)
    if args.action == "clear":
        if args.json:
            raise ValueError("--json applies to `cache show`, not `cache clear`")
        dropped = store.clear()
        return f"cleared {dropped} cached result(s) from {store.directory}"
    if args.json:
        # The exact payload the serve daemon's GET /store/stats returns —
        # one serializer (store_stats_payload) feeds both.
        return json.dumps(store_stats_payload(store), indent=2, sort_keys=True)
    info = store.stats()
    size = store.results_path.stat().st_size if store.results_path.exists() else 0
    lines = [
        f"store:   {info.path}",
        f"entries: {info.entries}",
        f"size:    {size} bytes",
    ]
    records = store.records()
    labels: dict[str, list[str]] = {}
    counts: dict[str, int] = {}
    for meta in records:
        counts[meta["kind"]] = counts.get(meta["kind"], 0) + 1
        if meta["label"] is not None:
            labels.setdefault(meta["kind"], []).append(meta["label"])
    for kind in ("run", "parameterised run", "multiprogram"):
        if kind in counts:
            lines.append(f"  {kind + ' records:':<26} {counts[kind]}")
            for label in sorted(labels.get(kind, [])):
                lines.append(f"    {label}")
    return "\n".join(lines)


def _command_serve(args: argparse.Namespace) -> int:
    """Implement ``repro serve``: run the service daemon until SIGTERM."""

    from repro.service.server import DEFAULT_HOST, DEFAULT_PORT, serve

    if args.quota is not None and args.quota < 1:
        raise ValueError(f"--quota must be at least 1, got {args.quota}")
    store = None if args.no_cache else _store_for(args)
    return serve(
        store,
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
        jobs=_resolve_jobs(args),
        kernel=args.kernel,
        quota=args.quota,
        verbose=args.verbose,
    )


def _client_for(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url, client=getattr(args, "client", None))


def _submit_payload(args: argparse.Namespace) -> dict:
    """Build the ``POST /jobs`` body from the ``repro submit`` flags.

    ``--file`` supplies a base JSON body (the round-trip path: a fetched
    manifest's ``specs`` resubmit verbatim under ``kind=spec``); explicit
    flags override its keys.
    """

    payload: dict = {}
    if args.file:
        raw = sys.stdin.read() if args.file == "-" else Path(args.file).read_text()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"--file: not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("--file: the request body must be a JSON object")
    payload["kind"] = args.kind
    assignments = parse_assignments(args.sets)
    if assignments:
        payload["set"] = {**(payload.get("set") or {}), **assignments}
    workloads = _split_names(args.workloads, "--workloads")
    configurations = _split_names(args.configs, "--configs")
    if args.kind == "run":
        if args.name:
            payload["workload"] = args.name
        if not payload.get("workload"):
            raise ValueError("repro submit run: give a workload name")
        if configurations:
            payload["configurations"] = configurations
    elif args.kind == "study":
        if args.name:
            payload["name"] = args.name
        if not payload.get("name"):
            raise ValueError("repro submit study: give a study name")
        if workloads:
            payload["workloads"] = workloads
        if configurations:
            payload["configs"] = configurations
    elif args.kind == "multiprogram":
        if args.name:
            payload["configuration"] = args.name
        if workloads:
            payload["workloads"] = workloads
        if not payload.get("configuration") or not payload.get("workloads"):
            raise ValueError(
                "repro submit multiprogram: give a configuration name and "
                "--workloads W1,W2"
            )
    elif args.kind == "explore":
        if workloads:
            payload["workloads"] = workloads
        if configurations:
            payload["configs"] = configurations
    elif args.kind == "spec" and not payload.get("specs"):
        raise ValueError(
            "repro submit spec: provide the specs via --file (a JSON body "
            "with a 'specs' list, e.g. a fetched manifest's specs)"
        )
    if args.trace_length is not None:
        payload["trace_length"] = args.trace_length
    if args.max_accesses is not None:
        payload["max_accesses"] = args.max_accesses
    if args.priority:
        payload["priority"] = args.priority
    return payload


def _render_job_result(result: dict) -> str:
    """Human-readable form of a ``GET /jobs/<id>/result`` response."""

    payload = result.get("result") or {}
    manifest = result.get("manifest") or {}
    if payload.get("rendered"):
        body = payload["rendered"]
    elif payload.get("description"):
        body = payload["description"]
    else:
        body = json.dumps(payload, indent=2, sort_keys=True)
    provenance = manifest.get("store") or {}
    summary = (
        f"store: {provenance.get('hits', 0)} hit(s), "
        f"{provenance.get('executed', 0)} executed, "
        f"{provenance.get('shared', 0)} shared"
    )
    return f"{body}\n{summary}"


def _render_job_snapshot(snapshot: dict) -> str:
    """Human-readable form of a job status snapshot."""

    specs = snapshot.get("specs") or {}
    lines = [
        f"job {snapshot['id']}: {snapshot['state']} "
        f"({snapshot['kind']}: {snapshot['label']})",
        f"  specs: {specs.get('resolved', 0)}/{specs.get('total', 0)} resolved "
        f"(store {specs.get('store', 0)}, executed {specs.get('executed', 0)}, "
        f"shared {specs.get('shared', 0)})",
    ]
    if snapshot.get("error"):
        lines.append(f"  error: {snapshot['error']}")
    for event in snapshot.get("events") or []:
        detail = ", ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("seq", "time", "event")
        )
        lines.append(
            f"  [{event['seq']}] {event['event']}" + (f": {detail}" if detail else "")
        )
    return "\n".join(lines)


def _command_submit(args: argparse.Namespace) -> str:
    """Implement ``repro submit``: build the request, post it, maybe wait."""

    client = _client_for(args)
    job = client.submit(_submit_payload(args))
    if not args.wait:
        if args.json:
            return json.dumps(job, indent=2, sort_keys=True)
        return (
            f"submitted {job['id']} ({job['kind']}: {job['label']}) "
            f"to {client.url}\npoll with: repro status {job['id']}"
        )
    try:
        snapshot = client.wait(job["id"], timeout=args.timeout)
    except TimeoutError as error:
        raise ValueError(str(error)) from None
    if snapshot["state"] != "completed":
        suffix = f": {snapshot['error']}" if snapshot.get("error") else ""
        raise ValueError(f"job {job['id']} {snapshot['state']}{suffix}")
    result = client.result(job["id"])
    if args.json:
        return json.dumps(
            {**result, "wait": client.last_wait}, indent=2, sort_keys=True
        )
    return _render_job_result(result)


def _command_obs(args: argparse.Namespace) -> str:
    """Implement ``repro obs``: tail or summarise the telemetry event log."""

    from repro.obs.events import EventLog, default_log_path

    log = EventLog(default_log_path(getattr(args, "cache_dir", None)))
    if args.action == "tail":
        if args.count < 1:
            raise ValueError("--count must be at least 1")
        records = log.tail(args.count)
        if args.json:
            return json.dumps(records, indent=2, sort_keys=True)
        if not records:
            return (
                f"no telemetry events under {log.path}\n"
                "(produce some with --telemetry or REPRO_TELEMETRY=1)"
            )
        lines = []
        for record in records:
            stamp = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
            detail = " ".join(
                f"{key}={record[key]}"
                for key in sorted(record)
                if key not in ("v", "ts", "event")
            )
            lines.append(f"{stamp}  {record['event']:<16} {detail}".rstrip())
        return "\n".join(lines)

    records = log.read()
    by_event: dict[str, int] = {}
    for record in records:
        by_event[record["event"]] = by_event.get(record["event"], 0) + 1
    summary = {
        "path": str(log.path),
        "files": [str(path) for path in log.paths()],
        "events": len(records),
        "by_event": by_event,
        "first_ts": records[0]["ts"] if records else None,
        "last_ts": records[-1]["ts"] if records else None,
    }
    if args.json:
        return json.dumps(summary, indent=2, sort_keys=True)
    if not records:
        return (
            f"no telemetry events under {log.path}\n"
            "(produce some with --telemetry or REPRO_TELEMETRY=1)"
        )
    span_s = summary["last_ts"] - summary["first_ts"]
    lines = [
        f"event log: {log.path} ({len(log.paths())} file(s))",
        f"{len(records)} event(s) spanning {span_s:.1f}s",
    ]
    width = max(len(name) for name in by_event)
    for name, count in sorted(by_event.items(), key=lambda item: -item[1]):
        lines.append(f"  {name:<{width}}  {count}")
    return "\n".join(lines)


def _command_status(args: argparse.Namespace) -> str:
    """Implement ``repro status``: one job's state and progress events."""

    snapshot = _client_for(args).status(args.job, after=args.after)
    if args.json:
        return json.dumps(snapshot, indent=2, sort_keys=True)
    return _render_job_snapshot(snapshot)


def _command_result(args: argparse.Namespace) -> str:
    """Implement ``repro result``: a completed job's payload + manifest."""

    result = _client_for(args).result(args.job)
    if args.json:
        return json.dumps(result, indent=2, sort_keys=True)
    return _render_job_result(result)


def _command_cancel(args: argparse.Namespace) -> str:
    """Implement ``repro cancel``: cooperative cancellation by job id."""

    outcome = _client_for(args).cancel(args.job)
    if args.json:
        return json.dumps(outcome, indent=2, sort_keys=True)
    if outcome.get("cancelled"):
        return f"cancelled {args.job}"
    state = (outcome.get("job") or {}).get("state", "unknown")
    return f"job {args.job} was not cancellable (already {state})"


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""

    args = build_parser().parse_args(argv)
    if getattr(args, "telemetry", False):
        # Before any simulation or server construction, so module-level
        # producers see the toggle and pool workers inherit it via the env.
        obs.set_enabled(True)
    try:
        if args.command == "list":
            print(_command_list())
        elif args.command == "run":
            print(_command_run(args))
        elif args.command == "figure":
            print(_command_figure(args))
        elif args.command == "study":
            output = _command_study(args)
            if output is not None:
                print(output)
        elif args.command == "trace":
            print(_command_trace(args))
        elif args.command == "explore":
            print(_command_explore(args))
        elif args.command == "bench":
            from repro.experiments.bench import BenchParityError

            try:
                print(_command_bench(args))
            except BenchParityError as error:
                # A kernel divergence is a bug, not bad input: render it
                # cleanly but exit 1 (not the validation-error 2) so CI and
                # scripts can tell the two apart.
                print(f"repro: {error}", file=sys.stderr)
                return 1
        elif args.command == "cache":
            print(_command_cache(args))
        elif args.command == "obs":
            print(_command_obs(args))
        elif args.command == "serve":
            return _command_serve(args)
        elif args.command == "submit":
            print(_command_submit(args))
        elif args.command == "status":
            print(_command_status(args))
        elif args.command == "result":
            print(_command_result(args))
        elif args.command == "cancel":
            print(_command_cancel(args))
    except BrokenPipeError:  # e.g. `repro cache show | head`
        # The reader went away mid-write.  Point stdout at devnull so the
        # interpreter's shutdown flush doesn't re-raise and dirty the exit
        # status with "Exception ignored" noise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ValueError, FileNotFoundError, ServiceError) as error:
        # Validation errors (unknown names, inapplicable overrides, bad
        # flags, missing/corrupt trace files) and service-call failures
        # (daemon unreachable, rejected submission, unknown job) are user
        # input problems: deliver the message, not a traceback.
        print(f"repro: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
