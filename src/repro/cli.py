"""Command-line interface for the Triangel reproduction.

Four subcommands cover the common workflows without writing any Python:

``list``
    Show the available workloads and prefetcher configurations.
``run``
    Simulate one workload under one (or several) configurations and print
    the paper's headline metrics, normalised against the stride-only
    baseline.
``figure``
    Regenerate one of the paper's figures or tables and print it as a text
    table (the same output the benchmark harness produces).
``cache``
    Inspect (``show``) or empty (``clear``) the persistent result store
    that ``run`` and ``figure`` read and write under ``.repro_cache/``.
    ``show`` breaks the entries down by record kind (plain single-core
    runs, parameterised runs such as the replacement study, and
    multiprogram runs) and lists the latter two individually.

``run`` and ``figure`` accept ``--jobs N`` to execute simulation matrices in
N worker processes, and ``--cache-dir`` to relocate the result store (the
``REPRO_CACHE_DIR`` environment variable does the same).  A second
invocation with the same parameters replays completed simulations from the
store instead of re-running them.

Examples::

    python -m repro list
    python -m repro run xalan --config triangel --config triage
    python -m repro run mcf --trace-length 20000 --max-accesses 10000
    python -m repro figure fig10 --jobs 4
    python -m repro figure table1
    python -m repro cache show
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Sequence

from repro.experiments import figures
from repro.experiments.configs import available_configurations
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore, default_store
from repro.sim.config import SystemConfig
from repro.workloads.registry import available_workloads

#: Figure/table name → harness function.  Functions that take a runner get
#: one; the table reproductions are analytic and take none.
FIGURE_COMMANDS: dict[str, Callable] = {
    "fig10": figures.figure_10_speedup,
    "fig11": figures.figure_11_dram_traffic,
    "fig12": figures.figure_12_accuracy,
    "fig13": figures.figure_13_coverage,
    "fig14": figures.figure_14_l3_traffic,
    "fig15": figures.figure_15_energy,
    "fig16": figures.figure_16_multiprogram,
    "fig17": figures.figure_17_graph500,
    "fig18": figures.figure_18_metadata_formats,
    "fig19": figures.figure_19_lut_accuracy,
    "fig20": figures.figure_20_ablation,
    "replacement-study": figures.replacement_study,
}

ANALYTIC_COMMANDS: dict[str, Callable] = {
    "table1": figures.table_1_structure_sizes,
    "table2": figures.table_2_system_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Triangel (ISCA 2024): temporal prefetching experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available workloads and configurations")

    run_parser = subparsers.add_parser(
        "run", help="simulate one workload under one or more configurations"
    )
    run_parser.add_argument("workload", help="workload name (see `repro list`)")
    run_parser.add_argument(
        "--config",
        action="append",
        default=None,
        help="configuration name; may be repeated (default: triage and triangel)",
    )
    run_parser.add_argument(
        "--trace-length", type=int, default=None, help="override the trace length"
    )
    run_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses"
    )
    run_parser.add_argument(
        "--warmup-fraction", type=float, default=0.4, help="warm-up fraction of the trace"
    )
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="system scale factor (1.0 = default sim scale)"
    )
    _add_execution_arguments(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures or tables"
    )
    figure_parser.add_argument(
        "name",
        choices=sorted(FIGURE_COMMANDS) + sorted(ANALYTIC_COMMANDS),
        help="which figure/table to reproduce",
    )
    figure_parser.add_argument(
        "--trace-length", type=int, default=None, help="override every trace's length"
    )
    figure_parser.add_argument(
        "--max-accesses", type=int, default=None, help="cap the sampled accesses per run"
    )
    _add_execution_arguments(figure_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache_parser.add_argument(
        "action", choices=("show", "clear"), help="what to do with the store"
    )
    cache_parser.add_argument(
        "--cache-dir", default=None, help="result-store directory (default: .repro_cache)"
    )
    return parser


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation matrices (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-store directory (default: .repro_cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result store for this invocation",
    )


def _store_for(args: argparse.Namespace) -> ResultStore:
    cache_dir = getattr(args, "cache_dir", None)
    return ResultStore(cache_dir) if cache_dir else default_store()


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    overrides = {}
    if getattr(args, "trace_length", None):
        overrides["length"] = args.trace_length
    return ExperimentRunner(
        system=SystemConfig.scaled(getattr(args, "scale", 1.0)),
        max_accesses=getattr(args, "max_accesses", None),
        trace_overrides=overrides,
        warmup_fraction=getattr(args, "warmup_fraction", 0.4),
        use_cache=not getattr(args, "no_cache", False),
        jobs=getattr(args, "jobs", 1),
        store=_store_for(args),
    )


def _command_list() -> str:
    lines = ["Workloads:"]
    lines.extend(f"  {name}" for name in available_workloads())
    lines.append("Configurations:")
    lines.extend(f"  {name}" for name in available_configurations())
    return "\n".join(lines)


def _command_run(args: argparse.Namespace) -> str:
    runner = _make_runner(args)
    configurations = args.config or ["triage", "triangel"]
    # One batch for the baseline plus every requested configuration, so
    # --jobs parallelises across them and the store is consulted once.
    matrix = runner.run_matrix([args.workload], ["baseline"] + configurations)
    per_config = matrix[args.workload]
    baseline = per_config["baseline"]
    lines = [
        f"workload: {args.workload} ({baseline.accesses} sampled accesses)",
        f"{'configuration':<20} {'speedup':>8} {'dram':>7} {'accuracy':>9} {'coverage':>9} {'markov ways':>12}",
    ]
    for configuration in configurations:
        stats = per_config[configuration]
        lines.append(
            f"{configuration:<20} "
            f"{stats.speedup_relative_to(baseline):>8.3f} "
            f"{stats.dram_traffic_relative_to(baseline):>7.3f} "
            f"{stats.accuracy:>9.3f} "
            f"{stats.coverage_relative_to(baseline):>9.3f} "
            f"{stats.markov_final_ways:>12d}"
        )
    return "\n".join(lines)


def _command_figure(args: argparse.Namespace) -> str:
    if args.name in ANALYTIC_COMMANDS:
        return ANALYTIC_COMMANDS[args.name]().rendered
    runner = _make_runner(args)
    return FIGURE_COMMANDS[args.name](runner).rendered


def _command_cache(args: argparse.Namespace) -> str:
    """Implement ``repro cache show|clear``: inspect or empty the store."""

    store = _store_for(args)
    if args.action == "clear":
        dropped = store.clear()
        return f"cleared {dropped} cached result(s) from {store.directory}"
    info = store.stats()
    size = store.results_path.stat().st_size if store.results_path.exists() else 0
    lines = [
        f"store:   {info.path}",
        f"entries: {info.entries}",
        f"size:    {size} bytes",
    ]
    records = store.records()
    labels: dict[str, list[str]] = {}
    counts: dict[str, int] = {}
    for meta in records:
        counts[meta["kind"]] = counts.get(meta["kind"], 0) + 1
        if meta["label"] is not None:
            labels.setdefault(meta["kind"], []).append(meta["label"])
    for kind in ("run", "parameterised run", "multiprogram"):
        if kind in counts:
            lines.append(f"  {kind + ' records:':<26} {counts[kind]}")
            for label in sorted(labels.get(kind, [])):
                lines.append(f"    {label}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""

    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            print(_command_list())
        elif args.command == "run":
            print(_command_run(args))
        elif args.command == "figure":
            print(_command_figure(args))
        elif args.command == "cache":
            print(_command_cache(args))
    except BrokenPipeError:  # e.g. `repro cache show | head`
        # The reader went away mid-write.  Point stdout at devnull so the
        # interpreter's shutdown flush doesn't re-raise and dirty the exit
        # status with "Exception ignored" noise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
