"""A thin Python client for the ``repro serve`` HTTP/JSON API.

Everything the daemon exposes, as one small stdlib-only class::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit({"kind": "study", "name": "fig10"})
    done = client.wait(job["id"])
    result = client.result(job["id"])          # reduced tables + manifest

The ``repro submit|status|result|cancel`` CLI verbs are built on this
class, so scripts and the command line see identical payloads.  The daemon
URL defaults to the ``REPRO_SERVE_URL`` environment variable, falling back
to the daemon's default bind address.

Errors surface as :class:`ServiceError`, carrying the HTTP status and the
decoded error payload — a 400 is a validation problem in the submitted
request (the server's message says what), a 404 an unknown job, a 409 a
result fetched before completion, and a 429 the per-client quota.
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Mapping

#: Environment variable naming the daemon to talk to.
SERVE_URL_ENV = "REPRO_SERVE_URL"

#: Where the daemon listens when started with defaults.
DEFAULT_URL = "http://127.0.0.1:8642"

#: Job states after which polling can stop.
TERMINAL_STATES = ("completed", "failed", "cancelled")


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the daemon.

    ``status`` is the HTTP status code (0 when the daemon was unreachable);
    ``payload`` the decoded JSON error body, whose ``error`` key carries
    the server's message.
    """

    def __init__(self, status: int, payload: Mapping) -> None:
        self.status = status
        self.payload = dict(payload)
        message = self.payload.get("error") or f"HTTP {status}"
        super().__init__(message if status == 0 else f"HTTP {status}: {message}")


def service_url(url: str | None = None) -> str:
    """The daemon URL to use: explicit, then ``REPRO_SERVE_URL``, then default."""

    return (url or os.environ.get(SERVE_URL_ENV) or DEFAULT_URL).rstrip("/")


class ServiceClient:
    """Talks to one ``repro serve`` daemon (see module docs for a tour).

    ``client`` names this client for the daemon's per-client quotas and the
    manifests' provenance; it travels as the ``X-Repro-Client`` header.
    """

    def __init__(
        self,
        url: str | None = None,
        client: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.url = service_url(url)
        self.client = client
        self.timeout = timeout
        #: ``{"polls", "elapsed_s"}`` for the most recent :meth:`wait` call.
        self.last_wait: dict | None = None

    # -- transport -----------------------------------------------------------
    def _request(self, method: str, path: str, body: Mapping | None = None) -> dict:
        headers = {"Content-Type": "application/json"}
        if self.client:
            headers["X-Repro-Client"] = self.client
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(body).encode() if body is not None else None,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode(errors="replace")}
            raise ServiceError(error.code, payload) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                0, {"error": f"cannot reach {self.url}: {error.reason}"}
            ) from None

    # -- the API -------------------------------------------------------------
    def healthz(self) -> dict:
        """Daemon liveness: status, code version, scheduler + store counters."""

        return self._request("GET", "/healthz")

    def store_stats(self) -> dict:
        """The shared store's statistics (the ``cache show --json`` shape)."""

        return self._request("GET", "/store/stats")

    def submit(self, request: Mapping) -> dict:
        """Submit one job (see :mod:`repro.service.requests` for the kinds).

        Returns the accepted job's snapshot; ``snapshot["id"]`` is what
        every other call takes.
        """

        return self._request("POST", "/jobs", dict(request))

    def jobs(self) -> list[dict]:
        """Snapshots of every job the daemon knows (without event logs)."""

        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str, after: int | None = None) -> dict:
        """One job's snapshot; ``after`` streams only events with greater seq."""

        query = f"?after={after}" if after is not None else ""
        return self._request("GET", f"/jobs/{job_id}{query}")

    def result(self, job_id: str) -> dict:
        """A completed job's reduced result payload plus its run manifest."""

        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """Cooperatively cancel a job; returns ``{cancelled, job}``."""

        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
        max_poll: float = 3.0,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the snapshot.

        Polling uses decorrelated-jitter backoff: each sleep is drawn
        uniformly from ``[poll, previous_sleep * 3]`` and capped at
        ``max_poll``, so short jobs still return promptly while a fleet of
        waiting clients neither hammers the daemon nor synchronises into
        polling waves.  :attr:`last_wait` records ``{"polls", "elapsed_s"}``
        for the most recent call (``repro submit --wait --json`` surfaces
        it).  Raises ``TimeoutError`` if ``timeout`` seconds pass first.
        """

        deadline = None if timeout is None else time.monotonic() + timeout
        started = time.monotonic()
        polls = 0
        sleep = poll
        while True:
            snapshot = self.status(job_id)
            polls += 1
            self.last_wait = {
                "polls": polls,
                "elapsed_s": round(time.monotonic() - started, 6),
            }
            if snapshot["state"] in TERMINAL_STATES:
                return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            sleep = min(max_poll, random.uniform(poll, max(sleep * 3, poll)))
            if deadline is not None:
                sleep = min(sleep, max(deadline - time.monotonic(), 0.0))
            time.sleep(sleep)
