"""Triangel — the paper's primary contribution.

Triangel (paper section 4) extends the fixed Triage baseline with four new
structures and an aggression-control policy built on them:

* an extended per-PC **training table** with a two-deep address history,
  a local timestamp and per-PC confidence/sampling counters
  (:mod:`repro.core.training_table`);
* a **History Sampler** that randomly samples (previous, current) pairs so
  long-term reuse and pattern repetition can be observed far beyond what the
  cache retains (:mod:`repro.core.history_sampler`);
* a **Second-Chance Sampler** that recognises patterns whose repeats are
  temporally close but not in strict sequence (:mod:`repro.core.second_chance`);
* a **Metadata Reuse Buffer** that removes redundant L3 Markov-table
  accesses from high-degree chained prefetching
  (:mod:`repro.core.metadata_reuse_buffer`);
* a **Set Dueller** that picks the L3 partitioning by directly trading off
  modelled data-cache and Markov-table hit rates
  (:mod:`repro.core.set_dueller`).

:class:`repro.core.triangel.TriangelPrefetcher` composes them into the full
prefetcher, with the Bloom-sized (``Triangel-Bloom``) and MRB-less
(``Triangel-NoMRB``) variants used in the evaluation.
"""

from repro.core.config import TriangelConfig, triangel_structure_sizes
from repro.core.history_sampler import HistorySampler, SamplerHit
from repro.core.markov_table import TriangelMarkovTable
from repro.core.metadata_reuse_buffer import MetadataReuseBuffer
from repro.core.second_chance import SecondChanceSampler
from repro.core.set_dueller import SetDueller
from repro.core.training_table import TriangelTrainingEntry, TriangelTrainingTable
from repro.core.triangel import TriangelPrefetcher

__all__ = [
    "TriangelConfig",
    "triangel_structure_sizes",
    "TriangelMarkovTable",
    "HistorySampler",
    "SamplerHit",
    "MetadataReuseBuffer",
    "SecondChanceSampler",
    "SetDueller",
    "TriangelTrainingEntry",
    "TriangelTrainingTable",
    "TriangelPrefetcher",
]
