"""Triangel configuration and dedicated-storage sizing (paper table 1).

:class:`TriangelConfig` gathers every tunable of the prefetcher with the
paper's defaults.  :func:`triangel_structure_sizes` reproduces table 1 —
the storage cost of each dedicated structure — from the per-field bit widths
the paper gives (figure 5 for the training table, section 4.8 for the rest),
and is what the ``table1`` benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TriangelConfig:
    """All Triangel parameters, defaulting to the paper's configuration.

    The counter thresholds implement section 4.4.2/4.5 exactly: 4-bit
    counters initialised to 8, BasePatternConf counting +1/-2 (a 2/3
    usefulness threshold), HighPatternConf counting +1/-5 (a 5/6 threshold),
    lookahead switching to 2 when HighPatternConf saturates at 15 and back to
    1 when BasePatternConf falls below 8, and degree-4 chained prefetching
    when HighPatternConf exceeds 8.
    """

    # Training table (figure 5).
    training_entries: int = 512
    training_assoc: int = 4
    pc_tag_bits: int = 10

    # Confidence counters (section 4.4).
    conf_bits: int = 4
    conf_initial: int = 8
    base_pattern_decrement: int = 2
    high_pattern_decrement: int = 5

    # History Sampler (section 4.4 / table 1).
    sampler_entries: int = 512
    sampler_assoc: int = 2

    # Second-Chance Sampler (section 4.4.2 / figure 8).
    second_chance_entries: int = 64
    second_chance_window_fills: int = 512

    # Metadata Reuse Buffer (section 4.6).
    mrb_entries: int = 256
    mrb_assoc: int = 2
    use_mrb: bool = True

    # Set Dueller (section 4.7 / figure 9).
    dueller_sampled_sets: int = 64
    dueller_window: int = 8192
    dueller_markov_weight: float = 12.0
    dueller_bias: float = 2.0
    sizing_mechanism: str = "set-dueller"  # or "bloom"
    bloom_bias: float = 1.5
    bloom_window: int = 4096
    bloom_bits: int = 1 << 14
    bloom_hashes: int = 4

    # Markov table (section 4.3).
    metadata_format: str = "42-bit"
    markov_replacement: str = "srrip"
    max_markov_ways: int = 8
    markov_tag_bits: int = 10
    markov_latency: float = 25.0
    max_entries_override: int | None = None

    # Aggression (section 4.5).
    max_degree: int = 4
    enable_lookahead: bool = True
    enable_reuse_conf: bool = True
    enable_base_pattern_conf: bool = True
    enable_high_pattern_conf: bool = True
    enable_second_chance: bool = True

    # History-sampler insertion probability control (section 4.4.3).
    sample_rate_bits: int = 4
    sample_rate_initial: int = 8

    # Deterministic seed for the sampling LCG.
    seed: int = 0x7A1A

    def __post_init__(self) -> None:
        if self.max_degree <= 0:
            raise ValueError("max_degree must be positive")
        if self.sizing_mechanism not in ("set-dueller", "bloom"):
            raise ValueError(
                f"sizing_mechanism must be 'set-dueller' or 'bloom', got {self.sizing_mechanism!r}"
            )
        if self.training_entries % self.training_assoc != 0:
            raise ValueError("training_entries must be a multiple of training_assoc")
        if self.sampler_entries % self.sampler_assoc != 0:
            raise ValueError("sampler_entries must be a multiple of sampler_assoc")


@dataclass
class StructureSize:
    """Storage cost of one dedicated structure."""

    name: str
    entries: int
    bits_per_entry: int

    @property
    def bytes(self) -> float:
        return self.entries * self.bits_per_entry / 8.0


def triangel_structure_sizes(config: TriangelConfig | None = None) -> list[StructureSize]:
    """Reproduce table 1: per-structure dedicated storage for Triangel.

    Bit widths follow the paper: the training-table entry is figure 5's 121
    bits plus a valid bit (10 + 31 + 31 + 32 + 4 + 8 + 4 + 1 + 1 = 122 bits,
    512 × 122 / 8 = 7 808 B); the History Sampler stores a hashed lookup tag,
    a 31-bit target, the training-table index, a 32-bit timestamp and
    valid/used bits (95 bits → 6 080 B for 512 entries); the Second-Chance
    Sampler stores a 31-bit address, training-table index, fill-count
    timestamp and valid bit (73 bits → 584 B); the Metadata Reuse Buffer
    stores a Markov entry plus the 4 set-index bits not implied by its own
    index (46 bits → 1 472 B); and the Set Dueller stores one hashed tag per
    modelled way for 64 sets × (16 cache + 8 Markov) ways plus nine 32-bit
    counters (~2 106 B).  Total ≈ 17.6 KiB (table 1).
    """

    cfg = config or TriangelConfig()
    training_bits = cfg.pc_tag_bits + 31 + 31 + 32 + cfg.conf_bits + 2 * cfg.conf_bits + cfg.sample_rate_bits + 1 + 1
    sampler_index_bits = max(1, (cfg.training_entries - 1).bit_length())
    sampler_bits = 20 + 31 + sampler_index_bits + 32 + 1 + 1  # hashed tag, target, train-idx, timestamp, used, valid
    scs_bits = 31 + sampler_index_bits + 32 + 1  # address, train-idx, 32-bit fill-count stamp, valid
    mrb_bits = 46
    dueller_tag_bits = 10 + 1  # hashed tag + valid, per modelled way
    dueller_ways = 16 + 8

    sizes = [
        StructureSize("Training Table", cfg.training_entries, training_bits),
        StructureSize("History Sampler", cfg.sampler_entries, sampler_bits),
        StructureSize("Second-Chance Sampler", cfg.second_chance_entries, scs_bits),
        StructureSize("Metadata Reuse Buffer", cfg.mrb_entries, mrb_bits),
        StructureSize(
            "Set Dueller",
            cfg.dueller_sampled_sets * dueller_ways,
            dueller_tag_bits,
        ),
    ]
    return sizes


def total_dedicated_storage_bytes(config: TriangelConfig | None = None) -> float:
    """Total dedicated Triangel storage in bytes (paper: ≈17.6 KiB)."""

    dueller_counters_bytes = 9 * 4
    return sum(size.bytes for size in triangel_structure_sizes(config)) + dueller_counters_bytes
