"""The History Sampler (paper section 4.4, figure 7).

The History Sampler decides whether a PC's access pattern is worth storing
in the Markov table at all.  It randomly samples (previous address, current
address) pairs from the training stream into a small 2-way associative
table; because entries are sampled rather than stored exhaustively, the
structure can observe reuse over distances far longer than its own size.

On every training event the previous address (LastAddr[0]) is looked up:

* a hit whose Train-Idx matches the current PC's training entry means the
  address has repeated — if the timestamp distance is below the Markov
  table's maximum capacity the pattern fits on chip and **ReuseConf** rises;
* if, additionally, the sampled entry's target matches the address now being
  trained, the (x, y) pair has repeated exactly and **PatternConf** rises;
* a mismatching target defers judgement to the Second-Chance Sampler.

Insertion is probabilistic with per-PC rate control (section 4.4.3): the
probability is ``SamplerSize / MaxSize × 2^(SampleRate − 8)``, and the
victim analysis on insertion nudges SampleRate (and the victim PC's
ReuseConf) so that PCs with very long reuse distances still get observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.hashing import LinearCongruentialSampler, fold_hash, mix64


@dataclass
class HistorySamplerStats:
    lookups: int = 0
    hits: int = 0
    insert_attempts: int = 0
    inserts: int = 0
    victims_stale: int = 0
    victims_useful: int = 0


@dataclass(slots=True)
class SamplerEntry:
    valid: bool = False
    address_tag: int = 0
    address: int = 0
    target: int = 0
    train_idx: int = -1
    timestamp: int = 0
    used: bool = False
    last_use: int = 0


@dataclass(slots=True)
class SamplerHit:
    """Result of a History Sampler lookup hit."""

    target: int
    train_idx: int
    timestamp: int
    entry: SamplerEntry


@dataclass(slots=True)
class VictimInfo:
    """Description of the entry displaced by an insertion."""

    address: int
    target: int
    train_idx: int
    timestamp: int
    used: bool


class HistorySampler:
    """Small 2-way associative sampler of (address, target) training pairs."""

    def __init__(
        self,
        entries: int = 512,
        assoc: int = 2,
        tag_bits: int = 20,
        seed: int = 0x5A3913,
    ) -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc != 0:
            raise ValueError("entries must be a positive multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.tag_bits = tag_bits
        self._sets = [[SamplerEntry() for _ in range(assoc)] for _ in range(self.num_sets)]
        self._clock = 0
        self.rng = LinearCongruentialSampler(seed)
        self.stats = HistorySamplerStats()

    def _locate(self, line_address: int) -> tuple[int, int]:
        return mix64(line_address) % self.num_sets, fold_hash(line_address, self.tag_bits)

    # -- lookup --------------------------------------------------------------
    def lookup(
        self, line_address: int, refresh_timestamp: int | None = None
    ) -> SamplerHit | None:
        """Look up a previous address; mark the entry used on a hit.

        ``refresh_timestamp`` re-stamps the entry with the caller's current
        per-PC timestamp after the hit's distance has been captured, so each
        *repetition* of the address is measured against the previous one
        rather than against the original sampling instant.  Without this a
        long-lived sampled entry would accumulate an ever-growing distance
        and eventually look like it exceeded the Markov capacity even though
        every individual reuse fits comfortably.
        """

        self.stats.lookups += 1
        self._clock += 1
        set_index, tag = self._locate(line_address)
        for entry in self._sets[set_index]:
            if entry.valid and entry.address_tag == tag:
                entry.last_use = self._clock
                entry.used = True
                self.stats.hits += 1
                hit = SamplerHit(
                    target=entry.target,
                    train_idx=entry.train_idx,
                    timestamp=entry.timestamp,
                    entry=entry,
                )
                if refresh_timestamp is not None:
                    entry.timestamp = refresh_timestamp
                return hit
        return None

    # -- insertion --------------------------------------------------------------
    def insertion_probability(
        self, sample_rate: int, max_size: int, sample_rate_initial: int = 8
    ) -> float:
        """Probability of sampling one training pair (section 4.4.3)."""

        if max_size <= 0:
            return 1.0
        base = self.entries / max_size
        return base * (2.0 ** (sample_rate - sample_rate_initial))

    def should_insert(
        self, sample_rate: int, max_size: int, sample_rate_initial: int = 8
    ) -> bool:
        """Deterministically (per seed) decide whether to sample this pair."""

        probability = self.insertion_probability(sample_rate, max_size, sample_rate_initial)
        return self.rng.sample(probability)

    def insert(
        self,
        line_address: int,
        target: int,
        train_idx: int,
        timestamp: int,
    ) -> VictimInfo | None:
        """Insert a sampled (address, target) pair; return the displaced victim."""

        self.stats.insert_attempts += 1
        self._clock += 1
        set_index, tag = self._locate(line_address)
        ways = self._sets[set_index]

        # Re-sampling the same address refreshes the entry in place.
        for entry in ways:
            if entry.valid and entry.address_tag == tag:
                entry.address = line_address
                entry.target = target
                entry.train_idx = train_idx
                entry.timestamp = timestamp
                entry.used = False
                entry.last_use = self._clock
                self.stats.inserts += 1
                return None

        victim_entry = None
        for entry in ways:
            if not entry.valid:
                victim_entry = entry
                break
        victim_info = None
        if victim_entry is None:
            victim_entry = min(ways, key=lambda candidate: candidate.last_use)
            victim_info = VictimInfo(
                address=victim_entry.address,
                target=victim_entry.target,
                train_idx=victim_entry.train_idx,
                timestamp=victim_entry.timestamp,
                used=victim_entry.used,
            )
        victim_entry.valid = True
        victim_entry.address_tag = tag
        victim_entry.address = line_address
        victim_entry.target = target
        victim_entry.train_idx = train_idx
        victim_entry.timestamp = timestamp
        victim_entry.used = False
        victim_entry.last_use = self._clock
        self.stats.inserts += 1
        return victim_info

    def occupancy(self) -> int:
        """Number of valid entries (test helper)."""

        return sum(1 for ways in self._sets for entry in ways if entry.valid)
