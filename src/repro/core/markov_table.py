"""Triangel's Markov table (paper section 4.3, figure 6).

Structurally this is the same partition-resident Markov table as the fixed
Triage baseline (:class:`repro.triage.markov_table.MarkovTable`) — the same
sub-set indexing, the same per-entry confidence bit — but configured with
Triangel's choices:

* the prefetch target is stored directly as a full line address (the 42-bit
  format), so 12 entries fit per 64-byte line and no lookup table is needed;
* replacement within a line uses SRRIP rather than HawkEye, saving the
  13 KiB HawkEye dueller (section 4.8).
"""

from __future__ import annotations

from repro.triage.markov_table import MarkovTable
from repro.triage.metadata import Full42Format


class TriangelMarkovTable(MarkovTable):
    """A :class:`MarkovTable` pre-configured with Triangel's format and policy."""

    def __init__(
        self,
        l3_sets: int,
        max_ways: int = 8,
        tag_bits: int = 10,
        replacement: str = "srrip",
    ) -> None:
        super().__init__(
            l3_sets=l3_sets,
            max_ways=max_ways,
            metadata_format=Full42Format(),
            tag_bits=tag_bits,
            replacement=replacement,
        )
