"""The Metadata Reuse Buffer (paper section 4.6).

Degree-4 prefetching walks a chain of Markov-table entries on every trigger,
and successive triggers walk overlapping chains — so without care, raising
the degree multiplies the number of (25-cycle, energy-costly) accesses to
the L3's metadata partition.  Triage's energy doubles at degree 8 for this
reason.

The Metadata Reuse Buffer is a 256-entry, 2-way set-associative cache of the
most recently *used* Markov entries, held next to the prefetcher.  Chained
walks consult it before the L3: repeats from one overlapping walk to the
next hit here, so most degree-4 triggers cost only a single L3 Markov
lookup.  It uses FIFO replacement because entries are accessed a bounded
number of times (once per remaining degree) and should then leave.

It also enables one further optimisation: when training is about to update
a Markov entry whose content would not change (same target, same confidence)
and that entry is present here — which is exactly what happens when
prefetches are accurate, because the entry was just used to generate a
prefetch — the L3 update can be skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.hashing import mix64


@dataclass
class MrbStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    update_suppressions: int = 0


@dataclass(slots=True)
class MrbEntry:
    valid: bool = False
    index_address: int = 0
    target: int = 0
    confidence: bool = False
    fill_order: int = 0


class MetadataReuseBuffer:
    """Small FIFO-replaced cache of recently used Markov entries."""

    def __init__(self, entries: int = 256, assoc: int = 2) -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc != 0:
            raise ValueError("entries must be a positive multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets = [[MrbEntry() for _ in range(assoc)] for _ in range(self.num_sets)]
        self._order = 0
        self.stats = MrbStats()

    def _set_for(self, index_address: int) -> list[MrbEntry]:
        return self._sets[mix64(index_address) % self.num_sets]

    def lookup(self, index_address: int) -> MrbEntry | None:
        """Return the cached Markov entry for ``index_address``, if present."""

        self.stats.lookups += 1
        for entry in self._set_for(index_address):
            if entry.valid and entry.index_address == index_address:
                self.stats.hits += 1
                return entry
        return None

    def insert(self, index_address: int, target: int, confidence: bool) -> None:
        """Cache a Markov entry that was just used to generate a prefetch."""

        self._order += 1
        ways = self._set_for(index_address)
        for entry in ways:
            if entry.valid and entry.index_address == index_address:
                entry.target = target
                entry.confidence = confidence
                # FIFO: do not refresh fill_order on update.
                self.stats.inserts += 1
                return
        victim = None
        for entry in ways:
            if not entry.valid:
                victim = entry
                break
        if victim is None:
            victim = min(ways, key=lambda entry: entry.fill_order)
        victim.valid = True
        victim.index_address = index_address
        victim.target = target
        victim.confidence = confidence
        victim.fill_order = self._order
        self.stats.inserts += 1

    def would_be_redundant_update(
        self, index_address: int, target: int, confidence_after: bool
    ) -> bool:
        """Whether a Markov update can be skipped (section 4.6's optimisation).

        True when the entry is cached here and neither its target nor its
        confidence bit would change.
        """

        entry = self.lookup(index_address)
        redundant = (
            entry is not None
            and entry.target == target
            and entry.confidence == confidence_after
        )
        if redundant:
            self.stats.update_suppressions += 1
        return redundant

    def invalidate(self, index_address: int) -> None:
        """Drop the cached copy (used when training changes the L3 entry)."""

        for entry in self._set_for(index_address):
            if entry.valid and entry.index_address == index_address:
                entry.valid = False

    def occupancy(self) -> int:
        return sum(1 for ways in self._sets for entry in ways if entry.valid)
