"""The Second-Chance Sampler (paper section 4.4.2, figure 8).

Temporal patterns are often *almost* sequential: when ``x`` repeats it may
be followed by ``h`` instead of the expected ``f``, yet ``f`` is still
accessed shortly afterwards — so a prefetch to ``f`` issued at ``x`` would
still be used before it is evicted from the L2, i.e. it is an accurate
prefetch despite the imperfect sequence (figure 4's PC 0x63 example).

The Second-Chance Sampler catches exactly this case.  When a History-Sampler
hit's target does not match the address currently being trained, the target
is placed in this small buffer together with the current L2 fill count.  If
the target is then seen (for the same training entry) within 512 L2 fills,
PatternConf is increased; if it is seen later than that, or falls out of the
buffer unseen, PatternConf is decreased.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SecondChanceStats:
    inserts: int = 0
    matches_in_window: int = 0
    matches_out_of_window: int = 0
    evicted_unmatched: int = 0


@dataclass(slots=True)
class SecondChanceEntry:
    valid: bool = False
    address: int = 0
    train_idx: int = -1
    fill_count: int = 0
    insert_order: int = 0


@dataclass(slots=True)
class SecondChanceOutcome:
    """Resolution of a Second-Chance entry."""

    within_window: bool
    train_idx: int


class SecondChanceSampler:
    """A small fully-associative buffer of deferred pattern judgements."""

    def __init__(self, entries: int = 64, window_fills: int = 512) -> None:
        if entries <= 0 or window_fills <= 0:
            raise ValueError("entries and window_fills must be positive")
        self.capacity = entries
        self.window_fills = window_fills
        self._entries = [SecondChanceEntry() for _ in range(entries)]
        self._order = 0
        self.stats = SecondChanceStats()

    def insert(self, address: int, train_idx: int, fill_count: int) -> SecondChanceOutcome | None:
        """Defer judgement on ``address``; return a forced outcome if a live
        entry had to be evicted to make room (counted as a failed pattern)."""

        self.stats.inserts += 1
        self._order += 1
        forced: SecondChanceOutcome | None = None

        slot = None
        for entry in self._entries:
            if entry.valid and entry.address == address and entry.train_idx == train_idx:
                # Already pending: refresh the window start.
                entry.fill_count = fill_count
                entry.insert_order = self._order
                return None
            if slot is None and not entry.valid:
                slot = entry
        if slot is None:
            slot = min(
                (entry for entry in self._entries), key=lambda entry: entry.insert_order
            )
            self.stats.evicted_unmatched += 1
            forced = SecondChanceOutcome(within_window=False, train_idx=slot.train_idx)
        slot.valid = True
        slot.address = address
        slot.train_idx = train_idx
        slot.fill_count = fill_count
        slot.insert_order = self._order
        return forced

    def check(
        self, address: int, train_idx: int, current_fill_count: int
    ) -> SecondChanceOutcome | None:
        """Check whether ``address`` resolves a pending entry for this PC.

        A match removes the entry and reports whether it arrived within the
        512-fill window (an under-approximation of L2 capacity, so a prefetch
        issued back then would still have been resident and useful).
        """

        for entry in self._entries:
            if entry.valid and entry.address == address and entry.train_idx == train_idx:
                entry.valid = False
                within = (current_fill_count - entry.fill_count) <= self.window_fills
                if within:
                    self.stats.matches_in_window += 1
                else:
                    self.stats.matches_out_of_window += 1
                return SecondChanceOutcome(within_window=within, train_idx=train_idx)
        return None

    def expire_older_than(self, current_fill_count: int) -> list[SecondChanceOutcome]:
        """Retire entries whose window has passed without being matched.

        Each expired entry is a pattern that failed its second chance, so the
        caller decrements the owning PC's PatternConf.
        """

        outcomes: list[SecondChanceOutcome] = []
        for entry in self._entries:
            if entry.valid and current_fill_count - entry.fill_count > self.window_fills:
                entry.valid = False
                self.stats.evicted_unmatched += 1
                outcomes.append(
                    SecondChanceOutcome(within_window=False, train_idx=entry.train_idx)
                )
        return outcomes

    def occupancy(self) -> int:
        return sum(1 for entry in self._entries if entry.valid)
