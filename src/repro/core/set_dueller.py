"""The Set Dueller (paper section 4.7, figure 9).

The Bloom-filter sizing inherited from Triage-ISR has a persistent bias:
whenever there are unique Markov indices to store, the partition grows,
regardless of whether the displaced L3 data capacity would have produced
more hits.  Triangel replaces it with a set-duelling mechanism that models
both extremes directly and interpolates.

For 64 sampled L3 sets the dueller keeps two shadow tag arrays:

* one models a **full-size data cache** (all 16 ways, no partition), fed by
  the miss/prefetch-hit stream the prefetcher sees;
* one models a **full-size Markov table** (all 8 reservable ways), fed by
  the Markov-index stream.

Both are modelled as LRU so every tag has a unique evictability rank, which
lets a single access update all nine possible partitionings at once: a data
hit at stack position *i* would be a hit in every configuration that leaves
at least *i+1* ways of data, and a Markov hit at position *j* in every
configuration that reserves at least *j+1* ways for metadata.  Nine global
counters accumulate these would-be hits; at the end of each window the
partitioning with the highest score wins.

Markov entries are 12-per-line, so the shadow Markov array samples 1/12 of
the index stream and each hit is worth 12 cache-line hits; because a Markov
hit saves a prefetch's DRAM access less often than a cache hit saves a
demand DRAM access, hits are further biased *against* by a factor B
(2 by default), making each sampled Markov hit worth 6 (footnote 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.hashing import fold_hash, mix64


@dataclass
class SetDuellerStats:
    data_observations: int = 0
    markov_observations: int = 0
    markov_sampled: int = 0
    data_hits: int = 0
    markov_hits: int = 0
    windows: int = 0
    decisions: dict = field(default_factory=dict)


class _ShadowTagArray:
    """An LRU stack of hashed tags for one sampled set."""

    def __init__(self, ways: int, tag_bits: int = 10) -> None:
        self.ways = ways
        self.tag_bits = tag_bits
        self._stack: list[int] = []

    def access(self, line_address: int) -> int | None:
        """Access the shadow array; return the LRU-stack hit position or None.

        Position 0 is most-recently-used; the returned value is the number of
        ways that must be allocated (minus one) for this access to hit.
        """

        tag = fold_hash(line_address >> 6, self.tag_bits)
        try:
            position = self._stack.index(tag)
        except ValueError:
            position = None
        if position is not None:
            self._stack.pop(position)
        self._stack.insert(0, tag)
        del self._stack[self.ways :]
        return position


class SetDueller:
    """Chooses the Markov partition size by duelling modelled hit rates."""

    def __init__(
        self,
        l3_sets: int,
        cache_ways: int = 16,
        max_markov_ways: int = 8,
        sampled_sets: int = 64,
        window: int = 8192,
        markov_weight: float = 12.0,
        bias: float = 2.0,
        markov_sample_period: int = 12,
        tag_bits: int = 10,
    ) -> None:
        if l3_sets <= 0:
            raise ValueError("l3_sets must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.l3_sets = l3_sets
        self.cache_ways = cache_ways
        self.max_markov_ways = max_markov_ways
        self.window = window
        self.markov_weight = markov_weight
        self.bias = bias
        self.markov_sample_period = max(1, markov_sample_period)
        sample_period = max(1, l3_sets // max(1, sampled_sets))
        self._sampled_sets = {
            set_index
            for set_index in range(l3_sets)
            if mix64(set_index) % sample_period == 0
        }
        self._shadow_cache = {
            set_index: _ShadowTagArray(cache_ways, tag_bits)
            for set_index in self._sampled_sets
        }
        self._shadow_markov = {
            set_index: _ShadowTagArray(max_markov_ways, tag_bits)
            for set_index in self._sampled_sets
        }
        # counters[k] scores the configuration with k ways reserved for the
        # Markov table (and cache_ways - k ways of data).
        self.counters = [0.0] * (max_markov_ways + 1)
        self._events_in_window = 0
        self._current_ways = 0
        self.stats = SetDuellerStats()

    # -- helpers ---------------------------------------------------------------
    def _set_of(self, line_address: int) -> int:
        return (line_address >> 6) % self.l3_sets

    @property
    def sampled_set_count(self) -> int:
        return len(self._sampled_sets)

    @property
    def current_ways(self) -> int:
        return self._current_ways

    # -- observation ---------------------------------------------------------------
    def observe_data_access(self, line_address: int) -> int | None:
        """Feed one demand miss/prefetch-hit address; maybe return a decision."""

        self.stats.data_observations += 1
        set_index = self._set_of(line_address)
        if set_index in self._sampled_sets:
            position = self._shadow_cache[set_index].access(line_address)
            if position is not None:
                self.stats.data_hits += 1
                # A hit at stack position i needs at least i+1 data ways, i.e.
                # at most cache_ways - (i+1) ways reserved for the Markov table.
                max_reservable = self.cache_ways - (position + 1)
                limit = min(self.max_markov_ways, max_reservable)
                for reserved in range(0, limit + 1):
                    self.counters[reserved] += 1.0
        return self._advance_window()

    def observe_markov_access(self, index_line_address: int) -> int | None:
        """Feed one Markov-table index access; maybe return a decision."""

        self.stats.markov_observations += 1
        set_index = self._set_of(index_line_address)
        if set_index in self._sampled_sets:
            # Sample 1/12 of entries so shadow-tag lifetimes match the real
            # table, where 12 entries share one cache line.
            if mix64(index_line_address >> 6) % self.markov_sample_period == 0:
                self.stats.markov_sampled += 1
                position = self._shadow_markov[set_index].access(index_line_address)
                if position is not None:
                    self.stats.markov_hits += 1
                    value = self.markov_weight / self.bias
                    for reserved in range(position + 1, self.max_markov_ways + 1):
                        self.counters[reserved] += value
        return self._advance_window()

    # -- decision ---------------------------------------------------------------------
    def _advance_window(self) -> int | None:
        self._events_in_window += 1
        if self._events_in_window < self.window:
            return None
        decision = self.best_partition()
        self.stats.windows += 1
        self.stats.decisions[self.stats.windows] = decision
        self.counters = [0.0] * (self.max_markov_ways + 1)
        self._events_in_window = 0
        if decision == self._current_ways:
            return None
        self._current_ways = decision
        return decision

    def best_partition(self, hysteresis: float = 0.05) -> int:
        """The reservation (in ways) with the highest modelled hit score.

        Resizing the partition forces the Markov table's sets to be
        re-indexed, which drops entries (section 3.2), so the current
        partitioning is kept unless a different one scores at least
        ``hysteresis`` better — the paper notes that resizes should be rare.
        Among genuinely tied options the smallest reservation wins: less
        metadata means less displaced data for equal hit rate.
        """

        best_score = max(self.counters)
        current_score = self.counters[self._current_ways]
        if best_score <= current_score * (1.0 + hysteresis):
            return self._current_ways
        for reserved, score in enumerate(self.counters):
            if score == best_score:
                return reserved
        return self._current_ways
