"""Triangel's extended training table (paper section 4.2, figure 5).

Triangel keeps Triage's PC-indexed training table but extends every entry
with the state its aggression control needs:

* ``LastAddr[0]`` and ``LastAddr[1]`` — a two-deep shift register of the
  previous misses/prefetch-hits at this PC, so the Markov table can be
  trained at lookahead 2 when the prefetcher is in its aggressive state;
* ``Timestamp`` — a per-PC local counter incremented on every access to the
  entry, used to compute reuse distances in the History Sampler;
* ``ReuseConf`` — saturating confidence that this PC's pattern repeats
  within the Markov table's maximum capacity;
* ``BasePatternConf`` / ``HighPatternConf`` — saturating confidence that a
  stored (x, y) pair will yield an accurate prefetch, with asymmetric
  up/down factors giving 2/3 and 5/6 usefulness thresholds;
* ``SampleRate`` — per-PC control of the History Sampler insertion rate;
* ``Lookahead`` — whether Markov training currently uses LastAddr[0]
  (lookahead 1) or LastAddr[1] (lookahead 2) as the index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TriangelConfig
from repro.utils.counters import SaturatingCounter
from repro.utils.hashing import fold_hash, mix64


@dataclass
class TriangelTrainingStats:
    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    evictions: int = 0


@dataclass
class TriangelTrainingEntry:
    """One PC's training state (figure 5)."""

    valid: bool = False
    pc_tag: int = 0
    pc: int = 0
    last_addr_0: int | None = None
    last_addr_1: int | None = None
    timestamp: int = 0
    reuse_conf: SaturatingCounter = field(default_factory=SaturatingCounter)
    base_pattern_conf: SaturatingCounter = field(default_factory=SaturatingCounter)
    high_pattern_conf: SaturatingCounter = field(default_factory=SaturatingCounter)
    sample_rate: SaturatingCounter = field(default_factory=SaturatingCounter)
    lookahead: int = 1
    last_use: int = 0

    def push_address(self, line_address: int) -> None:
        """Shift ``line_address`` into LastAddr[0], moving [0] into [1]."""

        self.last_addr_1 = self.last_addr_0
        self.last_addr_0 = line_address

    def markov_index_address(self) -> int | None:
        """Address to use as the Markov-table training index.

        Lookahead 1 uses LastAddr[0] (the immediately preceding access);
        lookahead 2 uses LastAddr[1], storing non-adjacent pairs so chained
        prefetches run further ahead of the demand stream (section 4.5).
        """

        return self.last_addr_1 if self.lookahead == 2 else self.last_addr_0


class TriangelTrainingTable:
    """Set-associative, PC-indexed table of :class:`TriangelTrainingEntry`."""

    def __init__(self, config: TriangelConfig | None = None) -> None:
        self.config = config or TriangelConfig()
        cfg = self.config
        self.entries = cfg.training_entries
        self.assoc = cfg.training_assoc
        self.num_sets = self.entries // self.assoc
        self._sets: list[list[TriangelTrainingEntry]] = [
            [self._new_entry() for _ in range(self.assoc)] for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.stats = TriangelTrainingStats()

    def _new_entry(self) -> TriangelTrainingEntry:
        cfg = self.config
        return TriangelTrainingEntry(
            reuse_conf=SaturatingCounter(cfg.conf_bits, cfg.conf_initial, 1, 1),
            base_pattern_conf=SaturatingCounter(
                cfg.conf_bits, cfg.conf_initial, 1, cfg.base_pattern_decrement
            ),
            high_pattern_conf=SaturatingCounter(
                cfg.conf_bits, cfg.conf_initial, 1, cfg.high_pattern_decrement
            ),
            sample_rate=SaturatingCounter(
                cfg.sample_rate_bits, cfg.sample_rate_initial, 1, 1
            ),
        )

    def _locate(self, pc: int) -> tuple[int, int]:
        return mix64(pc) % self.num_sets, fold_hash(pc, self.config.pc_tag_bits)

    def entry_index(self, pc: int) -> int:
        """A stable identifier for the training entry a PC maps to.

        The History Sampler stores this index ("Train-Idx" in figure 7) so a
        sampler hit can verify it refers to the same training entry that is
        currently allocated for the triggering PC.
        """

        set_index, _tag = self._locate(pc)
        for way, entry in enumerate(self._sets[set_index]):
            if entry.valid and entry.pc == pc:
                return set_index * self.assoc + way
        return -1

    def entry_at(self, index: int) -> TriangelTrainingEntry | None:
        """Return the entry at a Train-Idx (may have been re-allocated)."""

        if not 0 <= index < self.entries:
            return None
        return self._sets[index // self.assoc][index % self.assoc]

    def find(self, pc: int) -> TriangelTrainingEntry | None:
        """Return the entry for ``pc`` if present (updates recency)."""

        self.stats.lookups += 1
        self._clock += 1
        set_index, tag = self._locate(pc)
        for entry in self._sets[set_index]:
            if entry.valid and entry.pc_tag == tag:
                entry.last_use = self._clock
                self.stats.hits += 1
                return entry
        return None

    def find_or_allocate(self, pc: int) -> tuple[TriangelTrainingEntry, int, bool]:
        """Return ``(entry, train_idx, allocated)`` for ``pc``.

        A newly allocated entry starts with all counters at their initial
        (mid-point) values, so a PC must demonstrate a repeating pattern
        before Triangel stores metadata or prefetches for it.
        """

        set_index, tag = self._locate(pc)
        entry = self.find(pc)
        if entry is not None:
            way = self._sets[set_index].index(entry)
            return entry, set_index * self.assoc + way, False
        ways = self._sets[set_index]
        victim_way = None
        for way, candidate in enumerate(ways):
            if not candidate.valid:
                victim_way = way
                break
        if victim_way is None:
            victim_way = min(range(self.assoc), key=lambda way: ways[way].last_use)
            self.stats.evictions += 1
        fresh = self._new_entry()
        fresh.valid = True
        fresh.pc_tag = tag
        fresh.pc = pc
        fresh.last_use = self._clock
        ways[victim_way] = fresh
        self.stats.allocations += 1
        return fresh, set_index * self.assoc + victim_way, True
