"""The Triangel prefetcher (paper section 4).

Triangel keeps Triage's overall shape — a PC-indexed training table feeding
a Markov table held in an L3 partition — and wraps it in sampling-based
aggression control:

* metadata is only stored, and prefetches only issued, for PCs whose
  **ReuseConf** and **BasePatternConf** counters have risen above their
  mid-point, i.e. PCs whose patterns have been *observed* to repeat within
  on-chip capacity and to predict accurately (section 4.5);
* when **HighPatternConf** saturates, training switches to lookahead 2 and
  prefetch generation chains up to degree 4, making prefetches timely
  without losing accuracy;
* the **Metadata Reuse Buffer** elides the redundant L3 metadata accesses
  that high-degree chained walks would otherwise incur, and skips Markov
  updates that would not change anything (section 4.6);
* the **Set Dueller** (or, for the Triangel-Bloom variant, the Bloom sizer)
  picks how many L3 ways the Markov partition may occupy (section 4.7).

The ablation flags in :class:`repro.core.config.TriangelConfig` let each of
these mechanisms be enabled independently, which is how the figure 20
ablation ladder is built.
"""

from __future__ import annotations

from repro.core.config import TriangelConfig
from repro.core.history_sampler import HistorySampler
from repro.core.metadata_reuse_buffer import MetadataReuseBuffer
from repro.core.second_chance import SecondChanceSampler
from repro.core.set_dueller import SetDueller
from repro.core.training_table import TriangelTrainingEntry, TriangelTrainingTable
from repro.memory.hierarchy import DemandResult, MemoryHierarchy
from repro.prefetch.base import DecisionBuffer, Prefetcher
from repro.triage.bloom import BloomPartitionSizer
from repro.triage.markov_table import MarkovTable
from repro.triage.metadata import make_metadata_format


class TriangelPrefetcher(Prefetcher):
    """Triangel: accurate, timely temporal prefetching with sampling control."""

    # observe_into's first statement returns, touching nothing, unless the
    # access missed the L2 or first-used a prefetched L2 line.
    observes_hits = False

    def __init__(self, config: TriangelConfig | None = None, name: str = "triangel") -> None:
        super().__init__(name)
        self.config = config or TriangelConfig()
        cfg = self.config
        self.training_table = TriangelTrainingTable(cfg)
        self.history_sampler = HistorySampler(
            entries=cfg.sampler_entries, assoc=cfg.sampler_assoc, seed=cfg.seed
        )
        self.second_chance = SecondChanceSampler(
            entries=cfg.second_chance_entries,
            window_fills=cfg.second_chance_window_fills,
        )
        self.mrb = MetadataReuseBuffer(entries=cfg.mrb_entries, assoc=cfg.mrb_assoc)
        self.markov: MarkovTable | None = None
        self.dueller: SetDueller | None = None
        self.bloom_sizer: BloomPartitionSizer | None = None

    # -- wiring -----------------------------------------------------------------
    def attach(self, hierarchy: MemoryHierarchy) -> None:
        super().attach(hierarchy)
        cfg = self.config
        l3 = hierarchy.l3
        metadata = make_metadata_format(cfg.metadata_format)
        self.markov = MarkovTable(
            l3_sets=l3.num_sets,
            max_ways=min(cfg.max_markov_ways, l3.max_reserved_ways),
            metadata_format=metadata,
            tag_bits=cfg.markov_tag_bits,
            replacement=cfg.markov_replacement,
        )
        if cfg.sizing_mechanism == "set-dueller":
            self.dueller = SetDueller(
                l3_sets=l3.num_sets,
                cache_ways=l3.assoc,
                max_markov_ways=self.markov.max_ways,
                sampled_sets=cfg.dueller_sampled_sets,
                window=cfg.dueller_window,
                markov_weight=cfg.dueller_markov_weight,
                bias=cfg.dueller_bias,
                markov_sample_period=max(1, metadata.entries_per_line),
            )
        else:
            self.bloom_sizer = BloomPartitionSizer(
                entries_per_way=self.markov.entries_per_way(),
                max_ways=self.markov.max_ways,
                window=cfg.bloom_window,
                bias=cfg.bloom_bias,
                bloom_bits=cfg.bloom_bits,
                bloom_hashes=cfg.bloom_hashes,
            )

    # -- main entry point -----------------------------------------------------------
    def observe_into(
        self,
        pc: int,
        line_addr: int,
        result: DemandResult,
        now: float,
        sink: DecisionBuffer,
    ) -> None:
        if not (result.l2_miss or result.l2_prefetch_first_use):
            return
        if self.markov is None or self.hierarchy is None:
            raise RuntimeError("TriangelPrefetcher must be attached to a hierarchy first")
        cfg = self.config

        self.stats.triggers += 1
        entry, train_idx, _allocated = self.training_table.find_or_allocate(pc)
        entry.timestamp += 1
        previous = entry.last_addr_0

        self._observe_data_for_sizing(line_addr)

        if previous is not None and previous != line_addr:
            self._update_confidence(entry, train_idx, previous, line_addr)
            self._maybe_sample(entry, train_idx, previous, line_addr)

        if cfg.enable_second_chance:
            self._resolve_second_chances(entry, train_idx, line_addr)

        self._update_lookahead(entry)

        if self._should_act(entry):
            self._train_markov(entry, pc, line_addr)
            self._generate_prefetches(entry, line_addr, sink)

        entry.push_address(line_addr)
        self.stats.training_events += 1

    # -- confidence maintenance --------------------------------------------------------
    def _update_confidence(
        self,
        entry: TriangelTrainingEntry,
        train_idx: int,
        previous: int,
        current: int,
    ) -> None:
        """History-Sampler driven updates of ReuseConf and PatternConf (§4.4)."""

        hit = self.history_sampler.lookup(previous, refresh_timestamp=entry.timestamp)
        if hit is None or hit.train_idx != train_idx:
            return
        distance = entry.timestamp - hit.timestamp
        if 0 <= distance <= self.markov.max_capacity:
            entry.reuse_conf.increase()
        else:
            entry.reuse_conf.decrease()

        if hit.target == current:
            entry.base_pattern_conf.increase()
            entry.high_pattern_conf.increase()
            return
        if self.hierarchy.l2.probe(hit.target):
            # The hypothetical prefetch would have been dropped as resident,
            # so this mismatch says nothing about accuracy: leave counters.
            return
        if self.config.enable_second_chance:
            forced = self.second_chance.insert(
                hit.target, train_idx, self.hierarchy.l2_fill_count
            )
            if forced is not None:
                self._apply_pattern_outcome(forced.train_idx, within_window=False)
        else:
            entry.base_pattern_conf.decrease()
            entry.high_pattern_conf.decrease()

    def _maybe_sample(
        self,
        entry: TriangelTrainingEntry,
        train_idx: int,
        previous: int,
        current: int,
    ) -> None:
        """Probabilistic History-Sampler insertion with victim analysis (§4.4.3)."""

        cfg = self.config
        if not self.history_sampler.should_insert(
            entry.sample_rate.value, self.markov.max_capacity, cfg.sample_rate_initial
        ):
            return
        victim = self.history_sampler.insert(previous, current, train_idx, entry.timestamp)
        if victim is None or victim.train_idx < 0:
            return
        victim_entry = self.training_table.entry_at(victim.train_idx)
        if victim_entry is None or not victim_entry.valid:
            return
        victim_distance = victim_entry.timestamp - victim.timestamp
        if victim_distance > self.markov.max_capacity:
            # Only stale entries are being displaced: sampling can afford to
            # speed up, and the victim PC's pattern evidently did not repeat
            # within on-chip capacity while we watched it.
            if not victim.used:
                victim_entry.reuse_conf.decrease()
            entry.sample_rate.increase()
            self.history_sampler.stats.victims_stale += 1
        elif not victim.used:
            # We displaced a potentially useful observation: slow down.
            entry.sample_rate.decrease()
            self.history_sampler.stats.victims_useful += 1

    def _resolve_second_chances(
        self, entry: TriangelTrainingEntry, train_idx: int, current: int
    ) -> None:
        fills = self.hierarchy.l2_fill_count
        outcome = self.second_chance.check(current, train_idx, fills)
        if outcome is not None:
            self._apply_pattern_outcome(outcome.train_idx, outcome.within_window)
        for expired in self.second_chance.expire_older_than(fills):
            self._apply_pattern_outcome(expired.train_idx, within_window=False)

    def _apply_pattern_outcome(self, train_idx: int, within_window: bool) -> None:
        target_entry = self.training_table.entry_at(train_idx)
        if target_entry is None or not target_entry.valid:
            return
        if within_window:
            target_entry.base_pattern_conf.increase()
            target_entry.high_pattern_conf.increase()
        else:
            target_entry.base_pattern_conf.decrease()
            target_entry.high_pattern_conf.decrease()

    # -- aggression control -----------------------------------------------------------
    def _update_lookahead(self, entry: TriangelTrainingEntry) -> None:
        cfg = self.config
        if not cfg.enable_lookahead:
            entry.lookahead = 1
            return
        if not cfg.enable_high_pattern_conf:
            entry.lookahead = 2
            return
        if entry.high_pattern_conf.is_saturated:
            entry.lookahead = 2
        elif entry.base_pattern_conf.value < cfg.conf_initial:
            entry.lookahead = 1

    def _should_act(self, entry: TriangelTrainingEntry) -> bool:
        cfg = self.config
        if cfg.enable_reuse_conf and not entry.reuse_conf.above_initial():
            return False
        if cfg.enable_base_pattern_conf and not entry.base_pattern_conf.above_initial():
            return False
        return True

    def _degree_for(self, entry: TriangelTrainingEntry) -> int:
        cfg = self.config
        if not cfg.enable_high_pattern_conf:
            return cfg.max_degree
        if entry.high_pattern_conf.value > cfg.conf_initial:
            return cfg.max_degree
        return 1

    # -- Markov maintenance ---------------------------------------------------------------
    def _train_markov(self, entry: TriangelTrainingEntry, pc: int, current: int) -> None:
        cfg = self.config
        index_address = entry.markov_index_address()
        if index_address is None or index_address == current:
            return
        if cfg.max_entries_override is not None and (
            self.markov.occupancy() >= cfg.max_entries_override
        ):
            return
        self._observe_markov_for_sizing(index_address)
        if cfg.use_mrb and self.mrb.would_be_redundant_update(index_address, current, True):
            self.stats.markov_update_skips += 1
            return
        self.markov.train(index_address, current, pc)
        self.hierarchy.record_markov_access()
        self.stats.markov_updates += 1
        if cfg.use_mrb:
            # Keep the buffered copy coherent with the table.
            self.mrb.invalidate(index_address)

    def _generate_prefetches(
        self, entry: TriangelTrainingEntry, line_addr: int, sink: DecisionBuffer
    ) -> None:
        cfg = self.config
        degree = self._degree_for(entry)
        current = line_addr
        accumulated_latency = 0.0
        for _step in range(degree):
            target: int | None = None
            confidence = False
            from_mrb = False
            if cfg.use_mrb:
                buffered = self.mrb.lookup(current)
                if buffered is not None:
                    target = buffered.target
                    confidence = buffered.confidence
                    from_mrb = True
                    self.stats.mrb_hits += 1
            if target is None:
                accumulated_latency += cfg.markov_latency
                self._observe_markov_for_sizing(current)
                target = self.markov.lookup(current)
                self.hierarchy.record_markov_access()
                self.stats.markov_lookups += 1
                if target is not None and cfg.use_mrb:
                    stored = self.markov.peek(current)
                    confidence = bool(stored.confidence) if stored is not None else False
                    self.mrb.insert(current, target, confidence)
            if target is None:
                break
            if target != current and not self._target_resident(target):
                sink.emit(
                    target,
                    "l2",
                    accumulated_latency,
                    "mrb" if from_mrb else "markov",
                )
                self.stats.prefetches_issued += 1
            else:
                self.stats.prefetches_dropped_resident += 1
            current = target

    # -- partition sizing -----------------------------------------------------------------
    def _observe_data_for_sizing(self, line_addr: int) -> None:
        if self.dueller is not None:
            self._apply_sizing_decision(self.dueller.observe_data_access(line_addr))
        elif self.bloom_sizer is not None:
            self._apply_sizing_decision(self.bloom_sizer.observe(line_addr))

    def _observe_markov_for_sizing(self, index_address: int) -> None:
        if self.dueller is not None:
            self._apply_sizing_decision(self.dueller.observe_markov_access(index_address))

    def _apply_sizing_decision(self, ways: int | None) -> None:
        if ways is None or ways == self.markov.ways:
            return
        self.markov.set_ways(ways)
        self.hierarchy.set_markov_ways(ways)
