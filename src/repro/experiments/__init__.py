"""Experiment harness: studies, specs, the executor, the store, and figures.

Execution is layered: a declarative :class:`~repro.experiments.study.Study`
(axes: workloads × configurations(+params) × system × metric reducer)
*compiles* to immutable specs — a
:class:`~repro.experiments.jobs.RunSpec` for single-core cells, a
:class:`~repro.experiments.jobs.MultiProgramSpec` for multiprogrammed pairs
— the :class:`~repro.experiments.parallel.BatchExecutor` runs deduplicated,
freely-mixed batches of specs (optionally in worker processes), and the
:class:`~repro.experiments.store.ResultStore` persists completed runs of
both kinds across processes.
:class:`~repro.experiments.runner.ExperimentRunner` carries the execution
policy (system, jobs, store), and
:data:`~repro.experiments.studies.STUDIES` holds every figure and table of
the paper as a registered study.

On top of that pipeline, :mod:`repro.experiments.explore` searches the
configuration design space (grid, seeded random, successive halving on
sampled trace windows) with every evaluated point persisted through the
same store, reducing to Pareto fronts of coverage/accuracy against
metadata traffic.
"""

from repro.experiments.configs import (
    ABLATION_LADDER,
    ALL_CONFIGS,
    CONFIGS,
    EVALUATION_CONFIGS,
    METADATA_FORMAT_CONFIGS,
    PARAMETERISED_CONFIGS,
    ConfigRegistry,
    available_configurations,
    build_prefetchers,
    configuration_signatures,
)
from repro.experiments.explore import (
    Candidate,
    Explorer,
    SearchPlan,
    SearchResult,
    SearchSpace,
    describe_search,
    pareto_front,
    plan_search,
    render_search,
    resume_search,
    run_search,
)
from repro.experiments.jobs import (
    MultiProgramSpec,
    RunSpec,
    execute,
    execute_multiprogram_spec,
    execute_spec,
)
from repro.experiments.parallel import BatchExecutor, resolve_jobs, resolve_shards
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import (
    ResultStore,
    default_store,
    set_default_store,
    store_stats_payload,
)
from repro.experiments.study import FigureResult, Reducer, Study, StudyRegistry
from repro.experiments.studies import STUDIES
from repro.experiments import figures

__all__ = [
    "ABLATION_LADDER",
    "ALL_CONFIGS",
    "CONFIGS",
    "ConfigRegistry",
    "EVALUATION_CONFIGS",
    "METADATA_FORMAT_CONFIGS",
    "PARAMETERISED_CONFIGS",
    "available_configurations",
    "build_prefetchers",
    "configuration_signatures",
    "BatchExecutor",
    "ExperimentRunner",
    "FigureResult",
    "MultiProgramSpec",
    "Reducer",
    "ResultStore",
    "RunSpec",
    "STUDIES",
    "Study",
    "StudyRegistry",
    "default_store",
    "execute",
    "execute_multiprogram_spec",
    "execute_spec",
    "resolve_jobs",
    "resolve_shards",
    "set_default_store",
    "store_stats_payload",
    "figures",
]
