"""Experiment harness: named configurations, the runner, and per-figure experiments."""

from repro.experiments.configs import (
    ABLATION_LADDER,
    EVALUATION_CONFIGS,
    METADATA_FORMAT_CONFIGS,
    available_configurations,
    build_prefetchers,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures

__all__ = [
    "ABLATION_LADDER",
    "EVALUATION_CONFIGS",
    "METADATA_FORMAT_CONFIGS",
    "available_configurations",
    "build_prefetchers",
    "ExperimentRunner",
    "figures",
]
