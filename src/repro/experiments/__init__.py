"""Experiment harness: specs, the batch executor, the result store, and figures.

Execution is layered: an immutable spec — a
:class:`~repro.experiments.jobs.RunSpec` for single-core cells, a
:class:`~repro.experiments.jobs.MultiProgramSpec` for multiprogrammed pairs
— describes one simulation, the
:class:`~repro.experiments.parallel.BatchExecutor` runs deduplicated,
freely-mixed batches of specs (optionally in worker processes), and the
:class:`~repro.experiments.store.ResultStore` persists completed runs of
both kinds across processes.
:class:`~repro.experiments.runner.ExperimentRunner` is the high-level
interface the figures and CLI use.
"""

from repro.experiments.configs import (
    ABLATION_LADDER,
    EVALUATION_CONFIGS,
    METADATA_FORMAT_CONFIGS,
    PARAMETERISED_CONFIGS,
    available_configurations,
    build_prefetchers,
)
from repro.experiments.jobs import (
    MultiProgramSpec,
    RunSpec,
    execute,
    execute_multiprogram_spec,
    execute_spec,
)
from repro.experiments.parallel import BatchExecutor
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore, default_store, set_default_store
from repro.experiments import figures

__all__ = [
    "ABLATION_LADDER",
    "EVALUATION_CONFIGS",
    "METADATA_FORMAT_CONFIGS",
    "PARAMETERISED_CONFIGS",
    "available_configurations",
    "build_prefetchers",
    "BatchExecutor",
    "ExperimentRunner",
    "MultiProgramSpec",
    "ResultStore",
    "RunSpec",
    "default_store",
    "execute",
    "execute_multiprogram_spec",
    "execute_spec",
    "set_default_store",
    "figures",
]
