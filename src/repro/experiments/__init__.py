"""Experiment harness: specs, the batch executor, the result store, and figures.

Execution is layered: a :class:`~repro.experiments.jobs.RunSpec` describes
one simulation, the :class:`~repro.experiments.parallel.BatchExecutor` runs
deduplicated batches of specs (optionally in worker processes), and the
:class:`~repro.experiments.store.ResultStore` persists completed runs across
processes.  :class:`~repro.experiments.runner.ExperimentRunner` is the
high-level interface the figures and CLI use.
"""

from repro.experiments.configs import (
    ABLATION_LADDER,
    EVALUATION_CONFIGS,
    METADATA_FORMAT_CONFIGS,
    available_configurations,
    build_prefetchers,
)
from repro.experiments.jobs import RunSpec, execute_spec
from repro.experiments.parallel import BatchExecutor
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore, default_store, set_default_store
from repro.experiments import figures

__all__ = [
    "ABLATION_LADDER",
    "EVALUATION_CONFIGS",
    "METADATA_FORMAT_CONFIGS",
    "available_configurations",
    "build_prefetchers",
    "BatchExecutor",
    "ExperimentRunner",
    "ResultStore",
    "RunSpec",
    "default_store",
    "execute_spec",
    "set_default_store",
    "figures",
]
