"""The ``repro bench`` engine microbenchmark: simulated accesses per second.

Every figure in the repository is bounded by how fast the engine replays
memory accesses, so this module measures exactly that — the same simulation
run under the **reference** kernel (readable, object-per-access) and the
**fast** kernel (fused, columnar, allocation-free; see
:mod:`repro.sim.kernel`) — and records the result in ``BENCH_engine.json``,
the repository's performance trajectory file.

Two benchmark cases bracket the engine's operating range:

* ``synthetic-xalan`` — the ``xalan`` synthetic workload under the full
  Triangel stack, packed in memory at build time.  Fill- and
  prefetch-heavy, so the shared cache model dominates; this is the
  end-to-end figure-generation rate.
* ``replay-hot`` — a *recorded* ``.rtrc`` pointer-chase trace whose working
  set stays L1-resident after warm-up, replayed under the same Triangel
  stack.  With almost no cache-model work per access, the per-access engine
  overhead is the measurement — the replay-rate ceiling, and the case where
  the fused kernel's object elimination shows up undiluted.  This is "the
  packed-trace benchmark" the project tracks a ≥ 2× fast-vs-reference
  target on.

Both kernels must agree bit-for-bit on every statistic; a mismatch makes
the bench fail (and exit non-zero from the CLI) rather than report a
meaningless rate.  Timing uses best-of-``repeats`` wall time over the whole
run, warm-up included.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.configs import build_prefetchers
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.kernel import KERNELS, run_simulation
from repro.sim.timing import TimingModel

#: Where the CLI writes the benchmark record by default (repository root in
#: development checkouts; the current directory otherwise).
BENCH_FILENAME = "BENCH_engine.json"

#: Lines in the replay-hot chain: well inside the scaled 4 KiB L1.
_HOT_CHAIN_LINES = 48


class BenchParityError(RuntimeError):
    """The two kernels disagreed on a statistic — the bench result is void."""


@dataclass
class BenchCase:
    """One (workload, configuration) cell measured under both kernels."""

    name: str
    workload: str
    configuration: str
    description: str
    trace: object = field(repr=False)


def _simulator(system: SystemConfig, configuration: str) -> Simulator:
    return Simulator(
        system.build_hierarchy(),
        build_prefetchers(configuration, system),
        timing=TimingModel(system.timing),
        config=system,
        configuration_name=configuration,
    )


def _measure(
    case: BenchCase,
    system: SystemConfig,
    kernel: str,
    repeats: int,
    warmup_fraction: float,
) -> tuple[float, dict]:
    """Best wall-time over ``repeats`` runs and the (identical) statistics."""

    best = None
    stats = None
    warmup = int(len(case.trace) * warmup_fraction)
    for _ in range(repeats):
        simulator = _simulator(system, case.configuration)
        started = time.perf_counter()
        result = run_simulation(
            simulator,
            case.trace,
            kernel=kernel,
            workload_name=case.workload,
            warmup_accesses=warmup,
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        stats = asdict(result.stats)
    return best, stats


def _bench_cases(length: int, trace_dir: Path) -> list[BenchCase]:
    """Build the two benchmark streams (packing/recording is not timed)."""

    from repro.experiments.jobs import trace_for_workload
    from repro.traces.format import load_trace, pack_trace
    from repro.traces.recorder import record_workload

    synthetic = pack_trace(
        trace_for_workload("xalan", {"length": length}), name="xalan"
    )
    repeats = max(2, length // _HOT_CHAIN_LINES)
    recorded_path = record_workload(
        "pointer_chase",
        directory=trace_dir,
        name="bench_hot",
        overrides={"nodes": _HOT_CHAIN_LINES, "repeats": repeats},
    )
    recorded = load_trace(recorded_path)
    return [
        BenchCase(
            name="synthetic-xalan",
            workload="xalan",
            configuration="triangel",
            description=(
                "fill/prefetch-heavy synthetic workload, packed at build "
                "time; end-to-end figure-generation rate"
            ),
            trace=synthetic,
        ),
        BenchCase(
            name="replay-hot",
            workload="trace:bench_hot",
            configuration="triangel",
            description=(
                "recorded .rtrc pointer chase, L1-resident after warm-up; "
                "per-access engine overhead, the replay-rate ceiling"
            ),
            trace=recorded,
        ),
    ]


def run_bench(
    length: int = 44_000,
    repeats: int = 3,
    scale: float = 1.0,
    warmup_fraction: float = 0.25,
) -> dict:
    """Run every bench case under both kernels; return the JSON-safe record.

    Raises :class:`BenchParityError` if any case's statistics differ
    between kernels — speed numbers for diverging simulations would be
    meaningless, and the parity guarantee is the fast kernel's contract.
    """

    if length <= 0:
        raise ValueError("--length must be positive")
    if repeats <= 0:
        raise ValueError("--repeats must be positive")
    system = SystemConfig.scaled(scale)
    record: dict = {
        "bench": "engine-kernels",
        "python": f"{platform.python_implementation()} {platform.python_version()}",
        "length": length,
        "repeats": repeats,
        "kernels": list(KERNELS),
        "cases": [],
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        for case in _bench_cases(length, Path(tmp)):
            timings: dict[str, float] = {}
            statistics: dict[str, dict] = {}
            for kernel in KERNELS:
                timings[kernel], statistics[kernel] = _measure(
                    case, system, kernel, repeats, warmup_fraction
                )
            if statistics["reference"] != statistics["fast"]:
                diverging = sorted(
                    key
                    for key in statistics["reference"]
                    if statistics["reference"][key] != statistics["fast"][key]
                )
                raise BenchParityError(
                    f"{case.name}: kernels disagree on {diverging} — "
                    f"fast-kernel results are not trustworthy"
                )
            accesses = len(case.trace)
            reference_aps = accesses / timings["reference"]
            fast_aps = accesses / timings["fast"]
            record["cases"].append(
                {
                    "name": case.name,
                    "workload": case.workload,
                    "configuration": case.configuration,
                    "description": case.description,
                    "accesses": accesses,
                    "reference_accesses_per_second": round(reference_aps),
                    "fast_accesses_per_second": round(fast_aps),
                    "speedup": round(fast_aps / reference_aps, 2),
                    "parity": True,
                }
            )
    record["packed_trace_speedup"] = next(
        case["speedup"] for case in record["cases"] if case["name"] == "replay-hot"
    )
    return record


def render_bench(record: dict) -> str:
    """The bench record as the aligned text table the CLI prints."""

    lines = [
        f"engine kernel benchmark ({record['python']}, "
        f"best of {record['repeats']}, parity-checked)",
        f"{'case':<18} {'config':<10} {'accesses':>9} "
        f"{'reference/s':>12} {'fast/s':>12} {'speedup':>8}",
    ]
    for case in record["cases"]:
        lines.append(
            f"{case['name']:<18} {case['configuration']:<10} "
            f"{case['accesses']:>9} "
            f"{case['reference_accesses_per_second']:>12,} "
            f"{case['fast_accesses_per_second']:>12,} "
            f"{case['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def write_bench(record: dict, path: str | Path) -> Path:
    """Write the record as stable, diff-friendly JSON; returns the path."""

    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim for tooling
    """Allow ``python -m repro.experiments.bench`` in scripts."""

    record = run_bench()
    print(render_bench(record))
    write_bench(record, BENCH_FILENAME)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
