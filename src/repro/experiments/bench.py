"""The ``repro bench`` engine microbenchmark: simulated accesses per second.

Every figure in the repository is bounded by how fast the engine replays
memory accesses, so this module measures exactly that — the same simulation
run under the **reference** kernel (readable, object-per-access) and the
**fast** kernel (fused, columnar, allocation-free; see
:mod:`repro.sim.kernel`) — and records the result in ``BENCH_engine.json``,
the repository's performance trajectory file.

Two benchmark cases bracket the engine's operating range:

* ``synthetic-xalan`` — the ``xalan`` synthetic workload under the full
  Triangel stack, packed in memory at build time.  Fill- and
  prefetch-heavy, so the shared cache model dominates; this is the
  end-to-end figure-generation rate.
* ``replay-hot`` — a *recorded* ``.rtrc`` pointer-chase trace whose working
  set stays L1-resident after warm-up, replayed under the same Triangel
  stack.  With almost no cache-model work per access, the per-access engine
  overhead is the measurement — the replay-rate ceiling, and the case where
  the fused kernel's object elimination shows up undiluted.  This is "the
  packed-trace benchmark" the project tracks a ≥ 2× fast-vs-reference
  target on.

Both kernels must agree bit-for-bit on every statistic; a mismatch makes
the bench fail (and exit non-zero from the CLI) rather than report a
meaningless rate.  Timing uses best-of-``repeats`` wall time over the whole
run, warm-up included.

The replay-hot case is additionally measured **sharded** (see
:mod:`repro.sim.shard`): for each requested shard count K the trace is
split into K windows with warm-up overlap, every window is replayed on a
fresh simulator and timed individually, and the *critical path* — the
slowest single window — is reported as the sharded wall time.  On a machine
with ≥ K idle cores that equals end-to-end wall time; reporting it keeps
the bench honest on builders with fewer cores, where the windows timeshare.
Sharded cases gate on the parity contract (merged statistics vs the
sequential fast kernel, within :data:`~repro.sim.shard.
SHARD_PARITY_TOLERANCE`; ``accesses`` exactly equal) and **never** on
speed — a slow build box must not fail CI, a wrong merge must.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.configs import build_prefetchers
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.kernel import run_fast_window, run_simulation
from repro.sim.shard import (
    SHARD_PARITY_TOLERANCE,
    merge_shard_outcomes,
    plan_shards,
    shard_parity_report,
)
from repro.sim.stream import access_columns
from repro.sim.timing import TimingModel

#: Where the CLI writes the benchmark record by default (repository root in
#: development checkouts; the current directory otherwise).
BENCH_FILENAME = "BENCH_engine.json"

#: Lines in the replay-hot chain: well inside the scaled 4 KiB L1.
_HOT_CHAIN_LINES = 48

#: The kernels every case is cross-checked and timed under.  Deliberately
#: not :data:`~repro.sim.kernel.KERNELS`: ``fast-sharded`` is the fast
#: kernel under a different replay plan, measured by the sharded cases
#: below, not a third implementation to compare.
_COMPARED_KERNELS = ("reference", "fast")


class BenchParityError(RuntimeError):
    """The two kernels disagreed on a statistic — the bench result is void."""


@dataclass
class BenchCase:
    """One (workload, configuration) cell measured under both kernels."""

    name: str
    workload: str
    configuration: str
    description: str
    trace: object = field(repr=False)


def _simulator(system: SystemConfig, configuration: str) -> Simulator:
    return Simulator(
        system.build_hierarchy(),
        build_prefetchers(configuration, system),
        timing=TimingModel(system.timing),
        config=system,
        configuration_name=configuration,
    )


def _assert_prepared(case: BenchCase) -> None:
    """Assert a case's stream statistics work stays off the timed path.

    The kernels ask the trace for its columns; a stream that re-packed (or
    re-expanded its write bitset) per call would bill that preparation to
    whichever kernel ran first and skew every rate.  Likewise the footprint
    counters the bench does *not* time must be memoised, not recomputed.
    """

    columns = access_columns(case.trace)
    again = access_columns(case.trace)
    if (
        again.pcs is not columns.pcs
        or again.addresses is not columns.addresses
        or again.writes is not columns.writes
    ):
        raise BenchParityError(
            f"{case.name}: trace re-packs its columns per call — stream "
            f"preparation would leak into the timed region"
        )
    counter = getattr(case.trace, "write_count", None)
    if counter is not None:
        counter()
        if getattr(case.trace, "_write_count", 0) is None:
            raise BenchParityError(
                f"{case.name}: write_count is not memoised — footprint "
                f"statistics would recount on every inspection"
            )


def _measure(
    case: BenchCase,
    system: SystemConfig,
    kernel: str,
    repeats: int,
    warmup_fraction: float,
) -> tuple[float, dict]:
    """Best wall-time over ``repeats`` runs and the (identical) statistics."""

    best = None
    stats = None
    warmup = int(len(case.trace) * warmup_fraction)
    for _ in range(repeats):
        simulator = _simulator(system, case.configuration)
        started = time.perf_counter()
        result = run_simulation(
            simulator,
            case.trace,
            kernel=kernel,
            workload_name=case.workload,
            warmup_accesses=warmup,
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        stats = asdict(result.stats)
    return best, stats


def _bench_cases(length: int, trace_dir: Path) -> list[BenchCase]:
    """Build the two benchmark streams (packing/recording is not timed)."""

    from repro.experiments.jobs import trace_for_workload
    from repro.traces.format import load_trace, pack_trace
    from repro.traces.recorder import record_workload

    synthetic = pack_trace(
        trace_for_workload("xalan", {"length": length}), name="xalan"
    )
    repeats = max(2, length // _HOT_CHAIN_LINES)
    recorded_path = record_workload(
        "pointer_chase",
        directory=trace_dir,
        name="bench_hot",
        overrides={"nodes": _HOT_CHAIN_LINES, "repeats": repeats},
    )
    recorded = load_trace(recorded_path)
    return [
        BenchCase(
            name="synthetic-xalan",
            workload="xalan",
            configuration="triangel",
            description=(
                "fill/prefetch-heavy synthetic workload, packed at build "
                "time; end-to-end figure-generation rate"
            ),
            trace=synthetic,
        ),
        BenchCase(
            name="replay-hot",
            workload="trace:bench_hot",
            configuration="triangel",
            description=(
                "recorded .rtrc pointer chase, L1-resident after warm-up; "
                "per-access engine overhead, the replay-rate ceiling"
            ),
            trace=recorded,
        ),
    ]


def _measure_sharded(
    case: BenchCase,
    system: SystemConfig,
    shards: int,
    repeats: int,
    warmup_fraction: float,
) -> tuple[float, dict, object]:
    """Critical-path wall time, merged statistics and the plan for one K.

    Every window is replayed on a fresh simulator and timed individually
    (best of ``repeats``); the critical path is the slowest window — what
    end-to-end wall time becomes once each window has an idle core.
    """

    warmup = int(len(case.trace) * warmup_fraction)
    plan = plan_shards(len(case.trace), warmup, shards, overlap="warmup")
    best: list[float | None] = [None] * plan.shard_count
    outcomes = []
    for _ in range(repeats):
        outcomes = []
        for window in plan.windows:
            simulator = _simulator(system, case.configuration)
            started = time.perf_counter()
            outcome = run_fast_window(
                simulator, case.trace, window, workload_name=case.workload
            )
            elapsed = time.perf_counter() - started
            if best[window.index] is None or elapsed < best[window.index]:
                best[window.index] = elapsed
            outcomes.append(outcome)
    merged = merge_shard_outcomes(outcomes)
    return max(best), asdict(merged), plan


def _best_of(action, repeats: int) -> float:
    """Best wall time of ``action()`` over ``repeats`` runs."""

    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _measure_trace_io(trace_dir: Path, repeats: int) -> dict:
    """Container I/O rates and sizes on the recorded ``bench_hot`` trace.

    Three load paths bracket the trace-I/O design space:

    * ``v1_gzip_full_load`` — the pre-v2 compressed spelling: decompress
      the whole payload, then columns are ready;
    * ``v2_full_load`` — decode every delta/varint chunk into columns;
    * ``v2_window_decode`` — a fresh open followed by one window's
      columns, touching only the chunks the window covers (the sharded /
      sampled access pattern v2 exists for).  The timed v2 copy is
      re-chunked at 4096 records — the bench trace fits inside one
      default 64Ki chunk, which would make the window decode degenerate
      to a full decode and measure nothing.

    Sizes are recorded per encoding with bytes-per-access, plus the
    headline ``v2_ratio_vs_v1`` compression ratio against the raw 16
    bytes-per-record v1 layout.
    """

    from repro.traces.format import load_trace, save_trace

    v2_path = trace_dir / "bench_hot.rtrc"  # written v2 by _bench_cases
    packed = load_trace(v2_path).materialise()
    accesses = len(packed)
    v1_path = save_trace(packed, trace_dir / "bench_hot_v1.rtrc", version=1)
    v1_gzip_path = save_trace(
        packed, trace_dir / "bench_hot_v1gz.rtrc.gz", version=1
    )
    v2_chunked_path = save_trace(
        packed, trace_dir / "bench_hot_c4k.rtrc", chunk_records=4096
    )
    sizes = {
        "v1": v1_path.stat().st_size,
        "v1_gzip": v1_gzip_path.stat().st_size,
        "v2": v2_path.stat().st_size,
    }
    window_records = min(accesses, 4096)
    window_start = (accesses - window_records) // 2
    timings = {
        "v1_gzip_full_load_seconds": _best_of(
            lambda: load_trace(v1_gzip_path).access_columns(), repeats
        ),
        "v2_full_load_seconds": _best_of(
            lambda: load_trace(v2_path).access_columns(), repeats
        ),
        "v2_window_decode_seconds": _best_of(
            lambda: load_trace(v2_chunked_path).window_columns(
                window_start, window_start + window_records
            ),
            repeats,
        ),
    }
    return {
        "trace": "bench_hot",
        "accesses": accesses,
        "window_records": window_records,
        "encodings": {
            name: {
                "bytes": size,
                "bytes_per_access": round(size / accesses, 3),
            }
            for name, size in sizes.items()
        },
        "v2_ratio_vs_v1": round(sizes["v1"] / sizes["v2"], 2),
        **{key: round(value, 6) for key, value in timings.items()},
    }


def run_bench(
    length: int = 44_000,
    repeats: int = 3,
    scale: float = 1.0,
    warmup_fraction: float = 0.25,
    shard_counts: tuple = (2, 4),
) -> dict:
    """Run every bench case under both kernels; return the JSON-safe record.

    Raises :class:`BenchParityError` if any case's statistics differ
    between kernels — speed numbers for diverging simulations would be
    meaningless, and the parity guarantee is the fast kernel's contract.
    The replay-hot case is additionally replayed sharded at every K in
    ``shard_counts`` (warm-up overlap), parity-gated against the sequential
    fast kernel's statistics.
    """

    if length <= 0:
        raise ValueError("--length must be positive")
    if repeats <= 0:
        raise ValueError("--repeats must be positive")
    system = SystemConfig.scaled(scale)
    record: dict = {
        "bench": "engine-kernels",
        "python": f"{platform.python_implementation()} {platform.python_version()}",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "length": length,
        "repeats": repeats,
        "kernels": list(_COMPARED_KERNELS),
        "cases": [],
    }
    sharded_source: tuple[BenchCase, float, dict] | None = None
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        for case in _bench_cases(length, Path(tmp)):
            _assert_prepared(case)
            timings: dict[str, float] = {}
            statistics: dict[str, dict] = {}
            for kernel in _COMPARED_KERNELS:
                timings[kernel], statistics[kernel] = _measure(
                    case, system, kernel, repeats, warmup_fraction
                )
            if statistics["reference"] != statistics["fast"]:
                diverging = sorted(
                    key
                    for key in statistics["reference"]
                    if statistics["reference"][key] != statistics["fast"][key]
                )
                raise BenchParityError(
                    f"{case.name}: kernels disagree on {diverging} — "
                    f"fast-kernel results are not trustworthy"
                )
            accesses = len(case.trace)
            reference_aps = accesses / timings["reference"]
            fast_aps = accesses / timings["fast"]
            record["cases"].append(
                {
                    "name": case.name,
                    "workload": case.workload,
                    "configuration": case.configuration,
                    "description": case.description,
                    "accesses": accesses,
                    "reference_seconds": round(timings["reference"], 6),
                    "fast_seconds": round(timings["fast"], 6),
                    "reference_accesses_per_second": round(reference_aps),
                    "fast_accesses_per_second": round(fast_aps),
                    "speedup": round(fast_aps / reference_aps, 2),
                    "parity": True,
                }
            )
            if case.name == "replay-hot":
                sharded_source = (case, timings["fast"], statistics["fast"])

        # Sharded replay scales the hot case: the gate is parity (wrong
        # merged statistics fail the bench), never speed (a loaded builder
        # must not).
        for shards in shard_counts:
            if sharded_source is None:
                break
            case, fast_time, fast_stats = sharded_source
            critical, merged, plan = _measure_sharded(
                case, system, shards, repeats, warmup_fraction
            )
            report = shard_parity_report(fast_stats, merged)
            if report["accesses"] != 0:
                raise BenchParityError(
                    f"{case.name} (K={shards}): merged access count differs "
                    f"from sequential replay by {report['accesses']:.0f}"
                )
            deviation, counter = max(
                (value, key) for key, value in report.items() if key != "accesses"
            )
            if deviation > SHARD_PARITY_TOLERANCE:
                raise BenchParityError(
                    f"{case.name} (K={shards}): {counter} deviates "
                    f"{deviation:.4f} from sequential replay (tolerance "
                    f"{SHARD_PARITY_TOLERANCE})"
                )
            accesses = len(case.trace)
            record["cases"].append(
                {
                    "name": f"replay-hot-sharded-k{shards}",
                    "workload": case.workload,
                    "configuration": case.configuration,
                    "description": (
                        f"replay-hot split into {plan.shard_count} windows "
                        f"(warm-up overlap); critical-path time = slowest "
                        f"window = end-to-end wall on ≥{plan.shard_count} "
                        f"idle cores"
                    ),
                    "accesses": accesses,
                    "shards": plan.shard_count,
                    "shard_overlap": "warmup",
                    "critical_path_seconds": round(critical, 6),
                    "critical_path_accesses_per_second": round(accesses / critical),
                    "speedup": round(fast_time / critical, 2),
                    "parity": True,
                    "max_parity_deviation": round(deviation, 6),
                }
            )

        # Trace-container I/O on the recorded hot trace: how much smaller
        # v2 is, and what full-load vs window-selective decode costs.
        record["trace_io"] = _measure_trace_io(Path(tmp), repeats)
    record["packed_trace_speedup"] = next(
        case["speedup"] for case in record["cases"] if case["name"] == "replay-hot"
    )
    return record


def render_bench(record: dict) -> str:
    """The bench record as the aligned text table the CLI prints."""

    kernel_cases = [case for case in record["cases"] if "shards" not in case]
    sharded_cases = [case for case in record["cases"] if "shards" in case]
    lines = [
        f"engine kernel benchmark ({record['python']}, "
        f"best of {record['repeats']}, parity-checked)",
        f"{'case':<18} {'config':<10} {'accesses':>9} "
        f"{'reference/s':>12} {'fast/s':>12} {'speedup':>8}",
    ]
    for case in kernel_cases:
        lines.append(
            f"{case['name']:<18} {case['configuration']:<10} "
            f"{case['accesses']:>9} "
            f"{case['reference_accesses_per_second']:>12,} "
            f"{case['fast_accesses_per_second']:>12,} "
            f"{case['speedup']:>7.2f}x"
        )
    if sharded_cases:
        lines.append(
            "sharded replay (critical path = slowest window; "
            "speedup vs sequential fast)"
        )
        lines.append(
            f"{'case':<22} {'shards':>6} {'accesses':>9} "
            f"{'critical/s':>12} {'speedup':>8} {'max dev':>9}"
        )
        for case in sharded_cases:
            lines.append(
                f"{case['name']:<22} {case['shards']:>6} "
                f"{case['accesses']:>9} "
                f"{case['critical_path_accesses_per_second']:>12,} "
                f"{case['speedup']:>7.2f}x "
                f"{case['max_parity_deviation']:>9.6f}"
            )
    trace_io = record.get("trace_io")
    if trace_io:
        lines.append(
            f"trace I/O ({trace_io['trace']}, {trace_io['accesses']} "
            f"accesses; v2 is {trace_io['v2_ratio_vs_v1']}x smaller than v1)"
        )
        lines.append(
            f"{'encoding':<10} {'bytes':>10} {'B/access':>9}   load path"
        )
        load_notes = {
            "v1": "raw columns (mmap, zero decode)",
            "v1_gzip": (
                f"full decompress "
                f"{trace_io['v1_gzip_full_load_seconds']:.4f}s"
            ),
            "v2": (
                f"full decode {trace_io['v2_full_load_seconds']:.4f}s, "
                f"window({trace_io['window_records']}, 4k chunks) "
                f"{trace_io['v2_window_decode_seconds']:.4f}s"
            ),
        }
        for name, encoding in sorted(trace_io["encodings"].items()):
            lines.append(
                f"{name:<10} {encoding['bytes']:>10,} "
                f"{encoding['bytes_per_access']:>9} "
                f"  {load_notes.get(name, '')}"
            )
    return "\n".join(lines)


def write_bench(record: dict, path: str | Path) -> Path:
    """Write the record as stable, diff-friendly JSON; returns the path."""

    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim for tooling
    """Allow ``python -m repro.experiments.bench`` in scripts."""

    record = run_bench()
    print(render_bench(record))
    write_bench(record, BENCH_FILENAME)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
