"""Named prefetcher configurations used throughout the evaluation.

Every bar series in the paper's figures corresponds to one configuration
name here:

* ``baseline`` — the stride prefetcher alone (what every speedup is
  normalised to);
* ``triage`` / ``triage-deg4`` / ``triage-deg4-look2`` — the fixed Triage
  baseline at its default degree-1, its aggressive degree-4, and degree-4
  with Triangel's lookahead-2 training bolted on (section 6.1);
* ``triangel`` / ``triangel-bloom`` / ``triangel-nomrb`` — full Triangel,
  Triangel with Bloom-filter sizing instead of the Set Dueller, and Triangel
  without the Metadata Reuse Buffer (figures 10-15);
* the figure 18 metadata-format study variants of Triage;
* the figure 20 ablation ladder from Triage-Deg4 to full Triangel;
* the section 3.3 replacement study (LRU / SRRIP / HawkEye under a
  constrained Markov capacity).

Each configuration is a factory that, given a :class:`~repro.sim.config.
SystemConfig`, builds the prefetcher stack with structure sizes scaled to
that system.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.config import TriangelConfig
from repro.core.triangel import TriangelPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.triage.triage import TriageConfig, TriagePrefetcher

ConfigFactory = Callable[[SystemConfig], list[Prefetcher]]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _stride(system: SystemConfig) -> StridePrefetcher:
    return StridePrefetcher(degree=8)


def _triage_config(system: SystemConfig, **overrides) -> TriageConfig:
    """A TriageConfig with its structures scaled to the given system."""

    defaults = dict(
        lut_entries=system.lut_entries,
        lut_assoc=min(16, system.lut_entries),
        lut_offset_bits=system.lut_offset_bits,
        bloom_window=system.bloom_window,
        training_entries=system.training_entries,
        markov_latency=system.markov_latency,
    )
    defaults.update(overrides)
    return TriageConfig(**defaults)


def _triangel_config(system: SystemConfig, **overrides) -> TriangelConfig:
    """A TriangelConfig with its structures scaled to the given system."""

    defaults = dict(
        training_entries=system.training_entries,
        sampler_entries=system.sampler_entries,
        mrb_entries=system.mrb_entries,
        dueller_window=system.dueller_window,
        bloom_window=system.bloom_window,
        second_chance_window_fills=system.second_chance_window_fills,
        markov_latency=system.markov_latency,
    )
    defaults.update(overrides)
    return TriangelConfig(**defaults)


def make_triage(system: SystemConfig, **overrides) -> list[Prefetcher]:
    """Stride + Triage stack, with ``overrides`` applied to the TriageConfig."""

    return [_stride(system), TriagePrefetcher(_triage_config(system, **overrides))]


def make_triangel(system: SystemConfig, **overrides) -> list[Prefetcher]:
    """Stride + Triangel stack, with ``overrides`` applied to the TriangelConfig."""

    name = overrides.pop("display_name", "triangel")
    return [
        _stride(system),
        TriangelPrefetcher(_triangel_config(system, **overrides), name=name),
    ]


# ---------------------------------------------------------------------------
# The evaluation's main configurations (figures 10-17)
# ---------------------------------------------------------------------------
EVALUATION_CONFIGS: dict[str, ConfigFactory] = {
    "baseline": lambda system: [_stride(system)],
    "triage": lambda system: make_triage(system, degree=1),
    "triage-deg4": lambda system: make_triage(system, degree=4),
    "triage-deg4-look2": lambda system: make_triage(system, degree=4, lookahead=2),
    "triangel": lambda system: make_triangel(system),
    "triangel-bloom": lambda system: make_triangel(
        system, sizing_mechanism="bloom", bloom_bias=1.5, display_name="triangel-bloom"
    ),
    "triangel-nomrb": lambda system: make_triangel(
        system, use_mrb=False, display_name="triangel-nomrb"
    ),
}

#: The five series plotted in figures 10-13.
MAIN_SERIES: tuple[str, ...] = (
    "triage",
    "triage-deg4",
    "triage-deg4-look2",
    "triangel",
    "triangel-bloom",
)

#: The six series plotted in figures 14-15 (adds the no-MRB variant).
ENERGY_SERIES: tuple[str, ...] = MAIN_SERIES + ("triangel-nomrb",)

#: The four series plotted in figures 16-17.
MULTIPROGRAM_SERIES: tuple[str, ...] = (
    "triage",
    "triage-deg4",
    "triangel",
    "triangel-bloom",
)


# ---------------------------------------------------------------------------
# Figure 18/19: Markov metadata format study (applied to Triage)
# ---------------------------------------------------------------------------
METADATA_FORMAT_CONFIGS: dict[str, ConfigFactory] = {
    "32-bit-LUT-16-way": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-16-way"
    ),
    "32-bit-ideal": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-ideal"
    ),
    "32-bit-LUT-1024-way": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-1024-way"
    ),
    "42-bit": lambda system: make_triage(system, degree=1, metadata_format="42-bit"),
    "32-bit-LUT-16-way-10b-offset": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-16-way-10b-offset"
    ),
}


# ---------------------------------------------------------------------------
# Figure 20: ablation ladder from Triage-Deg4 to full Triangel
# ---------------------------------------------------------------------------
def _ablation_triangel(system: SystemConfig, **flags) -> list[Prefetcher]:
    """Triangel with only a subset of its mechanisms enabled.

    The early ablation steps predate the Set Dueller and the confidence
    gates, so the defaults here disable everything and use Bloom sizing with
    Triage's neutral bias; each ladder step switches individual flags on.
    """

    defaults = dict(
        enable_reuse_conf=False,
        enable_base_pattern_conf=False,
        enable_high_pattern_conf=False,
        enable_second_chance=False,
        use_mrb=False,
        sizing_mechanism="bloom",
        bloom_bias=1.0,
        display_name="triangel-ablation",
    )
    defaults.update(flags)
    return make_triangel(system, **defaults)


ABLATION_LADDER: dict[str, ConfigFactory] = {
    "Triage-Deg-4": lambda system: make_triage(system, degree=4),
    "+Lookahead-2": lambda system: make_triage(system, degree=4, lookahead=2),
    "+Triangel Metadata": lambda system: make_triage(
        system, degree=4, lookahead=2, metadata_format="42-bit"
    ),
    "+BasePatternConf": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True
    ),
    "+Second-Chance": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True, enable_second_chance=True
    ),
    "+Metadata Reuse Buffer": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True, enable_second_chance=True, use_mrb=True
    ),
    "+Set Duel": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
    ),
    "+ReuseConf": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
        enable_reuse_conf=True,
    ),
    "+HighPatternConf": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
        enable_reuse_conf=True,
        enable_high_pattern_conf=True,
    ),
}


# ---------------------------------------------------------------------------
# Section 3.3: Markov replacement study under constrained capacity
# ---------------------------------------------------------------------------
REPLACEMENT_POLICIES: tuple[str, ...] = ("lru", "srrip", "hawkeye")


def _replacement_builder(policy: str):
    """A parameterised builder for Triage under one Markov replacement policy."""

    def build(system: SystemConfig, max_entries: int | None = 1024) -> list[Prefetcher]:
        """Triage with this policy, Markov occupancy capped at ``max_entries``."""

        return make_triage(
            system,
            degree=1,
            markov_replacement=policy,
            max_entries_override=max_entries,
        )

    return build


#: Configurations whose prefetcher stack depends on call-time parameters.
#: Unlike :data:`ALL_CONFIGS` factories (``name`` alone identifies the
#: stack), these builders take keyword parameters; the parameters travel in
#: :attr:`~repro.experiments.jobs.RunSpec.config_params`, so they are part
#: of the store key and are available to rebuild the stack in pool workers.
PARAMETERISED_CONFIGS: dict[str, Callable[..., list[Prefetcher]]] = {
    f"triage-{policy}": _replacement_builder(policy) for policy in REPLACEMENT_POLICIES
}


def replacement_study_configs(max_entries: int | None = 1024) -> dict[str, ConfigFactory]:
    """Triage with LRU / SRRIP / HawkEye Markov replacement.

    ``max_entries`` caps the Markov occupancy, reproducing the paper's
    observation that replacement policy only matters once capacity is
    artificially constrained (footnote 4).

    This is the closed-over-factory form kept for ``extra_factories``
    callers; the figure harness itself now runs the study through
    :data:`PARAMETERISED_CONFIGS` so results persist in the store.
    """

    def factory(policy: str) -> ConfigFactory:
        """Close the parameterised builder over this study's ``max_entries``."""

        builder = PARAMETERISED_CONFIGS[f"triage-{policy}"]
        return lambda system: builder(system, max_entries=max_entries)

    return {f"triage-{policy}": factory(policy) for policy in REPLACEMENT_POLICIES}


# ---------------------------------------------------------------------------
# Lookup
# ---------------------------------------------------------------------------
ALL_CONFIGS: dict[str, ConfigFactory] = {
    **EVALUATION_CONFIGS,
    **{f"triage-format-{name}": factory for name, factory in METADATA_FORMAT_CONFIGS.items()},
    **{f"ablation-{name}": factory for name, factory in ABLATION_LADDER.items()},
}


def available_configurations() -> list[str]:
    """Every registry configuration name, sorted (parameterised excluded)."""

    return sorted(ALL_CONFIGS)


def build_prefetchers(
    name: str, system: SystemConfig, params: Mapping | None = None
) -> list[Prefetcher]:
    """Build the prefetcher stack for a named configuration.

    Plain registry configurations (:data:`ALL_CONFIGS`) take no parameters;
    parameterised ones (:data:`PARAMETERISED_CONFIGS`) receive ``params`` as
    keyword arguments.  This is the single resolution point both the serial
    path and pool workers use, so a spec's ``(configuration, config_params)``
    pair always rebuilds the same stack everywhere.
    """

    factory = ALL_CONFIGS.get(name)
    if factory is not None:
        if params:
            raise ValueError(f"configuration {name!r} takes no parameters")
        return factory(system)
    builder = PARAMETERISED_CONFIGS.get(name)
    if builder is not None:
        return builder(system, **dict(params or {}))
    raise ValueError(
        f"unknown configuration {name!r}; available: "
        f"{available_configurations() + sorted(PARAMETERISED_CONFIGS)}"
    )
