"""Named prefetcher configurations used throughout the evaluation.

Every bar series in the paper's figures corresponds to one configuration
name here:

* ``baseline`` — the stride prefetcher alone (what every speedup is
  normalised to);
* ``triage`` / ``triage-deg4`` / ``triage-deg4-look2`` — the fixed Triage
  baseline at its default degree-1, its aggressive degree-4, and degree-4
  with Triangel's lookahead-2 training bolted on (section 6.1);
* ``triangel`` / ``triangel-bloom`` / ``triangel-nomrb`` — full Triangel,
  Triangel with Bloom-filter sizing instead of the Set Dueller, and Triangel
  without the Metadata Reuse Buffer (figures 10-15);
* the figure 18 metadata-format study variants of Triage;
* the figure 20 ablation ladder from Triage-Deg4 to full Triangel;
* the section 3.3 replacement study (LRU / SRRIP / HawkEye under a
  constrained Markov capacity).

Each configuration is a factory that, given a :class:`~repro.sim.config.
SystemConfig`, builds the prefetcher stack with structure sizes scaled to
that system.
"""

from __future__ import annotations

import inspect
from collections.abc import Mapping as AbcMapping
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.config import TriangelConfig
from repro.core.triangel import TriangelPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.triage.triage import TriageConfig, TriagePrefetcher

ConfigFactory = Callable[[SystemConfig], list[Prefetcher]]


# ---------------------------------------------------------------------------
# The unified configuration registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ConfigEntry:
    """One registered configuration: a builder plus its parameter signature.

    ``builder`` takes the system first and then the configuration's call-time
    parameters as keyword arguments; ``params`` maps each parameter name to
    its default value (empty for plain configurations, whose identity is
    fully determined by their name).
    """

    name: str
    builder: Callable[..., list[Prefetcher]]
    params: tuple = ()

    @property
    def takes_params(self) -> bool:
        """Whether the builder accepts call-time parameters at all."""

        return bool(self.params)

    def signature(self) -> str:
        """The parameter signature for listings: ``""`` or ``"(k=default)"``."""

        if not self.params:
            return ""
        return "(" + ", ".join(f"{key}={value}" for key, value in self.params) + ")"

    def build(self, system: SystemConfig, params: Mapping | None = None) -> list[Prefetcher]:
        """Build the prefetcher stack, applying ``params`` over the defaults."""

        params = dict(params or {})
        if params and not self.takes_params:
            raise ValueError(f"configuration {self.name!r} takes no parameters")
        unknown = set(params) - {key for key, _ in self.params}
        if unknown:
            raise ValueError(
                f"configuration {self.name!r} does not take parameter(s) "
                f"{sorted(unknown)}; accepted: {[key for key, _ in self.params]}"
            )
        return self.builder(system, **params)


@dataclass
class ConfigRegistry:
    """Every named configuration, plain and parameterised alike, in one place.

    There is a single resolution path — :meth:`resolve` — and a single
    identity scheme: a configuration is keyed by ``(name, params)``, where
    ``params`` is empty for plain configurations.  The parameter defaults are
    read off each builder's signature at registration time, so listings can
    show what a configuration accepts without running it.
    """

    _entries: dict[str, ConfigEntry] = field(default_factory=dict)

    def register(self, name: str, builder: Callable[..., list[Prefetcher]]) -> ConfigEntry:
        """Register a builder under a (unique) configuration name."""

        if name in self._entries:
            raise ValueError(f"configuration {name!r} is already registered")
        parameters = list(inspect.signature(builder).parameters.values())[1:]
        params = tuple(
            (parameter.name, parameter.default)
            for parameter in parameters
            if parameter.kind
            in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
        )
        entry = ConfigEntry(name=name, builder=builder, params=params)
        self._entries[name] = entry
        return entry

    def entry(self, name: str) -> ConfigEntry:
        """The entry for a name, or a ``ValueError`` listing what exists."""

        entry = self._entries.get(name)
        if entry is None:
            raise ValueError(
                f"unknown configuration {name!r}; available: {self.names()}"
            )
        return entry

    def resolve(
        self, name: str, system: SystemConfig, params: Mapping | None = None
    ) -> list[Prefetcher]:
        """Build the named configuration's prefetcher stack (the single path)."""

        return self.entry(name).build(system, params)

    def takes_params(self, name: str) -> bool:
        """Whether the named configuration accepts call-time parameters."""

        return self.entry(name).takes_params

    def names(self) -> list[str]:
        """Every registered name, sorted."""

        return sorted(self._entries)

    def signatures(self) -> dict[str, str]:
        """Name → parameter-signature string (empty for plain configs)."""

        return {name: self._entries[name].signature() for name in self.names()}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _stride(system: SystemConfig) -> StridePrefetcher:
    return StridePrefetcher(degree=8)


def _triage_config(system: SystemConfig, **overrides) -> TriageConfig:
    """A TriageConfig with its structures scaled to the given system."""

    defaults = dict(
        lut_entries=system.lut_entries,
        lut_assoc=min(16, system.lut_entries),
        lut_offset_bits=system.lut_offset_bits,
        bloom_window=system.bloom_window,
        training_entries=system.training_entries,
        markov_latency=system.markov_latency,
    )
    defaults.update(overrides)
    return TriageConfig(**defaults)


def _triangel_config(system: SystemConfig, **overrides) -> TriangelConfig:
    """A TriangelConfig with its structures scaled to the given system."""

    defaults = dict(
        training_entries=system.training_entries,
        sampler_entries=system.sampler_entries,
        mrb_entries=system.mrb_entries,
        dueller_window=system.dueller_window,
        bloom_window=system.bloom_window,
        second_chance_window_fills=system.second_chance_window_fills,
        markov_latency=system.markov_latency,
    )
    defaults.update(overrides)
    return TriangelConfig(**defaults)


def make_triage(system: SystemConfig, **overrides) -> list[Prefetcher]:
    """Stride + Triage stack, with ``overrides`` applied to the TriageConfig."""

    return [_stride(system), TriagePrefetcher(_triage_config(system, **overrides))]


def make_triangel(system: SystemConfig, **overrides) -> list[Prefetcher]:
    """Stride + Triangel stack, with ``overrides`` applied to the TriangelConfig."""

    name = overrides.pop("display_name", "triangel")
    return [
        _stride(system),
        TriangelPrefetcher(_triangel_config(system, **overrides), name=name),
    ]


# ---------------------------------------------------------------------------
# The evaluation's main configurations (figures 10-17)
# ---------------------------------------------------------------------------
EVALUATION_CONFIGS: dict[str, ConfigFactory] = {
    "baseline": lambda system: [_stride(system)],
    "triage": lambda system: make_triage(system, degree=1),
    "triage-deg4": lambda system: make_triage(system, degree=4),
    "triage-deg4-look2": lambda system: make_triage(system, degree=4, lookahead=2),
    "triangel": lambda system: make_triangel(system),
    "triangel-bloom": lambda system: make_triangel(
        system, sizing_mechanism="bloom", bloom_bias=1.5, display_name="triangel-bloom"
    ),
    "triangel-nomrb": lambda system: make_triangel(
        system, use_mrb=False, display_name="triangel-nomrb"
    ),
}

#: The five series plotted in figures 10-13.
MAIN_SERIES: tuple[str, ...] = (
    "triage",
    "triage-deg4",
    "triage-deg4-look2",
    "triangel",
    "triangel-bloom",
)

#: The six series plotted in figures 14-15 (adds the no-MRB variant).
ENERGY_SERIES: tuple[str, ...] = MAIN_SERIES + ("triangel-nomrb",)

#: The four series plotted in figures 16-17.
MULTIPROGRAM_SERIES: tuple[str, ...] = (
    "triage",
    "triage-deg4",
    "triangel",
    "triangel-bloom",
)


# ---------------------------------------------------------------------------
# Figure 18/19: Markov metadata format study (applied to Triage)
# ---------------------------------------------------------------------------
METADATA_FORMAT_CONFIGS: dict[str, ConfigFactory] = {
    "32-bit-LUT-16-way": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-16-way"
    ),
    "32-bit-ideal": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-ideal"
    ),
    "32-bit-LUT-1024-way": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-1024-way"
    ),
    "42-bit": lambda system: make_triage(system, degree=1, metadata_format="42-bit"),
    "32-bit-LUT-16-way-10b-offset": lambda system: make_triage(
        system, degree=1, metadata_format="32-bit-LUT-16-way-10b-offset"
    ),
}


# ---------------------------------------------------------------------------
# Figure 20: ablation ladder from Triage-Deg4 to full Triangel
# ---------------------------------------------------------------------------
def _ablation_triangel(system: SystemConfig, **flags) -> list[Prefetcher]:
    """Triangel with only a subset of its mechanisms enabled.

    The early ablation steps predate the Set Dueller and the confidence
    gates, so the defaults here disable everything and use Bloom sizing with
    Triage's neutral bias; each ladder step switches individual flags on.
    """

    defaults = dict(
        enable_reuse_conf=False,
        enable_base_pattern_conf=False,
        enable_high_pattern_conf=False,
        enable_second_chance=False,
        use_mrb=False,
        sizing_mechanism="bloom",
        bloom_bias=1.0,
        display_name="triangel-ablation",
    )
    defaults.update(flags)
    return make_triangel(system, **defaults)


ABLATION_LADDER: dict[str, ConfigFactory] = {
    "Triage-Deg-4": lambda system: make_triage(system, degree=4),
    "+Lookahead-2": lambda system: make_triage(system, degree=4, lookahead=2),
    "+Triangel Metadata": lambda system: make_triage(
        system, degree=4, lookahead=2, metadata_format="42-bit"
    ),
    "+BasePatternConf": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True
    ),
    "+Second-Chance": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True, enable_second_chance=True
    ),
    "+Metadata Reuse Buffer": lambda system: _ablation_triangel(
        system, enable_base_pattern_conf=True, enable_second_chance=True, use_mrb=True
    ),
    "+Set Duel": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
    ),
    "+ReuseConf": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
        enable_reuse_conf=True,
    ),
    "+HighPatternConf": lambda system: _ablation_triangel(
        system,
        enable_base_pattern_conf=True,
        enable_second_chance=True,
        use_mrb=True,
        sizing_mechanism="set-dueller",
        enable_reuse_conf=True,
        enable_high_pattern_conf=True,
    ),
}


# ---------------------------------------------------------------------------
# Section 3.3: Markov replacement study under constrained capacity
# ---------------------------------------------------------------------------
REPLACEMENT_POLICIES: tuple[str, ...] = ("lru", "srrip", "hawkeye")


def _replacement_builder(policy: str):
    """A parameterised builder for Triage under one Markov replacement policy."""

    def build(system: SystemConfig, max_entries: int | None = 1024) -> list[Prefetcher]:
        """Triage with this policy, Markov occupancy capped at ``max_entries``."""

        return make_triage(
            system,
            degree=1,
            markov_replacement=policy,
            max_entries_override=max_entries,
        )

    return build


# ---------------------------------------------------------------------------
# Registration: every configuration, plain and parameterised, in one registry
# ---------------------------------------------------------------------------
#: The single configuration registry.  Plain configurations take no
#: parameters (their name alone identifies the stack); parameterised ones —
#: currently the replacement study's policy variants — accept call-time
#: keyword parameters that travel in
#: :attr:`~repro.experiments.jobs.RunSpec.config_params`, so they are part
#: of the store key and rebuild identically in pool workers.
CONFIGS = ConfigRegistry()

for _name, _factory in EVALUATION_CONFIGS.items():
    CONFIGS.register(_name, _factory)
for _name, _factory in METADATA_FORMAT_CONFIGS.items():
    CONFIGS.register(f"triage-format-{_name}", _factory)
for _name, _factory in ABLATION_LADDER.items():
    CONFIGS.register(f"ablation-{_name}", _factory)
for _policy in REPLACEMENT_POLICIES:
    CONFIGS.register(f"triage-{_policy}", _replacement_builder(_policy))
del _name, _factory, _policy

class _RegistryView(AbcMapping):
    """A live name → builder mapping over one half of :data:`CONFIGS`.

    Unlike a snapshot dict, the view always agrees with the registry: a
    configuration registered after import (``CONFIGS.register(...)``)
    appears here immediately, so legacy call sites iterating these views
    can never disagree with the single source of truth.
    """

    def __init__(self, registry: ConfigRegistry, parameterised: bool) -> None:
        self._registry = registry
        self._parameterised = parameterised

    def _matches(self, entry: ConfigEntry) -> bool:
        return entry.takes_params == self._parameterised

    def __getitem__(self, name: str):
        entry = self._registry._entries.get(name)
        if entry is None or not self._matches(entry):
            raise KeyError(name)
        return entry.builder

    def __iter__(self):
        return (
            entry.name
            for entry in self._registry._entries.values()
            if self._matches(entry)
        )

    def __len__(self) -> int:
        return sum(1 for _ in self)


#: Compatibility views over :data:`CONFIGS`.  ``ALL_CONFIGS`` maps the
#: plain (nullary) configurations to their builders; parameterised builders
#: live in ``PARAMETERISED_CONFIGS``.  Both are *live* — they reflect
#: runtime registrations — and exist so older call sites keep working; new
#: code should use :data:`CONFIGS` directly.
ALL_CONFIGS: Mapping[str, ConfigFactory] = _RegistryView(CONFIGS, parameterised=False)
PARAMETERISED_CONFIGS: Mapping[str, Callable[..., list[Prefetcher]]] = _RegistryView(
    CONFIGS, parameterised=True
)


def available_configurations() -> list[str]:
    """Every configuration name, sorted — parameterised entries included."""

    return CONFIGS.names()


def configuration_signatures() -> dict[str, str]:
    """Name → parameter-signature string (``""`` for plain configurations)."""

    return CONFIGS.signatures()


def build_prefetchers(
    name: str, system: SystemConfig, params: Mapping | None = None
) -> list[Prefetcher]:
    """Build the prefetcher stack for a named configuration.

    Every configuration uniformly accepts a (possibly empty) ``params``
    mapping; plain configurations reject non-empty parameters.  This is the
    single resolution point both the serial path and pool workers use, so a
    spec's ``(configuration, config_params)`` pair always rebuilds the same
    stack everywhere.
    """

    return CONFIGS.resolve(name, system, params)
