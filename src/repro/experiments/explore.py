"""Design-space exploration: store-backed search over the configuration space.

The paper's central trade-off — metadata traffic against coverage and
accuracy as prefetcher structures scale — is a design-space search, and
this module makes it a first-class subsystem instead of ad-hoc loops.  The
pieces:

* :class:`SearchSpace` — an immutable declaration of the space's axes:
  workloads × configurations × a parameter grid (e.g. ``max_entries``)
  × system scales.  :meth:`SearchSpace.candidates` enumerates the
  deterministic cartesian product as :class:`Candidate` values.
* :func:`plan_search` — a pure planner that turns a candidate count plus a
  strategy (``grid`` | ``random`` | ``halving``) into a
  :class:`SearchPlan`: the seeded evaluation order, the budget-trimmed
  selection, and for successive halving a ladder of :class:`Rung` values —
  cheap sampled-window screens whose survivors are promoted rung by rung
  until a final full-trace confirmation rung.  Being pure, every plan
  invariant (rungs partition the selection, budgets are never exceeded,
  identical seeds reproduce identical orders) is property-testable without
  simulating anything.
* :class:`Explorer` — the evaluator.  Screen rungs are materialised as
  on-disk ``.rtrc`` prefix windows (:func:`repro.traces.samplers.
  sample_prefix`) under ``<search dir>/screens/`` and registered on the
  trace search path, so *every* evaluated point — screen or full — is a
  normal :class:`~repro.experiments.jobs.RunSpec` keyed by file-content
  digest and flows through :class:`~repro.experiments.parallel.
  BatchExecutor` + :class:`~repro.experiments.store.ResultStore`.  Searches
  are therefore warm-restartable: a killed search re-run with
  :func:`resume_search` replays every completed point from the store and
  re-executes nothing.
* :func:`pareto_front` — the non-dominated set over (coverage ↑,
  accuracy ↑, metadata traffic ↓), canonically ordered so membership and
  output bytes are invariant to evaluation order.

Provenance: the search directory holds ``search.json`` (the manifest
:func:`resume_search` replays), ``log.jsonl`` (one record per evaluated
(candidate, rung) with strategy, seed, rung, scores and spec digests) and
``front.json`` (the deterministic final front — byte-identical across a
resume).
"""

from __future__ import annotations

import itertools
import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.configs import CONFIGS
from repro.experiments.jobs import RunSpec, _freeze, _thaw
from repro.experiments.parallel import BatchExecutor
from repro.experiments.store import ResultStore, default_store
from repro.experiments.study import accepted_params, coerce_param
from repro.sim.config import system_for

#: The search strategies :func:`plan_search` understands.
STRATEGIES = ("grid", "random", "halving")

#: Default axes of the CLI search space: the replacement-policy ladder of
#: the paper swept over the Markov-table capacity, on one representative
#: workload.  ``repro explore --workloads/--configs/--set`` override these.
DEFAULT_WORKLOADS = ("xalan",)
DEFAULT_CONFIGURATIONS = ("triage-lru", "triage-srrip", "triage-hawkeye")
DEFAULT_PARAM_GRID = {"max_entries": (64, 256, 1024, 4096)}

#: Objective metrics a search can rank candidates by, with direction.
OBJECTIVES: dict[str, bool] = {
    "coverage": True,
    "accuracy": True,
    "speedup": True,
    "metadata_traffic": False,
}

#: The fixed Pareto axes: the paper's trade-off.
PARETO_MAXIMIZE = ("coverage", "accuracy")
PARETO_MINIMIZE = ("metadata_traffic",)

DEFAULT_SCREEN_ACCESSES = 2000
DEFAULT_ETA = 2
#: Entrant count at which screening stops and the final full-trace
#: confirmation rung runs (the Pareto front needs more than one full point).
DEFAULT_CONFIRM = 3
DEFAULT_SEARCH_DIR = ".repro_search"

MANIFEST_FILENAME = "search.json"
LOG_FILENAME = "log.jsonl"
FRONT_FILENAME = "front.json"
SCREENS_DIRNAME = "screens"
MANIFEST_KIND = "repro-explore"
MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# The space: candidates and their enumeration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Candidate:
    """One point of the design space: a configuration, parameters, a scale."""

    configuration: str
    params: tuple = ()
    scale: float = 1.0

    def params_dict(self) -> dict:
        """The call-time configuration parameters as a plain dictionary."""

        return _thaw(self.params) or {}

    def label(self) -> str:
        """A human-readable identity, e.g. ``triage-lru[max_entries=64]``."""

        text = self.configuration
        params = self.params_dict()
        if params:
            inner = ", ".join(f"{key}={value}" for key, value in sorted(params.items()))
            text += f"[{inner}]"
        if self.scale != 1.0:
            text += f" @scale={self.scale:g}"
        return text

    def as_dict(self) -> dict:
        """JSON-serialisable form (used by the log and the front)."""

        return {
            "configuration": self.configuration,
            "params": self.params_dict(),
            "scale": self.scale,
        }


@dataclass(frozen=True)
class SearchSpace:
    """An immutable declaration of the searchable axes.

    ``param_grid`` maps parameter names to candidate value tuples; each
    configuration only takes the grid keys it actually accepts (plain
    configurations take none), so mixed plain/parameterised spaces
    enumerate without stranded parameters.  Build through
    :meth:`SearchSpace.create`, which canonicalises and validates every
    axis the same way ``repro study run`` validates its overrides —
    before anything simulates.
    """

    workloads: tuple
    configurations: tuple
    param_grid: tuple = ()
    scales: tuple = (1.0,)
    system: str = "sim-scale"
    baseline: str = "baseline"

    @classmethod
    def create(
        cls,
        workloads: Sequence[str],
        configurations: Sequence[str],
        param_grid: Mapping | None = None,
        scales: Sequence[float] = (1.0,),
        system: str = "sim-scale",
        baseline: str = "baseline",
    ) -> "SearchSpace":
        """Build a validated space from mutable inputs (see class docs)."""

        from repro.workloads.registry import available_workloads

        workloads = tuple(workloads)
        configurations = tuple(configurations)
        if not workloads:
            raise ValueError("a search space needs at least one workload")
        if not configurations:
            raise ValueError("a search space needs at least one configuration")
        known = available_workloads()
        unknown = [name for name in workloads if name not in set(known)]
        if unknown:
            raise ValueError(f"unknown workload(s) {unknown}; available: {known}")
        unknown = [name for name in configurations if name not in CONFIGS]
        if unknown:
            raise ValueError(
                f"unknown configuration(s) {unknown}; available: {CONFIGS.names()}"
            )
        if baseline not in CONFIGS:
            raise ValueError(
                f"unknown baseline {baseline!r}; available: {CONFIGS.names()}"
            )
        grid = {key: tuple(values) for key, values in dict(param_grid or {}).items()}
        for key, values in grid.items():
            if not values:
                raise ValueError(f"parameter axis {key!r} has no values")
        stranded = set(grid) - accepted_params(configurations)
        if stranded:
            accepted = accepted_params(configurations)
            raise ValueError(
                f"--set key(s) {sorted(stranded)} match neither a search axis "
                f"({sorted(_SPACE_AXES)}) nor a parameter of the space's "
                f"configurations"
                + (f" (accepted: {sorted(accepted)})" if accepted else "")
            )
        scales = tuple(float(scale) for scale in scales)
        if not scales:
            raise ValueError("a search space needs at least one scale")
        for scale in scales:
            system_for(system, scale)  # validates both the name and the scale
        return cls(
            workloads=workloads,
            configurations=configurations,
            param_grid=_freeze(grid),
            scales=scales,
            system=system,
            baseline=baseline,
        )

    def param_grid_dict(self) -> dict:
        """The parameter grid as a plain name → value-tuple dictionary."""

        thawed = _thaw(self.param_grid) or {}
        return {key: tuple(values) for key, values in thawed.items()}

    def candidates(self) -> list[Candidate]:
        """Every point of the space, in deterministic declaration order.

        Configurations enumerate in declared order; within one, parameter
        combinations in sorted-key cartesian-product order; within one
        combination, scales in declared order.  The order is the ``grid``
        strategy's evaluation order and the base the seeded strategies
        shuffle, so identical spaces always enumerate identically.
        """

        grid = self.param_grid_dict()
        points: list[Candidate] = []
        for configuration in self.configurations:
            accepted = accepted_params([configuration])
            names = [key for key in sorted(grid) if key in accepted]
            combos = itertools.product(*(grid[key] for key in names)) if names else [()]
            for combo in combos:
                params = _freeze(dict(zip(names, combo)))
                for scale in self.scales:
                    points.append(Candidate(configuration, params, scale))
        return points

    def as_dict(self) -> dict:
        """JSON-serialisable form (the manifest's ``space`` entry)."""

        return {
            "workloads": list(self.workloads),
            "configurations": list(self.configurations),
            "param_grid": {
                key: list(values) for key, values in self.param_grid_dict().items()
            },
            "scales": list(self.scales),
            "system": self.system,
            "baseline": self.baseline,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchSpace":
        """Rebuild (and re-validate) a space from its manifest form."""

        return cls.create(
            workloads=data["workloads"],
            configurations=data["configurations"],
            param_grid=data.get("param_grid") or {},
            scales=data.get("scales") or (1.0,),
            system=data.get("system", "sim-scale"),
            baseline=data.get("baseline", "baseline"),
        )


#: ``--set`` keys that override a space axis rather than a grid parameter,
#: with the coercion from the raw comma-separated string.
_SPACE_AXES = ("baseline", "scale", "system")


def _split_values(raw: str, key: str) -> list[str]:
    """Split one ``--set`` value into its comma-separated parts."""

    parts = [part.strip() for part in raw.split(",") if part.strip()]
    if not parts:
        raise ValueError(f"--set {key}=: no values given")
    return parts


def overridden_space(
    workloads: Sequence[str] | None = None,
    configurations: Sequence[str] | None = None,
    assignments: Mapping[str, str] | None = None,
) -> SearchSpace:
    """The default search space with CLI-style overrides applied.

    ``assignments`` holds raw ``--set`` values; ``scale`` takes a comma
    list of floats (a search axis), ``system``/``baseline`` single names,
    and any other key becomes a parameter-grid axis with a comma list of
    values (``--set max_entries=64,4096``).  Validation — unknown names,
    stranded parameters — happens in :meth:`SearchSpace.create`, exactly
    as ``repro study run`` validates before simulating.
    """

    grid = dict(DEFAULT_PARAM_GRID) if configurations is None else {}
    scales: Sequence[float] = (1.0,)
    system = "sim-scale"
    baseline = "baseline"
    for key, raw in (assignments or {}).items():
        if key == "scale":
            try:
                scales = tuple(float(part) for part in _split_values(raw, key))
            except ValueError:
                raise ValueError(
                    f"--set scale={raw!r}: expected comma-separated numbers"
                ) from None
        elif key == "system":
            system = raw.strip()
        elif key == "baseline":
            baseline = raw.strip()
        else:
            grid[key] = tuple(coerce_param(part) for part in _split_values(raw, key))
    return SearchSpace.create(
        workloads=tuple(workloads) if workloads is not None else DEFAULT_WORKLOADS,
        configurations=(
            tuple(configurations)
            if configurations is not None
            else DEFAULT_CONFIGURATIONS
        ),
        param_grid=grid,
        scales=scales,
        system=system,
        baseline=baseline,
    )


# ---------------------------------------------------------------------------
# The plan: strategies, rungs, budgets (pure — no simulation)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Rung:
    """One stage of a search: how many enter, how many survive, how long.

    ``accesses`` is the screen-window length replayed at this rung, or
    ``None`` for the full trace (always the final rung).  ``survivors``
    equals the next rung's ``entrants`` — the eliminated sets of every
    rung plus the final rung's entrants therefore partition the selected
    candidates, which :func:`plan_search` guarantees by construction and
    the property tests re-check.
    """

    index: int
    entrants: int
    survivors: int
    accesses: int | None

    def describe(self) -> str:
        """One line: entrants → survivors at this rung's replay length."""

        window = "full trace" if self.accesses is None else f"{self.accesses}-access screen"
        keep = "" if self.survivors == self.entrants else f" -> keep {self.survivors}"
        return f"rung {self.index}: {self.entrants} candidate(s) @ {window}{keep}"


@dataclass(frozen=True)
class SearchPlan:
    """A strategy compiled against a candidate count: order, selection, rungs."""

    strategy: str
    seed: int
    budget: int | None
    #: candidate indices in evaluation order, already trimmed to the budget.
    selected: tuple
    rungs: tuple
    #: candidates the budget could not fund (never evaluated).
    dropped: int

    @property
    def total_evaluations(self) -> int:
        """Candidate evaluations the plan spends (Σ rung entrants ≤ budget)."""

        return sum(rung.entrants for rung in self.rungs)

    def describe(self) -> list[str]:
        """The plan as indented text lines (the ``describe`` CLI body)."""

        lines = [
            f"strategy:    {self.strategy} (seed {self.seed}"
            + (f", budget {self.budget}" if self.budget is not None else "")
            + ")",
            f"selected:    {len(self.selected)} candidate(s)"
            + (f" ({self.dropped} dropped by the budget)" if self.dropped else ""),
        ]
        lines.extend(f"  {rung.describe()}" for rung in self.rungs)
        lines.append(f"evaluations: {self.total_evaluations}")
        return lines


def candidate_order(count: int, strategy: str, seed: int = 0) -> list[int]:
    """The deterministic evaluation order over candidate indices.

    ``grid`` keeps declaration order; ``random`` and ``halving`` shuffle
    with a :class:`random.Random` seeded by ``seed``, so identical seeds
    always reproduce identical candidate sequences.
    """

    order = list(range(count))
    if strategy != "grid":
        random.Random(seed).shuffle(order)
    return order


def _halving_sizes(start: int, eta: int, confirm: int) -> list[int]:
    """Entrant counts per rung, screening until ``confirm`` or fewer remain."""

    sizes = [start]
    while sizes[-1] > confirm:
        sizes.append(max(confirm, math.ceil(sizes[-1] / eta)))
    return sizes


def plan_search(
    count: int,
    strategy: str = "halving",
    budget: int | None = None,
    seed: int = 0,
    eta: int = DEFAULT_ETA,
    screen_accesses: int = DEFAULT_SCREEN_ACCESSES,
    confirm: int = DEFAULT_CONFIRM,
) -> SearchPlan:
    """Compile a strategy against ``count`` candidates into a :class:`SearchPlan`.

    ``budget`` caps the total number of candidate evaluations (rung
    entrants summed); plans never exceed it — the selection shrinks
    instead, dropping the tail of the seeded order.  ``grid`` and
    ``random`` evaluate every selected candidate once on the full trace;
    ``halving`` screens the selection on sampled prefix windows whose
    length grows by ``eta`` each rung (starting at ``screen_accesses``),
    keeps the best ``1/eta`` per rung, and promotes the last ``confirm``
    (or fewer) survivors to a full-trace confirmation rung.
    """

    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; available: {list(STRATEGIES)}"
        )
    if count < 1:
        raise ValueError("the search space has no candidates")
    if budget is not None and budget < 1:
        raise ValueError(f"--budget must be at least 1, got {budget}")
    if eta < 2:
        raise ValueError(f"--eta must be at least 2, got {eta}")
    if confirm < 1:
        raise ValueError(f"--confirm must be at least 1, got {confirm}")
    if screen_accesses < 1:
        raise ValueError(
            f"--screen-accesses must be at least 1, got {screen_accesses}"
        )
    order = candidate_order(count, strategy, seed)

    if strategy in ("grid", "random"):
        keep = count if budget is None else min(budget, count)
        return SearchPlan(
            strategy=strategy,
            seed=seed,
            budget=budget,
            selected=tuple(order[:keep]),
            rungs=(Rung(index=0, entrants=keep, survivors=keep, accesses=None),),
            dropped=count - keep,
        )

    start = count
    if budget is not None:
        while start > 1 and sum(_halving_sizes(start, eta, confirm)) > budget:
            start -= 1
    sizes = _halving_sizes(start, eta, confirm)
    rungs = []
    for index, entrants in enumerate(sizes):
        last = index == len(sizes) - 1
        rungs.append(
            Rung(
                index=index,
                entrants=entrants,
                survivors=entrants if last else sizes[index + 1],
                accesses=None if last else screen_accesses * eta**index,
            )
        )
    return SearchPlan(
        strategy=strategy,
        seed=seed,
        budget=budget,
        selected=tuple(order[:start]),
        rungs=tuple(rungs),
        dropped=count - start,
    )


# ---------------------------------------------------------------------------
# Evaluations and the Pareto front
# ---------------------------------------------------------------------------
@dataclass
class Evaluation:
    """One candidate scored at one rung: metrics, score, spec provenance."""

    candidate: Candidate
    rung: int
    #: the rung's nominal screen length (``None`` = full trace).
    accesses: int | None
    #: the ranking score: the objective metric, workload-averaged.
    score: float
    #: workload-averaged metrics (coverage, accuracy, speedup, metadata_traffic).
    metrics: dict
    #: workload → metrics dict, before averaging.
    per_workload: dict = field(default_factory=dict)
    #: workload → candidate-spec content hash (the store keys evaluated).
    spec_digests: dict = field(default_factory=dict)
    #: workload → baseline-spec content hash.
    baseline_digests: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serialisable form (the log record / front entry body)."""

        return {
            "candidate": self.candidate.as_dict(),
            "rung": self.rung,
            "accesses": self.accesses,
            "score": self.score,
            "metrics": dict(self.metrics),
            "per_workload": {
                workload: dict(values)
                for workload, values in sorted(self.per_workload.items())
            },
            "spec_digests": dict(sorted(self.spec_digests.items())),
            "baseline_digests": dict(sorted(self.baseline_digests.items())),
        }


def candidate_metrics(stats, baseline) -> dict:
    """The search's metric vector for one run, against its baseline run.

    ``metadata_traffic`` is the temporal prefetcher's Markov-table accesses
    per demand access — normalised per access rather than against the
    baseline, because the stride-only baseline performs none.
    """

    return {
        "coverage": stats.coverage_relative_to(baseline),
        "accuracy": stats.accuracy,
        "speedup": stats.speedup_relative_to(baseline),
        "metadata_traffic": (
            stats.markov_accesses / stats.accesses if stats.accesses else 0.0
        ),
    }


def _dominates(a: Mapping, b: Mapping) -> bool:
    """Whether metric vector ``a`` Pareto-dominates ``b`` on the fixed axes."""

    no_worse = all(a[m] >= b[m] for m in PARETO_MAXIMIZE) and all(
        a[m] <= b[m] for m in PARETO_MINIMIZE
    )
    better = any(a[m] > b[m] for m in PARETO_MAXIMIZE) or any(
        a[m] < b[m] for m in PARETO_MINIMIZE
    )
    return no_worse and better


def pareto_front(evaluations: Sequence[Evaluation]) -> list[Evaluation]:
    """The non-dominated evaluations, canonically ordered.

    Domination is over the fixed axes (maximise coverage and accuracy,
    minimise metadata traffic).  The result is sorted by those axes (then
    the candidate label), so both membership *and* serialised bytes are
    invariant to the order the evaluations arrived in.
    """

    front = [
        evaluation
        for evaluation in evaluations
        if not any(
            _dominates(other.metrics, evaluation.metrics)
            for other in evaluations
            if other is not evaluation
        )
    ]
    front.sort(
        key=lambda evaluation: (
            tuple(-evaluation.metrics[m] for m in PARETO_MAXIMIZE)
            + tuple(evaluation.metrics[m] for m in PARETO_MINIMIZE)
            + (evaluation.candidate.label(),)
        )
    )
    return front


def _ranked(evaluations: Sequence[Evaluation], objective: str) -> list[Evaluation]:
    """Evaluations best-first by the objective, ties kept in arrival order."""

    maximize = OBJECTIVES[objective]
    return sorted(
        evaluations,
        key=lambda evaluation: -evaluation.score if maximize else evaluation.score,
    )


# ---------------------------------------------------------------------------
# The explorer: rung evaluation through the executor + store
# ---------------------------------------------------------------------------
@dataclass
class SearchResult:
    """Everything one search produced (and wrote under its directory)."""

    strategy: str
    seed: int
    budget: int | None
    objective: str
    plan: SearchPlan
    candidates: list
    evaluations: list
    front: list
    #: the best full-trace evaluation by the objective.
    confirmed_top: Evaluation | None
    #: the first screen rung's best candidate (``None`` without screens).
    screen_top: Candidate | None
    #: store activity during this search: replayed (hits) vs executed (puts).
    store_replayed: int | None
    store_executed: int | None
    directory: Path

    @property
    def screen_confirms(self) -> bool | None:
        """Whether the screen's top pick also won full confirmation."""

        if self.screen_top is None or self.confirmed_top is None:
            return None
        return self.screen_top == self.confirmed_top.candidate

    def front_payload(self) -> dict:
        """The deterministic ``front.json`` payload (resume-stable bytes)."""

        return {
            "kind": "repro-explore-front",
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "objective": self.objective,
            "maximize": list(PARETO_MAXIMIZE),
            "minimize": list(PARETO_MINIMIZE),
            "candidates": len(self.candidates),
            "evaluations": len(self.evaluations),
            "front": [evaluation.as_dict() for evaluation in self.front],
            "confirmed_top": (
                self.confirmed_top.as_dict() if self.confirmed_top else None
            ),
            "screen_top": self.screen_top.as_dict() if self.screen_top else None,
            "screen_confirms": self.screen_confirms,
        }


def _atomic_write_text(path: Path, text: str) -> None:
    """Write a file atomically (tmp + rename), creating parents."""

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    tmp.replace(path)


def _slug(workload: str) -> str:
    """A filesystem-safe stem for a workload's screen files."""

    stem = workload.split(":", 1)[-1]
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in stem)


@dataclass
class Explorer:
    """Evaluates candidates of one :class:`SearchSpace` through the store.

    Execution policy mirrors :class:`~repro.experiments.runner.
    ExperimentRunner`: an optional persistent store (``use_cache=False``
    disables it), ``jobs`` worker processes, a kernel override, and
    sharding passthrough.  ``trace_overrides`` applies to the source
    workloads (screen windows are carved from the overridden stream).

    Screen traces are written under ``<directory>/screens/`` and that
    directory joins the trace search path for the explorer's lifetime —
    use the explorer as a context manager (or :func:`run_search`, which
    does) to unregister it afterwards.
    """

    space: SearchSpace
    directory: Path = Path(DEFAULT_SEARCH_DIR)
    objective: str = "coverage"
    warmup_fraction: float = 0.4
    trace_overrides: dict = field(default_factory=dict)
    screen_accesses: int = DEFAULT_SCREEN_ACCESSES
    eta: int = DEFAULT_ETA
    confirm: int = DEFAULT_CONFIRM
    store: ResultStore | None = None
    use_cache: bool = True
    jobs: int = 1
    kernel: str | None = None
    shards: int = 1
    shard_overlap: int | str = "warmup"
    #: append per-evaluation records to ``<directory>/log.jsonl``.
    write_log: bool = True

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"available: {sorted(OBJECTIVES)}"
            )
        self.directory = Path(self.directory)
        self._sources: dict[str, object] = {}
        self._screens: dict[tuple[str, int], str] = {}
        self._screens_registered = False

    # -- context management --------------------------------------------------
    def __enter__(self) -> "Explorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Unregister the screens directory from the trace search path."""

        if self._screens_registered:
            from repro.workloads.registry import remove_trace_directory

            remove_trace_directory(self.directory / SCREENS_DIRNAME)
            self._screens_registered = False

    # -- execution plumbing --------------------------------------------------
    def _store(self) -> ResultStore | None:
        if not self.use_cache:
            return None
        return self.store if self.store is not None else default_store()

    def _executor(self) -> BatchExecutor:
        return BatchExecutor(store=self._store(), jobs=self.jobs, kernel=self.kernel)

    def _source(self, workload: str):
        """The packed source stream of one workload (memoised per explorer)."""

        from repro.experiments.jobs import trace_for_workload
        from repro.traces.format import pack_trace

        packed = self._sources.get(workload)
        if packed is None:
            packed = pack_trace(
                trace_for_workload(workload, self.trace_overrides), name=workload
            )
            self._sources[workload] = packed
        return packed

    def _screen_workload(self, workload: str, accesses: int) -> tuple[str, dict]:
        """The (workload name, trace overrides) evaluating one screen cell.

        Materialises the first ``accesses`` of the source as an on-disk
        ``.rtrc`` prefix window (idempotent: :func:`~repro.traces.format.
        save_trace` writes deterministic bytes, so a resume re-saves the
        identical file and every spec digest — hence store key — is
        stable).  A screen at least as long as the source replays the
        source workload itself, so saturated screens share the full run's
        store entries instead of duplicating them.
        """

        source = self._source(workload)
        if accesses >= len(source):
            return workload, dict(self.trace_overrides)
        key = (workload, accesses)
        name = self._screens.get(key)
        if name is None:
            from repro.traces.format import save_trace
            from repro.traces.samplers import sample_prefix
            from repro.workloads.registry import TRACE_PREFIX, add_trace_directory

            screens_dir = self.directory / SCREENS_DIRNAME
            stem = f"{_slug(workload)}__screen{accesses}"
            window = sample_prefix(source, accesses, name=stem)
            save_trace(window, screens_dir / f"{stem}.rtrc")
            add_trace_directory(screens_dir)
            self._screens_registered = True
            name = f"{TRACE_PREFIX}{stem}"
            self._screens[key] = name
        return name, {}

    def _spec(self, configuration: str, workload: str, overrides: Mapping,
              scale: float, params: Mapping | None) -> RunSpec:
        """One canonical spec of this search (sharding policy included)."""

        return RunSpec.create(
            workload=workload,
            configuration=configuration,
            system=system_for(self.space.system, scale),
            trace_overrides=overrides,
            warmup_fraction=self.warmup_fraction,
            config_params=params,
            shards=self.shards,
            shard_overlap=self.shard_overlap,
        )

    # -- evaluation ----------------------------------------------------------
    def evaluate(
        self,
        candidates: Sequence[Candidate],
        rung_index: int = 0,
        accesses: int | None = None,
    ) -> list[Evaluation]:
        """Score candidates at one rung through a single deduplicated batch.

        ``accesses=None`` evaluates the full (possibly overridden) traces;
        an integer screens on that prefix window.  Every candidate cell
        and its per-(workload, scale) baseline run goes into one
        :meth:`BatchExecutor.run` call, so the store is consulted once,
        ``jobs`` parallelises across candidates, workloads and baselines
        alike, and warm cells replay instead of re-executing.
        """

        cells: list[tuple[str, str, dict]] = []
        for workload in self.space.workloads:
            if accesses is None:
                cells.append((workload, workload, dict(self.trace_overrides)))
            else:
                name, overrides = self._screen_workload(workload, accesses)
                cells.append((workload, name, overrides))

        candidate_specs: dict[tuple[Candidate, str], RunSpec] = {}
        baseline_specs: dict[tuple[float, str], RunSpec] = {}
        for candidate in candidates:
            for workload, name, overrides in cells:
                candidate_specs[(candidate, workload)] = self._spec(
                    candidate.configuration, name, overrides, candidate.scale,
                    candidate.params_dict() or None,
                )
                key = (candidate.scale, workload)
                if key not in baseline_specs:
                    baseline_specs[key] = self._spec(
                        self.space.baseline, name, overrides, candidate.scale, None
                    )
        batch = list(candidate_specs.values()) + list(baseline_specs.values())
        results = self._executor().run(batch)

        evaluations = []
        for candidate in candidates:
            per_workload: dict[str, dict] = {}
            digests: dict[str, str] = {}
            baseline_digests: dict[str, str] = {}
            for workload, _, _ in cells:
                spec = candidate_specs[(candidate, workload)]
                base_spec = baseline_specs[(candidate.scale, workload)]
                per_workload[workload] = candidate_metrics(
                    results[spec], results[base_spec]
                )
                digests[workload] = spec.content_hash()
                baseline_digests[workload] = base_spec.content_hash()
            metrics = {
                metric: sum(values[metric] for values in per_workload.values())
                / len(per_workload)
                for metric in OBJECTIVES
            }
            evaluations.append(
                Evaluation(
                    candidate=candidate,
                    rung=rung_index,
                    accesses=accesses,
                    score=metrics[self.objective],
                    metrics=metrics,
                    per_workload=per_workload,
                    spec_digests=digests,
                    baseline_digests=baseline_digests,
                )
            )
        return evaluations

    # -- the search loop -----------------------------------------------------
    def _manifest(self, strategy: str, budget: int | None, seed: int) -> dict:
        """The resumable description of this search (``search.json``)."""

        return {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "space": self.space.as_dict(),
            "strategy": strategy,
            "budget": budget,
            "seed": seed,
            "objective": self.objective,
            "eta": self.eta,
            "confirm": self.confirm,
            "screen_accesses": self.screen_accesses,
            "warmup_fraction": self.warmup_fraction,
            "trace_overrides": dict(self.trace_overrides),
        }

    def _log(self, record: dict) -> None:
        """Append one provenance record to the search log."""

        if not self.write_log:
            return
        path = self.directory / LOG_FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def run(
        self,
        strategy: str = "halving",
        budget: int | None = None,
        seed: int = 0,
    ) -> SearchResult:
        """Run one search end to end and write its artifacts.

        Writes ``search.json`` up front (so a killed search can resume),
        appends a ``log.jsonl`` record per evaluation as rungs complete,
        and finishes with the deterministic ``front.json``.  Against a
        warm store the whole search replays without executing a single
        simulation — that *is* the resume path (:func:`resume_search`).
        """

        candidates = self.space.candidates()
        plan = plan_search(
            len(candidates),
            strategy=strategy,
            budget=budget,
            seed=seed,
            eta=self.eta,
            screen_accesses=self.screen_accesses,
            confirm=self.confirm,
        )
        _atomic_write_text(
            self.directory / MANIFEST_FILENAME,
            json.dumps(self._manifest(strategy, budget, seed), indent=2, sort_keys=True)
            + "\n",
        )
        store = self._store()
        hits0, puts0 = (store.hits, store.puts) if store is not None else (0, 0)

        try:
            active = [candidates[index] for index in plan.selected]
            evaluations: list[Evaluation] = []
            screen_top: Candidate | None = None
            for rung in plan.rungs:
                entrants = active[: rung.entrants]
                rung_evaluations = self.evaluate(
                    entrants, rung_index=rung.index, accesses=rung.accesses
                )
                ranked = _ranked(rung_evaluations, self.objective)
                survivors = {
                    id(evaluation)
                    for evaluation in ranked[: rung.survivors]
                }
                for evaluation in rung_evaluations:
                    record = evaluation.as_dict()
                    record.update(
                        strategy=strategy,
                        seed=seed,
                        objective=self.objective,
                        promoted=id(evaluation) in survivors,
                    )
                    self._log(record)
                evaluations.extend(rung_evaluations)
                if screen_top is None and rung.accesses is not None:
                    screen_top = ranked[0].candidate
                active = [
                    evaluation.candidate for evaluation in ranked[: rung.survivors]
                ]

            final = [
                evaluation for evaluation in evaluations if evaluation.accesses is None
            ]
            front = pareto_front(final)
            confirmed_top = _ranked(final, self.objective)[0] if final else None
            store = self._store()
            result = SearchResult(
                strategy=strategy,
                seed=seed,
                budget=budget,
                objective=self.objective,
                plan=plan,
                candidates=candidates,
                evaluations=evaluations,
                front=front,
                confirmed_top=confirmed_top,
                screen_top=screen_top,
                store_replayed=store.hits - hits0 if store is not None else None,
                store_executed=store.puts - puts0 if store is not None else None,
                directory=self.directory,
            )
            _atomic_write_text(
                self.directory / FRONT_FILENAME,
                json.dumps(result.front_payload(), indent=2, sort_keys=True) + "\n",
            )
            return result
        finally:
            self.close()

    def describe(
        self,
        strategy: str = "halving",
        budget: int | None = None,
        seed: int = 0,
    ) -> str:
        """The search's axes and compiled plan, without simulating anything."""

        candidates = self.space.candidates()
        plan = plan_search(
            len(candidates),
            strategy=strategy,
            budget=budget,
            seed=seed,
            eta=self.eta,
            screen_accesses=self.screen_accesses,
            confirm=self.confirm,
        )
        space = self.space
        grid = space.param_grid_dict()
        lines = [
            f"explore: {len(candidates)} candidate(s) over "
            f"{len(space.configurations)} configuration(s)",
            f"  workloads:      {', '.join(space.workloads)}",
            f"  configurations: {', '.join(space.configurations)}",
        ]
        for key, values in sorted(grid.items()):
            lines.append(
                f"  {key}: {', '.join(str(value) for value in values)}"
            )
        scales = ", ".join(f"{scale:g}" for scale in space.scales)
        lines.append(f"  system:         {space.system} (scale {scales})")
        lines.append(f"  baseline:       {space.baseline}")
        lines.append(f"  objective:      {self.objective}")
        lines.extend(f"  {line}" for line in plan.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Module-level entry points (the CLI's surface)
# ---------------------------------------------------------------------------
def run_search(
    space: SearchSpace,
    strategy: str = "halving",
    budget: int | None = None,
    seed: int = 0,
    directory: str | Path = DEFAULT_SEARCH_DIR,
    **options,
) -> SearchResult:
    """Run one search (see :meth:`Explorer.run`); ``options`` configure it."""

    with Explorer(space=space, directory=Path(directory), **options) as explorer:
        return explorer.run(strategy=strategy, budget=budget, seed=seed)


def describe_search(
    space: SearchSpace,
    strategy: str = "halving",
    budget: int | None = None,
    seed: int = 0,
    **options,
) -> str:
    """Describe a search's plan without executing it (see :meth:`Explorer.describe`)."""

    return Explorer(space=space, **options).describe(
        strategy=strategy, budget=budget, seed=seed
    )


def load_manifest(directory: str | Path) -> dict:
    """Read and validate a search directory's ``search.json`` manifest."""

    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        raise FileNotFoundError(
            f"{path}: no search manifest — run `repro explore run --dir "
            f"{Path(directory)}` first"
        )
    manifest = json.loads(path.read_text())
    if manifest.get("kind") != MANIFEST_KIND:
        raise ValueError(f"{path}: not a repro explore manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"{path}: manifest version {manifest.get('version')!r} is not "
            f"{MANIFEST_VERSION}"
        )
    return manifest


def resume_search(directory: str | Path, **options) -> SearchResult:
    """Re-run the search described by a directory's manifest.

    The manifest replays the identical space, strategy, seed, budget and
    screen parameters; because every evaluated point is a content-hashed
    spec in the store (screen windows re-save byte-identically, so their
    digests are stable), everything the killed search completed is served
    from the store and **zero** specs re-execute.  ``options`` override
    only execution policy (store, jobs, kernel, shards) — never the search
    itself.
    """

    manifest = load_manifest(directory)
    space = SearchSpace.from_dict(manifest["space"])
    explorer = Explorer(
        space=space,
        directory=Path(directory),
        objective=manifest["objective"],
        warmup_fraction=manifest["warmup_fraction"],
        trace_overrides=dict(manifest.get("trace_overrides") or {}),
        screen_accesses=manifest["screen_accesses"],
        eta=manifest["eta"],
        confirm=manifest["confirm"],
        **options,
    )
    with explorer:
        return explorer.run(
            strategy=manifest["strategy"],
            budget=manifest["budget"],
            seed=manifest["seed"],
        )


def render_search(result: SearchResult) -> str:
    """The text report of one finished search (the CLI output)."""

    plan = result.plan
    ladder = " -> ".join(
        f"[{rung.entrants} @ "
        + ("full" if rung.accesses is None else str(rung.accesses))
        + "]"
        for rung in plan.rungs
    )
    lines = [
        f"explore: {result.strategy} search over {len(plan.selected)} of "
        f"{len(result.candidates)} candidate(s), seed {result.seed}, "
        f"objective {result.objective}",
        f"rungs: {ladder}",
    ]
    if result.store_replayed is not None:
        lines.append(
            f"simulations: {result.store_replayed} replayed from store, "
            f"{result.store_executed} executed"
        )
    else:
        lines.append("store: disabled (--no-cache)")
    if result.screen_top is not None:
        lines.append(f"screen top pick:  {result.screen_top.label()}")
    if result.confirmed_top is not None:
        verdict = ""
        if result.screen_confirms is not None:
            verdict = (
                "  (screen pick confirmed)"
                if result.screen_confirms
                else "  (screen pick NOT confirmed)"
            )
        lines.append(f"confirmed top:    {result.confirmed_top.candidate.label()}{verdict}")
    lines.append(
        "Pareto front (maximise coverage, accuracy; minimise metadata traffic):"
    )
    width = max((len(e.candidate.label()) for e in result.front), default=0)
    for evaluation in result.front:
        metrics = evaluation.metrics
        lines.append(
            f"  {evaluation.candidate.label():<{width}}  "
            f"coverage={metrics['coverage']:.3f}  "
            f"accuracy={metrics['accuracy']:.3f}  "
            f"metadata_traffic={metrics['metadata_traffic']:.3f}  "
            f"speedup={metrics['speedup']:.3f}"
        )
    lines.append(f"wrote {result.directory / FRONT_FILENAME}")
    return "\n".join(lines)
