"""Ready-to-run reproductions of every figure and table in the evaluation.

Each ``figure_N`` function *declares* the full (workload × configuration)
matrix the paper's figure plots — the single-core figures 10-15 as entries
in :data:`MATRIX_FIGURES` — and submits it in one batch through
:class:`~repro.experiments.runner.ExperimentRunner`, which turns every cell
into a :class:`~repro.experiments.jobs.RunSpec`, replays completed cells
from the persistent :class:`~repro.experiments.store.ResultStore`, and runs
the misses through the :class:`~repro.experiments.parallel.BatchExecutor`
(in parallel when the runner's ``jobs > 1``).  Because figures 10-15 share
one underlying matrix, the first figure pays for the simulations — once,
ever, per code version — and every later figure, process and benchmark
session replays them from the store.

*Every* simulation flows through that path, not just the single-core
matrices: figure 16's multiprogrammed pairs are declared as
:class:`~repro.experiments.jobs.MultiProgramSpec` batches, and the section
3.3 replacement study runs as parameterised registry configurations whose
``max_entries`` cap is folded into each spec's store key.  A warm store
therefore re-executes nothing anywhere in the harness.

The reduced metric lands in a :class:`FigureResult` holding the numeric
table plus a rendered text version.  The benchmark modules under
``benchmarks/`` call these functions (one per figure) and print the rendered
tables, which is the reproduction's equivalent of regenerating the paper's
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import add_geomean_row, geomean
from repro.analysis.report import render_figure
from repro.core.config import TriangelConfig, total_dedicated_storage_bytes, triangel_structure_sizes
from repro.experiments.configs import (
    ABLATION_LADDER,
    ENERGY_SERIES,
    MAIN_SERIES,
    METADATA_FORMAT_CONFIGS,
    MULTIPROGRAM_SERIES,
    REPLACEMENT_POLICIES,
)
from repro.experiments.runner import ExperimentRunner
from repro.sim.config import SystemConfig
from repro.workloads.registry import (
    GRAPH500_WORKLOADS,
    MULTIPROGRAM_PAIRS,
    SPEC_WORKLOADS,
)


@dataclass
class FigureResult:
    """The reproduced data for one figure or table."""

    figure: str
    title: str
    table: dict[str, dict[str, float]]
    columns: list[str]
    rendered: str = ""
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def geomean_row(self) -> dict[str, float]:
        """The summary (geomean) row of the table, if the figure has one."""

        return self.table.get("geomean", {})


def _render(result: FigureResult) -> FigureResult:
    result.rendered = render_figure(
        f"{result.figure}: {result.title}",
        result.table,
        result.columns,
        note=result.notes or None,
    )
    return result


def _default_runner(runner: ExperimentRunner | None) -> ExperimentRunner:
    return runner or ExperimentRunner()


# ---------------------------------------------------------------------------
# Figures 10-15: the main single-core matrix through different metrics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixFigureSpec:
    """Declaration of one single-core matrix figure: its series and metric."""

    figure: str
    title: str
    metric: str
    series: tuple[str, ...]
    notes: str = ""


#: The declared matrices of figures 10-15.  Each figure's cells are
#: (SPEC_WORKLOADS × series) plus the baseline column; the runner submits
#: the whole matrix as one batch to the executor/store.
MATRIX_FIGURES: dict[str, MatrixFigureSpec] = {
    "fig10": MatrixFigureSpec(
        "Figure 10",
        "Speedup over stride-only baseline (higher is better)",
        "speedup",
        MAIN_SERIES,
        notes="Paper geomeans: Triage 1.093, Triage-Deg4 1.142, Triage-Deg4-Look2 1.166, "
        "Triangel 1.264, Triangel-Bloom 1.261.",
    ),
    "fig11": MatrixFigureSpec(
        "Figure 11",
        "Normalised DRAM traffic (lower is better)",
        "dram_traffic",
        MAIN_SERIES,
        notes="Paper geomeans: Triage ~1.285, Triage-Deg4 ~1.438, Triangel ~1.10, "
        "Triangel-Bloom ~1.146.",
    ),
    "fig12": MatrixFigureSpec(
        "Figure 12",
        "Temporal-prefetch accuracy (higher is better)",
        "accuracy",
        MAIN_SERIES,
        notes="Paper shape: Triangel is the most accurate; Triage-Deg4 is more accurate "
        "than Triage by ratio but issues far more prefetches.",
    ),
    "fig13": MatrixFigureSpec(
        "Figure 13",
        "Coverage of baseline L2 demand misses (higher is better)",
        "coverage",
        MAIN_SERIES,
        notes="Paper shape: Triangel declines to prefetch poor streams (Astar, Soplex), "
        "trading coverage there for accuracy and traffic.",
    ),
    "fig14": MatrixFigureSpec(
        "Figure 14",
        "Normalised L3 accesses incl. Markov metadata (lower is better)",
        "l3_accesses",
        ENERGY_SERIES,
        notes="Paper shape: Triage-Deg4 exceeds 5x; Triangel stays near Triage-Deg1 even "
        "at degree 4 thanks to filtering and the Metadata Reuse Buffer.",
    ),
    "fig15": MatrixFigureSpec(
        "Figure 15",
        "Normalised DRAM+L3 dynamic energy (lower is better)",
        "energy",
        ENERGY_SERIES,
        notes="Paper geomeans: Triangel ~1.14, Triangel-Bloom ~1.19, Triage ~1.36, "
        "Triage-Deg4 ~1.60.",
    ),
}


def main_matrix_specs(runner: ExperimentRunner):
    """Every RunSpec figures 10-15 need (the union of the declared matrices).

    Submitting this list through the runner's executor warms the store for
    all six figures in a single deduplicated, parallelisable batch.
    """

    configurations = ["baseline"] + [
        name
        for spec in MATRIX_FIGURES.values()
        for name in spec.series
    ]
    seen = dict.fromkeys(configurations)
    return [
        runner.spec_for(workload, configuration)
        for workload in SPEC_WORKLOADS
        for configuration in seen
    ]


def _matrix_figure(
    runner: ExperimentRunner | None, spec: MatrixFigureSpec
) -> FigureResult:
    runner = _default_runner(runner)
    table = runner.normalized_matrix(SPEC_WORKLOADS, list(spec.series), spec.metric)
    return _render(
        FigureResult(
            figure=spec.figure,
            title=spec.title,
            table=table,
            columns=list(spec.series),
            notes=spec.notes,
        )
    )


def figure_10_speedup(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 10: speedup over the stride-only baseline."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig10"])


def figure_11_dram_traffic(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 11: normalised DRAM traffic (lower is better)."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig11"])


def figure_12_accuracy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 12: prefetch accuracy (prefetched lines used before L2 eviction)."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig12"])


def figure_13_coverage(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 13: coverage of baseline L2 demand misses."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig13"])


def figure_14_l3_traffic(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 14: normalised L3 accesses including Markov-table accesses."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig14"])


def figure_15_energy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 15: normalised DRAM+L3 dynamic energy (25:1 weighting)."""

    return _matrix_figure(runner, MATRIX_FIGURES["fig15"])


# ---------------------------------------------------------------------------
# Figure 16: multiprogrammed pairs
# ---------------------------------------------------------------------------
def figure_16_multiprogram(
    runner: ExperimentRunner | None = None,
    max_accesses_per_core: int | None = 30_000,
) -> FigureResult:
    """Figure 16: speedup of workload pairs sharing the L3 and DRAM.

    Every (pair × configuration) run — baseline included — is declared as a
    :class:`~repro.experiments.jobs.MultiProgramSpec` and submitted as one
    batch, so the runs dedupe, parallelise under ``jobs > 1``, and replay
    from the persistent store on later invocations.
    """

    runner = _default_runner(runner)
    series = ["baseline"] + list(MULTIPROGRAM_SERIES)
    cell_specs = {
        (pair, configuration): runner.multiprogram_spec_for(
            pair, configuration, max_accesses_per_core
        )
        for pair in MULTIPROGRAM_PAIRS
        for configuration in series
    }
    batch = runner.submit(list(cell_specs.values()))

    table: dict[str, dict[str, float]] = {}
    for pair in MULTIPROGRAM_PAIRS:
        label = f"{pair[0]} & {pair[1]}"
        baseline = batch[cell_specs[(pair, "baseline")]]
        table[label] = {}
        for configuration in MULTIPROGRAM_SERIES:
            result = batch[cell_specs[(pair, configuration)]]
            speedups = result.speedups_relative_to(baseline)
            table[label][configuration] = geomean(speedups)
    table = add_geomean_row(table)
    return _render(
        FigureResult(
            figure="Figure 16",
            title="Multiprogrammed-pair speedup (shared L3, Markov partition and DRAM)",
            table=table,
            columns=list(MULTIPROGRAM_SERIES),
            notes="Paper shape: Triangel holds its gains; Triage slips and Triage-Deg4's "
            "aggression backfires under bandwidth constraint.",
        )
    )


# ---------------------------------------------------------------------------
# Figure 17: Graph500 adversarial workloads
# ---------------------------------------------------------------------------
def figure_17_graph500(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 17: slowdown and DRAM traffic on Graph500 search."""

    runner = _default_runner(runner)
    series = list(MULTIPROGRAM_SERIES)
    results = runner.run_matrix(list(GRAPH500_WORKLOADS), ["baseline"] + series)
    table: dict[str, dict[str, float]] = {}
    for workload in GRAPH500_WORKLOADS:
        baseline = results[workload]["baseline"]
        slowdown_row = {}
        traffic_row = {}
        for configuration in series:
            stats = results[workload][configuration]
            speedup = stats.speedup_relative_to(baseline)
            slowdown_row[configuration] = 1.0 / speedup if speedup > 0 else float("inf")
            traffic_row[configuration] = stats.dram_traffic_relative_to(baseline)
        table[f"{workload} slowdown"] = slowdown_row
        table[f"{workload} dram"] = traffic_row
    return _render(
        FigureResult(
            figure="Figure 17",
            title="Graph500 search: slowdown and DRAM traffic (lower is better)",
            table=table,
            columns=series,
            notes="Paper shape: Triage configurations slow down markedly and inflate DRAM "
            "traffic; Triangel's Set Dueller keeps both near 1.0.",
        )
    )


# ---------------------------------------------------------------------------
# Figures 18/19: Markov metadata format study
# ---------------------------------------------------------------------------
def _relabeled(table: dict, mapping: dict[str, str]) -> dict:
    """Rename each row's configuration keys (registry name → display name)."""

    return {
        row: {mapping.get(name, name): value for name, value in per_config.items()}
        for row, per_config in table.items()
    }


def figure_18_metadata_formats(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 18: Triage speedup under different Markov-entry formats.

    The format variants are registry configurations (``triage-format-*``),
    so the whole matrix goes through the executor/store like figures 10-15;
    only the column labels are shortened back to the paper's names.
    """

    runner = _default_runner(runner)
    registry = {f"triage-format-{name}": name for name in METADATA_FORMAT_CONFIGS}
    table = _relabeled(
        runner.normalized_matrix(SPEC_WORKLOADS, list(registry), "speedup"), registry
    )
    return _render(
        FigureResult(
            figure="Figure 18",
            title="Triage speedup by Markov metadata format",
            table=table,
            columns=list(registry.values()),
            notes="Paper shape: 42-bit > 32-bit-LUT variants; the 10-bit-offset "
            "(fragmented) variant drops sharply; 16-way LUT ≈ fully-associative LUT.",
        )
    )


def figure_19_lut_accuracy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 19: Triage accuracy with 11-bit vs 10-bit LUT offsets."""

    runner = _default_runner(runner)
    registry = {
        "triage-format-32-bit-LUT-16-way": "11-bit",
        "triage-format-32-bit-LUT-16-way-10b-offset": "10-bit",
    }
    results = runner.run_matrix(list(SPEC_WORKLOADS), list(registry))
    table = {
        workload: {
            registry[name]: stats.accuracy for name, stats in per_config.items()
        }
        for workload, per_config in results.items()
    }
    table = add_geomean_row(table)
    return _render(
        FigureResult(
            figure="Figure 19",
            title="Triage LUT accuracy with 11-bit vs 10-bit offsets",
            table=table,
            columns=list(registry.values()),
            notes="Paper shape: accuracy is workload-dependent and collapses further with "
            "the fragmented 10-bit offset; Triangel avoids the LUT entirely.",
        )
    )


# ---------------------------------------------------------------------------
# Figure 20: ablation ladder
# ---------------------------------------------------------------------------
def figure_20_ablation(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 20: progressive addition of Triangel's mechanisms.

    Like figure 18, the ladder steps live in the registry (``ablation-*``),
    so both matrices replay from the store after the first run.
    """

    runner = _default_runner(runner)
    registry = {f"ablation-{name}": name for name in ABLATION_LADDER}
    speedups = _relabeled(
        runner.normalized_matrix(SPEC_WORKLOADS, list(registry), "speedup"), registry
    )
    traffic = _relabeled(
        runner.normalized_matrix(SPEC_WORKLOADS, list(registry), "dram_traffic"),
        registry,
    )
    table: dict[str, dict[str, float]] = {}
    for workload, row in speedups.items():
        table[f"{workload} speedup"] = row
    for workload, row in traffic.items():
        table[f"{workload} dram"] = row
    return _render(
        FigureResult(
            figure="Figure 20",
            title="Ablation: progressively adding Triangel's mechanisms to Triage-Deg4",
            table=table,
            columns=list(registry.values()),
            notes="Paper shape: BasePatternConf roughly halves the DRAM overhead; the Set "
            "Dueller cuts traffic further; HighPatternConf trades a little speed for traffic.",
            extras={"speedup": speedups, "dram_traffic": traffic},
        )
    )


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------
def table_1_structure_sizes(config: TriangelConfig | None = None) -> FigureResult:
    """Table 1: Triangel's dedicated-storage budget."""

    sizes = triangel_structure_sizes(config)
    table = {
        size.name: {"entries": float(size.entries), "bytes": size.bytes} for size in sizes
    }
    total = total_dedicated_storage_bytes(config)
    table["Total"] = {"entries": float("nan"), "bytes": total}
    result = FigureResult(
        figure="Table 1",
        title="Triangel dedicated storage (paper total: ~17.6 KiB)",
        table=table,
        columns=["entries", "bytes"],
        notes=f"Total dedicated storage: {total / 1024:.1f} KiB",
    )
    return _render(result)


def table_2_system_config(system: SystemConfig | None = None) -> FigureResult:
    """Table 2: the simulated core and memory configuration."""

    system = system or SystemConfig.paper()
    description = system.describe()
    table = {key: {"value": float("nan")} for key in description}
    result = FigureResult(
        figure="Table 2",
        title=f"System configuration ({system.name})",
        table=table,
        columns=["value"],
        extras={"description": description},
    )
    lines = [f"Table 2: system configuration ({system.name})", "=" * 40]
    for key, value in description.items():
        lines.append(f"{key:>14}: {value}")
    result.rendered = "\n".join(lines)
    return result


# ---------------------------------------------------------------------------
# Section 3.3 replacement study
# ---------------------------------------------------------------------------
def replacement_study(
    runner: ExperimentRunner | None = None, max_entries: int | None = 1024
) -> FigureResult:
    """Section 3.3: Markov replacement policy under constrained capacity.

    The policy variants are parameterised registry configurations
    (``triage-lru`` / ``triage-srrip`` / ``triage-hawkeye`` in
    :data:`~repro.experiments.configs.PARAMETERISED_CONFIGS`), and the
    ``max_entries`` cap travels in each spec's ``config_params`` — so the
    whole study persists in the store, differently-capped variants occupy
    distinct entries, and runs parallelise under ``jobs > 1``.
    """

    runner = _default_runner(runner)
    series = [f"triage-{policy}" for policy in REPLACEMENT_POLICIES]
    table = runner.normalized_matrix(
        SPEC_WORKLOADS,
        series,
        "speedup",
        config_params={"max_entries": max_entries},
    )
    return _render(
        FigureResult(
            figure="Section 3.3",
            title=f"Markov replacement study (capacity capped at {max_entries} entries)",
            table=table,
            columns=series,
            notes="Paper observation: HawkEye beats LRU/RRIP only when capacity is "
            "artificially constrained.",
        )
    )
