"""Ready-to-run reproductions of every figure and table in the evaluation.

Each ``figure_N`` function is a thin wrapper over one registered
:class:`~repro.experiments.study.Study` declaration in
:data:`~repro.experiments.studies.STUDIES`: the study *compiles* to a batch
of :class:`~repro.experiments.jobs.RunSpec` /
:class:`~repro.experiments.jobs.MultiProgramSpec` values, the
:class:`~repro.experiments.runner.ExperimentRunner` submits the batch
through the :class:`~repro.experiments.parallel.BatchExecutor` (replaying
completed cells from the persistent
:class:`~repro.experiments.store.ResultStore`, running misses in parallel
when ``jobs > 1``), and the study's reducer turns the results into the
figure's table.  Because figures 10-15 declare overlapping matrices, the
first figure pays for the simulations — once, ever, per code version — and
every later figure, process and benchmark session replays them from the
store.

*Every* simulation flows through that path: figure 16's multiprogrammed
pairs compile to :class:`~repro.experiments.jobs.MultiProgramSpec` batches,
and the section 3.3 replacement study runs as parameterised registry
configurations whose ``max_entries`` cap is folded into each spec's store
key.  A warm store therefore re-executes nothing anywhere in the harness.

The reduced metric lands in a :class:`FigureResult` holding the numeric
table plus a rendered text version.  The benchmark modules under
``benchmarks/`` call these functions (one per figure) and print the rendered
tables, which is the reproduction's equivalent of regenerating the paper's
plots.  New scenarios should not add functions here — declare a
:class:`~repro.experiments.study.Study` (or override an existing one from
the ``repro study`` CLI) instead.
"""

from __future__ import annotations

from repro.core.config import TriangelConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.studies import (
    STUDIES,
    main_matrix_specs,
    structure_sizes_result,
    system_config_result,
)
from repro.experiments.study import FigureResult, render_result
from repro.sim.config import SystemConfig

__all__ = [
    "FigureResult",
    "main_matrix_specs",
    "figure_10_speedup",
    "figure_11_dram_traffic",
    "figure_12_accuracy",
    "figure_13_coverage",
    "figure_14_l3_traffic",
    "figure_15_energy",
    "figure_16_multiprogram",
    "figure_17_graph500",
    "figure_18_metadata_formats",
    "figure_19_lut_accuracy",
    "figure_20_ablation",
    "table_1_structure_sizes",
    "table_2_system_config",
    "replacement_study",
]


def figure_10_speedup(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 10: speedup over the stride-only baseline."""

    return STUDIES.run("fig10", runner)


def figure_11_dram_traffic(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 11: normalised DRAM traffic (lower is better)."""

    return STUDIES.run("fig11", runner)


def figure_12_accuracy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 12: prefetch accuracy (prefetched lines used before L2 eviction)."""

    return STUDIES.run("fig12", runner)


def figure_13_coverage(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 13: coverage of baseline L2 demand misses."""

    return STUDIES.run("fig13", runner)


def figure_14_l3_traffic(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 14: normalised L3 accesses including Markov-table accesses."""

    return STUDIES.run("fig14", runner)


def figure_15_energy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 15: normalised DRAM+L3 dynamic energy (25:1 weighting)."""

    return STUDIES.run("fig15", runner)


#: Sentinel distinguishing "caller passed nothing" from an explicit value,
#: so the wrapper's default can never drift from the fig16 declaration's.
_UNSET = object()


def figure_16_multiprogram(
    runner: ExperimentRunner | None = None,
    max_accesses_per_core=_UNSET,
) -> FigureResult:
    """Figure 16: speedup of workload pairs sharing the L3 and DRAM.

    ``max_accesses_per_core`` defaults to the registered study's declared
    per-core cap; pass an int (or ``None`` for uncapped) to override it.
    """

    study = STUDIES.get("fig16")
    if (
        max_accesses_per_core is not _UNSET
        and max_accesses_per_core != study.max_accesses_per_core
    ):
        # Route through the validated override hook (the single mutation
        # path), not a bare dataclasses.replace.
        raw = "none" if max_accesses_per_core is None else str(max_accesses_per_core)
        study = study.overridden(assignments={"max_accesses_per_core": raw})
    return study.run(runner)


def figure_17_graph500(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 17: slowdown and DRAM traffic on Graph500 search."""

    return STUDIES.run("fig17", runner)


def figure_18_metadata_formats(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 18: Triage speedup under different Markov-entry formats."""

    return STUDIES.run("fig18", runner)


def figure_19_lut_accuracy(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 19: Triage accuracy with 11-bit vs 10-bit LUT offsets."""

    return STUDIES.run("fig19", runner)


def figure_20_ablation(runner: ExperimentRunner | None = None) -> FigureResult:
    """Figure 20: progressive addition of Triangel's mechanisms."""

    return STUDIES.run("fig20", runner)


def table_1_structure_sizes(config: TriangelConfig | None = None) -> FigureResult:
    """Table 1: Triangel's dedicated-storage budget."""

    if config is None:
        return STUDIES.run("table1")
    return render_result(structure_sizes_result(config))


def table_2_system_config(system: SystemConfig | None = None) -> FigureResult:
    """Table 2: the simulated core and memory configuration."""

    if system is None:
        return STUDIES.run("table2")
    return system_config_result(system)


def replacement_study(
    runner: ExperimentRunner | None = None, max_entries: int | None = 1024
) -> FigureResult:
    """Section 3.3: Markov replacement policy under constrained capacity.

    The policy variants are parameterised registry configurations whose
    ``max_entries`` cap travels in each spec's ``config_params`` — so the
    whole study persists in the store, differently-capped variants occupy
    distinct entries, and runs parallelise under ``jobs > 1``.
    """

    study = STUDIES.get("replacement-study").with_config_params(max_entries=max_entries)
    return study.run(runner)
