"""Immutable run specifications: the unit of work of the experiment layer.

Two spec types cover every simulation in the repository:

* a :class:`RunSpec` fully describes one single-core simulation — workload,
  configuration name, call-time configuration parameters, the complete
  system parameters, trace overrides, warm-up fraction and access cap;
* a :class:`MultiProgramSpec` describes one multiprogrammed run — the
  per-core workloads, the configuration every core runs, and the
  metadata-sharing flag — over the same system/trace/warm-up fields.

Both are frozen, hashable values.  They replace the ad-hoc tuple keys the
runner used to build for its module-global caches, and they are the only
thing that crosses a process boundary when runs execute in parallel: a
worker rebuilds the trace, hierarchy and prefetcher stack from the spec, so
nothing unpicklable (caches, simulators, factories) ever has to.  The
:func:`execute` dispatcher turns either spec kind into its result.

Each spec's ``content_hash`` keys the persistent result store
(:mod:`repro.experiments.store`).  It hashes the canonical JSON form of
every field (including a ``kind`` discriminator, so the two spec types can
never collide) plus a code-version salt derived from the simulator sources,
so results cached by one version of the code are never replayed by another.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.sim.config import SystemConfig, TimingParams
from repro.memory.hierarchy import HierarchyParams
from repro.sim.stats import SimulationStats

#: Bump to force-invalidate every persisted result regardless of source hash.
SPEC_SCHEMA_VERSION = 1

#: Package subtrees whose sources determine simulation results.  Anything
#: else (CLI, reports, rendering) can change without invalidating the store.
_SIMULATION_SOURCES = (
    "core",
    "memory",
    "prefetch",
    "sim",
    "triage",
    # the trace I/O layer decodes on-disk access streams, so its code
    # determines what ``trace:`` workloads replay.
    "traces",
    "utils",
    "workloads",
    "experiments/configs.py",
    # this module: it computes the warm-up length and drives the simulator.
    "experiments/jobs.py",
)

_code_version_cache: str | None = None


def code_version() -> str:
    """A digest of every source file that can affect simulation results.

    Used as a salt in :meth:`RunSpec.content_hash` so that persisted results
    are automatically invalidated whenever the simulator changes, without
    anyone having to remember to bump a version constant.
    """

    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256(f"schema={SPEC_SCHEMA_VERSION}".encode())
        for entry in _SIMULATION_SOURCES:
            path = package_root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                digest.update(str(file.relative_to(package_root)).encode())
                digest.update(file.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _freeze(value):
    """Recursively convert mappings/sequences to sorted, hashable tuples."""

    if isinstance(value, Mapping):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` for key/value trees."""

    if isinstance(value, tuple):
        if all(isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str) for item in value):
            return {key: _thaw(item) for key, item in value}
        return [_thaw(item) for item in value]
    return value


def _trace_digests(workloads: Sequence[str]) -> dict[str, str]:
    """Content digests of every on-disk trace workload among ``workloads``.

    Generated workloads are fully described by their name and overrides, but
    a ``trace:`` workload's stream lives in a file — so its identity is the
    file's *content* digest (see
    :func:`repro.traces.format.trace_file_digest`).  Each spec captures the
    digests at *creation* time into its frozen ``trace_digests`` field, so
    a spec's content hash is immutable over its lifetime and hashing never
    touches the filesystem; the execute path re-digests and refuses to run
    if the file changed after the spec was compiled.  The persistent store
    therefore stays correct when a trace file is re-recorded or re-imported
    under the same name, while a mere rename or move never invalidates
    results.
    """

    digests: dict[str, str] = {}
    for workload in workloads:
        if workload.startswith("trace:") and workload not in digests:
            # Imported lazily: spec hashing must stay importable without the
            # trace layer, and most specs reference no trace files at all.
            from repro.traces.format import trace_file_digest
            from repro.workloads.registry import resolve_trace_path

            digests[workload] = trace_file_digest(resolve_trace_path(workload))
    return digests


class _SpecBase:
    """Behaviour shared by both spec kinds: reconstruction and identity."""

    # -- reconstruction -----------------------------------------------------
    def system_config(self) -> SystemConfig:
        """Rebuild the full :class:`SystemConfig` this spec was created from."""

        data = _thaw(self.system)
        hierarchy = HierarchyParams(**data.pop("hierarchy"))
        timing = TimingParams(**data.pop("timing"))
        return SystemConfig(hierarchy=hierarchy, timing=timing, **data)

    def trace_overrides_dict(self) -> dict:
        """The trace-generation overrides as a plain dictionary."""

        return _thaw(self.trace_overrides) or {}

    def config_params_dict(self) -> dict:
        """The call-time configuration parameters as a plain dictionary."""

        return _thaw(self.config_params) or {}

    def trace_digests_dict(self) -> dict:
        """The creation-time trace-file digests as a plain dictionary."""

        return _thaw(self.trace_digests) or {}

    def _verify_trace_digests(self, workloads: Sequence[str]) -> None:
        """Refuse to execute against trace files that changed after compile.

        The spec's hash — and hence the store key the result lands under —
        reflects the digests captured at creation; simulating the file's
        *current* bytes would persist a result under the wrong key.
        """

        current = _trace_digests(workloads)
        if self.trace_digests_dict() != current:
            raise ValueError(
                f"trace file(s) backing {sorted(current)} changed since this "
                f"spec was created; re-compile the study/spec to run against "
                f"the new contents"
            )

    # -- identity -----------------------------------------------------------
    def content_hash(self) -> str:
        """Hex digest keying the persistent store (salted by code version)."""

        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(f"{code_version()}|{canonical}".encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class RunSpec(_SpecBase):
    """Everything needed to (re)run one (workload × configuration) cell.

    Instances are created through :meth:`RunSpec.create`, which canonicalises
    the mutable inputs (the system config becomes a frozen parameter tree,
    trace overrides and configuration parameters key-sorted tuples) so that
    equal simulations compare and hash equal no matter how their inputs were
    spelled.

    ``config_params`` carries the call-time parameters of a *parameterised*
    configuration (e.g. the replacement study's ``max_entries`` cap).  They
    are part of the spec's identity, so two variants of the same study can
    never collide in the store, and a worker process can rebuild the exact
    prefetcher stack from the spec alone (see
    :data:`repro.experiments.configs.PARAMETERISED_CONFIGS`).
    """

    workload: str
    configuration: str
    system: tuple
    trace_overrides: tuple
    warmup_fraction: float = 0.4
    max_accesses: int | None = None
    config_params: tuple = ()
    #: (name, digest) pairs of any ``trace:`` file backing the workload,
    #: captured at creation time (empty for generated workloads).
    trace_digests: tuple = ()
    #: trace windows to replay concurrently (1 = sequential).  Unlike the
    #: kernel *name*, sharding is part of the spec's identity: a finite
    #: overlap makes merged statistics approximate (see
    #: :mod:`repro.sim.shard`), so sharded and sequential results must
    #: never alias one store entry.
    shards: int = 1
    #: warm-up overlap per shard: an access count, ``"warmup"``, ``"full"``.
    shard_overlap: int | str = "warmup"

    @classmethod
    def create(
        cls,
        workload: str,
        configuration: str,
        system: SystemConfig,
        trace_overrides: Mapping | None = None,
        warmup_fraction: float = 0.4,
        max_accesses: int | None = None,
        config_params: Mapping | None = None,
        shards: int = 1,
        shard_overlap: int | str | None = None,
    ) -> "RunSpec":
        """Build a canonical spec from mutable inputs (see class docs)."""

        from repro.sim.shard import normalize_overlap

        if shards < 1:
            raise ValueError(f"--shards must be at least 1, got {shards}")
        return cls(
            workload=workload,
            configuration=configuration,
            system=_freeze(asdict(system)),
            trace_overrides=_freeze(dict(trace_overrides or {})),
            warmup_fraction=warmup_fraction,
            max_accesses=max_accesses,
            config_params=_freeze(dict(config_params or {})),
            trace_digests=_freeze(_trace_digests([workload])),
            shards=int(shards),
            shard_overlap=normalize_overlap(shard_overlap),
        )

    def as_dict(self) -> dict:
        """JSON-serialisable canonical form (also stored alongside results).

        For ``trace:`` workloads a ``trace_digests`` entry content-addresses
        the backing file, so the spec's hash — and hence the store key —
        changes exactly when the file's bytes do.  Specs over generated
        workloads carry no such entry and hash as they always have.
        Likewise ``shards``/``shard_overlap`` appear only when the spec is
        actually sharded, so sequential specs keep their existing hashes
        while sharded results key distinctly per (shards, overlap).
        """

        data = {
            "kind": "run",
            "workload": self.workload,
            "configuration": self.configuration,
            "config_params": self.config_params_dict(),
            "system": _thaw(self.system),
            "trace_overrides": self.trace_overrides_dict(),
            "warmup_fraction": self.warmup_fraction,
            "max_accesses": self.max_accesses,
        }
        digests = self.trace_digests_dict()
        if digests:
            data["trace_digests"] = digests
        if self.shards > 1:
            data["shards"] = self.shards
            data["shard_overlap"] = self.shard_overlap
        return data


@dataclass(frozen=True)
class MultiProgramSpec(_SpecBase):
    """Everything needed to (re)run one multiprogrammed (pair × config) cell.

    ``workloads`` lists the per-core traces in core order (order matters:
    core 0's workload is not interchangeable with core 1's), all cores run
    the same named ``configuration``, and ``share_metadata`` records whether
    the cores' temporal prefetchers unify their Markov partition and sizing
    state (the paper's figure 16 setup; see
    :func:`repro.sim.multiprogram.share_temporal_metadata`).

    ``config_params`` carries the call-time parameters of a parameterised
    configuration — every core's stack is built from the same
    ``(configuration, config_params)`` pair, exactly as a
    :class:`RunSpec`'s is — so parameterised configurations (e.g. the
    replacement study's capped policies) run multiprogrammed and hash
    distinctly per variant.  Like :class:`RunSpec`, the
    ``max_accesses_per_core`` cap — figure 16's call-time parameter — is
    part of the hash, so truncated and full runs occupy distinct store
    entries.
    """

    workloads: tuple
    configuration: str
    system: tuple
    trace_overrides: tuple
    warmup_fraction: float = 0.4
    max_accesses_per_core: int | None = None
    share_metadata: bool = True
    config_params: tuple = ()
    #: (name, digest) pairs of any ``trace:`` files among the per-core
    #: workloads, captured at creation time (see :class:`RunSpec`).
    trace_digests: tuple = ()

    @classmethod
    def create(
        cls,
        workloads: Sequence[str],
        configuration: str,
        system: SystemConfig,
        trace_overrides: Mapping | None = None,
        warmup_fraction: float = 0.4,
        max_accesses_per_core: int | None = None,
        share_metadata: bool = True,
        config_params: Mapping | None = None,
    ) -> "MultiProgramSpec":
        """Build a canonical multiprogram spec from mutable inputs."""

        return cls(
            workloads=tuple(workloads),
            configuration=configuration,
            system=_freeze(asdict(system)),
            trace_overrides=_freeze(dict(trace_overrides or {})),
            warmup_fraction=warmup_fraction,
            max_accesses_per_core=max_accesses_per_core,
            share_metadata=share_metadata,
            config_params=_freeze(dict(config_params or {})),
            trace_digests=_freeze(_trace_digests(workloads)),
        )

    def as_dict(self) -> dict:
        """JSON-serialisable canonical form (also stored alongside results).

        ``trace_digests`` content-addresses any ``trace:`` workloads among
        the per-core streams, exactly as :meth:`RunSpec.as_dict` does.
        """

        data = {
            "kind": "multiprogram",
            "workloads": list(self.workloads),
            "configuration": self.configuration,
            "config_params": self.config_params_dict(),
            "system": _thaw(self.system),
            "trace_overrides": self.trace_overrides_dict(),
            "warmup_fraction": self.warmup_fraction,
            "max_accesses_per_core": self.max_accesses_per_core,
            "share_metadata": self.share_metadata,
        }
        digests = self.trace_digests_dict()
        if digests:
            data["trace_digests"] = digests
        return data


# Traces are regenerated deterministically, so each process (the parent's
# serial path and every pool worker alike) memoises them: a matrix runs each
# workload under many configurations against the same trace.  This is the
# single per-process trace memo; the runner's ``trace_for`` delegates here.
_TRACE_MEMO: dict[tuple, object] = {}


def trace_for_workload(workload: str, overrides: Mapping | None = None):
    """The (memoised) trace for a workload under the given overrides.

    ``trace:`` workloads memoise under their file's *content digest* too,
    so rewriting a trace file mid-process (a re-record, a re-import) can
    never replay the previously loaded stream against a spec whose hash
    already reflects the new bytes.
    """

    from repro.workloads.registry import generate_workload

    key = (workload, _freeze(dict(overrides or {})))
    if workload.startswith("trace:"):
        key = key + tuple(sorted(_trace_digests([workload]).items()))
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = generate_workload(workload, **dict(overrides or {}))
        _TRACE_MEMO[key] = trace
    return trace


def _trace_for_spec(spec: "RunSpec"):
    return trace_for_workload(spec.workload, spec.trace_overrides_dict())


def clear_trace_memo() -> None:
    """Drop every memoised trace (tests and cache-clearing paths)."""

    _TRACE_MEMO.clear()


def _build_simulator(spec: "RunSpec", system: SystemConfig | None = None):
    """A fresh simulator for one spec (hierarchy + prefetchers + timing).

    Shared by the sequential execute path and every shard worker: the
    simulator a shard replays its window on must be built exactly the way
    the sequential run's is, or the parity contract is meaningless.
    """

    # Imported here (not at module top) to keep spec hashing importable
    # without dragging in the whole simulator, and to avoid an import cycle
    # with the configuration registry.
    from repro.experiments.configs import build_prefetchers
    from repro.sim.engine import Simulator
    from repro.sim.timing import TimingModel

    if system is None:
        system = spec.system_config()
    prefetchers = build_prefetchers(
        spec.configuration, system, params=spec.config_params_dict() or None
    )
    return Simulator(
        system.build_hierarchy(),
        prefetchers,
        timing=TimingModel(system.timing),
        config=system,
        configuration_name=spec.configuration,
    )


def shard_plan_for_spec(spec: "RunSpec", trace=None):
    """The :class:`~repro.sim.shard.ShardPlan` this spec's replay uses.

    The warm-up length and access cap are derived exactly as the sequential
    execute path derives them, so the plan's sampled region is the region
    the sequential kernel samples.  ``trace`` lets a caller that already
    loaded the stream skip a second (memoised) load.
    """

    from repro.sim.shard import plan_shards

    if trace is None:
        trace = _trace_for_spec(spec)
    return plan_shards(
        total_accesses=len(trace),
        warmup_accesses=int(len(trace) * spec.warmup_fraction),
        shards=spec.shards,
        overlap=spec.shard_overlap,
        max_accesses=spec.max_accesses,
    )


def _require_sharded_kernel(kernel: str | None) -> None:
    """Reject the reference kernel for sharded replay, loudly and early."""

    from repro.sim.kernel import resolve_kernel

    if resolve_kernel(kernel) == "reference":
        raise ValueError(
            "sharded replay (shards > 1) runs on the fast kernel only; "
            "drop --kernel reference or run with --shards 1"
        )


def execute_spec_shard(spec: RunSpec, shard_index: int, kernel: str | None = None):
    """Replay one shard window of a spec (the pool workers' entry point).

    Like :func:`execute_spec`, everything is rebuilt from the pickled spec
    — the worker recomputes the (deterministic) plan and replays window
    ``shard_index`` on a fresh simulator.  Returns the picklable
    :class:`~repro.sim.shard.ShardOutcome` the parent merges.
    """

    from repro.sim.kernel import run_fast_window

    _require_sharded_kernel(kernel)
    spec._verify_trace_digests([spec.workload])
    trace = _trace_for_spec(spec)
    plan = shard_plan_for_spec(spec, trace)
    if not 0 <= shard_index < plan.shard_count:
        raise ValueError(
            f"shard index {shard_index} out of range for a "
            f"{plan.shard_count}-shard plan"
        )
    return run_fast_window(
        _build_simulator(spec),
        trace,
        plan.windows[shard_index],
        workload_name=spec.workload,
    )


def execute_spec(spec: RunSpec, trace=None, kernel: str | None = None) -> SimulationStats:
    """Run the simulation a spec describes and return its statistics.

    This is the worker function of :mod:`repro.experiments.parallel`: it
    builds everything — trace, hierarchy, prefetchers, timing model — from
    the spec alone, so it can run in a fresh process.  ``trace`` lets an
    in-process caller reuse an already-generated trace.  Either way this is
    the *single* place a spec becomes a run — every prefetcher stack
    resolves through the configuration registry — so serial and pool
    results can never diverge.

    ``kernel`` picks the execution kernel (``"fast"`` by default; see
    :mod:`repro.sim.kernel`).  The kernels produce bit-identical
    statistics, so the choice is deliberately *not* part of the spec or of
    its store key.  Sharding, by contrast, *is* spec state: a spec with
    ``shards > 1`` replays its plan's windows — serially here (the batch
    executor fans the same windows out to pool workers instead when it
    can) — and merges them with
    :func:`repro.sim.shard.merge_shard_outcomes`, which is what keeps the
    serial and pooled sharded paths byte-identical.
    """

    from repro.sim.kernel import resolve_kernel, run_simulation

    kernel_name = resolve_kernel(kernel)
    system = spec.system_config()
    spec._verify_trace_digests([spec.workload])
    if trace is None:
        trace = _trace_for_spec(spec)
    if spec.shards > 1:
        _require_sharded_kernel(kernel_name)
        plan = shard_plan_for_spec(spec, trace)
        if plan.shard_count > 1:
            from repro.sim.kernel import run_fast_window
            from repro.sim.shard import merge_shard_outcomes

            outcomes = [
                run_fast_window(
                    _build_simulator(spec, system),
                    trace,
                    window,
                    workload_name=spec.workload,
                )
                for window in plan.windows
            ]
            return merge_shard_outcomes(outcomes)
    simulator = _build_simulator(spec, system)
    warmup = int(len(trace) * spec.warmup_fraction)
    result = run_simulation(
        simulator,
        trace,
        # A degenerate plan (K=1, or K > sampled accesses) IS sequential
        # replay: run it as such so the result is trivially bit-identical.
        kernel="fast" if kernel_name == "fast-sharded" else kernel_name,
        max_accesses=spec.max_accesses,
        workload_name=spec.workload,
        warmup_accesses=warmup,
    )
    return result.stats


def execute_multiprogram_spec(spec: MultiProgramSpec, kernel: str | None = None):
    """Run the multiprogrammed simulation a spec describes.

    The multiprogram analogue of :func:`execute_spec`: traces, the shared
    L3/DRAM hierarchy and every core's prefetcher stack are rebuilt from the
    spec alone, so the spec can execute in a pool worker exactly as it does
    in-process.  ``kernel`` selects the execution kernel exactly as in
    :func:`execute_spec`.  Returns a
    :class:`~repro.sim.multiprogram.MultiProgramResult`.
    """

    from repro.experiments.configs import build_prefetchers
    from repro.sim.multiprogram import MultiProgramSimulator

    system = spec.system_config()
    spec._verify_trace_digests(spec.workloads)
    overrides = spec.trace_overrides_dict()
    traces = [trace_for_workload(workload, overrides) for workload in spec.workloads]
    simulator = MultiProgramSimulator(
        system,
        prefetcher_factory=lambda: build_prefetchers(
            spec.configuration, system, params=spec.config_params_dict() or None
        ),
        num_cores=len(spec.workloads),
        configuration_name=spec.configuration,
        share_metadata=spec.share_metadata,
    )
    shortest = min(len(trace) for trace in traces)
    cap = spec.max_accesses_per_core
    warmup = int((cap if cap is not None else shortest) * spec.warmup_fraction)
    return simulator.run(
        traces,
        workload_names=list(spec.workloads),
        max_accesses_per_core=cap,
        warmup_accesses_per_core=warmup,
        kernel=kernel,
    )


def execute(spec, kernel: str | None = None):
    """Run any spec kind (the batch executor's single worker entry point)."""

    if isinstance(spec, MultiProgramSpec):
        return execute_multiprogram_spec(spec, kernel=kernel)
    return execute_spec(spec, kernel=kernel)
