"""Batch execution of run specs: the one-shot front on the scheduling core.

The :class:`BatchExecutor` is the middle layer between the experiment runner
(and the figure harness) and the simulator: callers declare every simulation
they need — single-core (workload × configuration) cells as
:class:`~repro.experiments.jobs.RunSpec` and multiprogrammed pairs as
:class:`~repro.experiments.jobs.MultiProgramSpec` — and submit the whole
batch, freely mixed, at once.

Since the service layer landed, the executor no longer owns a scheduling
implementation of its own: each ``run()`` is one job on a private
:class:`~repro.service.scheduler.Scheduler`, so the CLI's one-shot path and
the ``repro serve`` daemon exercise the same core.  The semantics are
unchanged:

1. the batch is deduplicated (figures share most of their cells),
2. what the :class:`~repro.experiments.store.ResultStore` holds replays,
3. misses run — in the submitting flow when ``jobs == 1``, otherwise on a
   process-pool backend whose workers rebuild everything from the pickled
   spec (see :func:`~repro.experiments.jobs.execute`); a sharded
   :class:`RunSpec` (``shards > 1``) fans out as one task per trace window,
   merged in shard order, and
4. fresh results persist the moment they complete, so later batches,
   processes and benchmark sessions skip them.

Results are deterministic regardless of ``jobs``: every simulation is
independent and seeded, so where a spec executes cannot change its result.

This module also owns :func:`resolve_jobs` and :func:`resolve_shards` — the
single validation point for the ``REPRO_JOBS``/``REPRO_SHARDS`` environment
overrides, so a typo'd value renders as a one-line CLI error instead of a
traceback from deep inside the executor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.experiments.jobs import execute, execute_spec_shard  # noqa: F401
from repro.experiments.store import Result, ResultStore, Spec

# ``execute``/``execute_spec_shard`` are re-exported on purpose: this module
# is the scheduling layer's patch point for counting or faking executions
# (the scheduler resolves both through this namespace when it builds tasks).

#: Environment variable supplying a default worker count for entry points
#: that take one (the CLI's ``--jobs``, the benchmark harness).
JOBS_ENV = "REPRO_JOBS"


def _positive_count(value, what: str) -> int:
    """Validate one worker/shard count (already int-typed or int-like)."""

    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{what}: expected an integer, got {value!r}") from None
    if count < 1:
        raise ValueError(f"{what}: must be at least 1, got {count}")
    return count


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count for an invocation: explicit value, then env, then 1.

    The one place ``REPRO_JOBS`` is read, so a malformed value fails here
    with a ``ValueError`` naming the variable (the CLI renders that as a
    one-line exit-2 error) rather than as a traceback once a pool spawns.
    """

    if jobs is not None:
        return _positive_count(jobs, "--jobs")
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    return _positive_count(raw, f"{JOBS_ENV}={raw!r}")


def resolve_shards(shards: int | None = None) -> int:
    """The shard count for an invocation: explicit value, then env, then 1.

    The ``REPRO_SHARDS`` analogue of :func:`resolve_jobs`, lifted out of the
    CLI so the benchmark harness and programmatic callers get the same
    one-line validation.
    """

    from repro.sim.shard import SHARDS_ENV

    if shards is not None:
        return _positive_count(shards, "--shards")
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    return _positive_count(raw, f"{SHARDS_ENV}={raw!r}")


@dataclass
class BatchExecutor:
    """Runs batches of specs against an optional store, optionally in parallel.

    ``store=None`` disables persistence (every spec is executed); ``jobs``
    caps the worker processes — ``1`` keeps everything in-process, and the
    pool backend spawns workers lazily, so a fully store-satisfied batch
    never pays for processes.  ``kernel`` selects the execution kernel for
    every miss (``None`` resolves to the fast kernel, or the
    ``REPRO_KERNEL`` environment override); it travels to workers with the
    spec, and never affects results or store keys — the kernels are
    bit-identical.
    """

    store: ResultStore | None = None
    jobs: int = 1
    kernel: str | None = None
    #: Phase/provenance breakdown of the most recent ``run()`` when
    #: telemetry is enabled (``None`` otherwise).
    last_telemetry: dict | None = None

    def run(self, specs: Sequence[Spec]) -> dict[Spec, Result]:
        """Execute a batch; returns a spec → result mapping for unique specs.

        ``specs`` may mix :class:`~repro.experiments.jobs.RunSpec` and
        :class:`~repro.experiments.jobs.MultiProgramSpec` entries; each maps
        to its own result type (:class:`~repro.sim.stats.SimulationStats`
        and :class:`~repro.sim.multiprogram.MultiProgramResult`).  A failing
        spec re-raises its original exception.

        With telemetry enabled the finished job's phase breakdown — per-spec
        wall time, store hits vs executions, slow-shard skew — lands on
        :attr:`last_telemetry` (``None`` otherwise, and when disabled).
        """

        from repro.service.scheduler import Scheduler

        self.last_telemetry = None
        with Scheduler(
            store=self.store, jobs=resolve_jobs(self.jobs), kernel=self.kernel
        ) as scheduler:
            job = scheduler.submit(specs)
            job.wait()
            if obs.enabled():
                self.last_telemetry = {
                    "job": job.id,
                    "provenance": dict(job.provenance),
                    **(job.telemetry or {}),
                }
            if job._errors:
                raise job._errors[0]
            return {spec: job.results[spec] for spec in job.specs}
