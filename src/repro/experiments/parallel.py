"""Batch execution of run specs: dedupe, check the store, fan out, write back.

The :class:`BatchExecutor` is the middle layer between the experiment runner
(and the figure harness) and the simulator: callers declare every
(workload × configuration) cell they need as a list of
:class:`~repro.experiments.jobs.RunSpec` and submit the whole batch at once.
The executor

1. deduplicates the batch (figures share most of their cells),
2. satisfies what it can from the :class:`~repro.experiments.store.
   ResultStore`,
3. runs the misses — in-process when ``jobs == 1``, otherwise on a
   ``ProcessPoolExecutor`` whose workers rebuild everything from the picked
   spec (see :func:`~repro.experiments.jobs.execute_spec`), and
4. writes fresh results back to the store so later batches, processes and
   benchmark sessions skip them.

Results are deterministic regardless of ``jobs``: every simulation is
independent and seeded, and ``pool.map`` preserves submission order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.jobs import RunSpec, execute_spec
from repro.experiments.store import ResultStore
from repro.sim.stats import SimulationStats


@dataclass
class BatchExecutor:
    """Runs batches of specs against an optional store, optionally in parallel.

    ``store=None`` disables persistence (every spec is executed); ``jobs``
    caps the worker processes — ``1`` keeps everything in-process, which is
    also the fallback when a batch has a single miss (spawning a pool for
    one job costs more than it saves).
    """

    store: ResultStore | None = None
    jobs: int = 1

    def run(self, specs: Sequence[RunSpec]) -> dict[RunSpec, SimulationStats]:
        """Execute a batch; returns a spec → stats mapping for unique specs."""

        unique = list(dict.fromkeys(specs))
        results: dict[RunSpec, SimulationStats] = {}
        misses: list[RunSpec] = []
        for spec in unique:
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                results[spec] = cached
            else:
                misses.append(spec)

        # Results are persisted as they arrive, so an interrupt or a failing
        # cell loses only the work still in flight, never completed runs.
        def complete(spec: RunSpec, stats: SimulationStats) -> None:
            results[spec] = stats
            if self.store is not None:
                self.store.put(spec, stats)

        if self.jobs > 1 and len(misses) > 1:
            workers = min(self.jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(execute_spec, spec): spec for spec in misses}
                for future in as_completed(futures):
                    complete(futures[future], future.result())
        else:
            for spec in misses:
                complete(spec, execute_spec(spec))
        return results
