"""Batch execution of run specs: dedupe, check the store, fan out, write back.

The :class:`BatchExecutor` is the middle layer between the experiment runner
(and the figure harness) and the simulator: callers declare every simulation
they need — single-core (workload × configuration) cells as
:class:`~repro.experiments.jobs.RunSpec` and multiprogrammed pairs as
:class:`~repro.experiments.jobs.MultiProgramSpec` — and submit the whole
batch, freely mixed, at once.  The executor

1. deduplicates the batch (figures share most of their cells),
2. satisfies what it can from the :class:`~repro.experiments.store.
   ResultStore` (which round-trips both result kinds),
3. runs the misses — in-process when ``jobs == 1``, otherwise on a
   ``ProcessPoolExecutor`` whose workers rebuild everything from the pickled
   spec (see :func:`~repro.experiments.jobs.execute`, which dispatches on
   the spec kind); a sharded :class:`RunSpec` (``shards > 1``) fans out as
   one pool task per trace window, scheduled alongside every other miss,
   and its outcomes are merged in shard order as they arrive, and
4. writes fresh results back to the store so later batches, processes and
   benchmark sessions skip them.

Results are deterministic regardless of ``jobs``: every simulation is
independent and seeded, so where a spec executes cannot change its result.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro.experiments.jobs import (
    RunSpec,
    execute,
    execute_spec_shard,
    shard_plan_for_spec,
)
from repro.experiments.store import Result, ResultStore, Spec


@dataclass
class BatchExecutor:
    """Runs batches of specs against an optional store, optionally in parallel.

    ``store=None`` disables persistence (every spec is executed); ``jobs``
    caps the worker processes — ``1`` keeps everything in-process, which is
    also the fallback when a batch has a single miss (spawning a pool for
    one job costs more than it saves).  ``kernel`` selects the execution
    kernel for every miss (``None`` resolves to the fast kernel, or the
    ``REPRO_KERNEL`` environment override); it travels to pool workers with
    the spec, and never affects results or store keys — both kernels are
    bit-identical.
    """

    store: ResultStore | None = None
    jobs: int = 1
    kernel: str | None = None

    def run(self, specs: Sequence[Spec]) -> dict[Spec, Result]:
        """Execute a batch; returns a spec → result mapping for unique specs.

        ``specs`` may mix :class:`~repro.experiments.jobs.RunSpec` and
        :class:`~repro.experiments.jobs.MultiProgramSpec` entries; each maps
        to its own result type (:class:`~repro.sim.stats.SimulationStats`
        and :class:`~repro.sim.multiprogram.MultiProgramResult`).
        """

        unique = list(dict.fromkeys(specs))
        results: dict[Spec, Result] = {}
        misses: list[Spec] = []
        for spec in unique:
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                results[spec] = cached
            else:
                misses.append(spec)

        # Results are persisted as they arrive, so an interrupt or a failing
        # cell loses only the work still in flight, never completed runs.
        def complete(spec: Spec, result: Result) -> None:
            """Record one finished run and persist it immediately."""

            results[spec] = result
            if self.store is not None:
                self.store.put(spec, result)

        run_one = partial(execute, kernel=self.kernel)

        # A sharded RunSpec is one store entry but many units of pool work:
        # when a pool is in play, its plan's windows become sibling tasks so
        # the shards of one spec run alongside other specs' cells instead of
        # serialising behind them.  Serial execution leaves the spec whole —
        # execute_spec replays the same windows in-process and merges them
        # the same way, so both paths return byte-identical results.
        tasks: list[tuple[Spec, int | None]] = []
        shard_totals: dict[Spec, int] = {}
        for spec in misses:
            expanded = False
            if self.jobs > 1 and isinstance(spec, RunSpec) and spec.shards > 1:
                plan = shard_plan_for_spec(spec)
                if plan.shard_count > 1:
                    shard_totals[spec] = plan.shard_count
                    tasks.extend((spec, index) for index in range(plan.shard_count))
                    expanded = True
            if not expanded:
                tasks.append((spec, None))

        if self.jobs > 1 and len(tasks) > 1:
            from repro.sim.shard import merge_shard_outcomes

            partial_outcomes: dict[Spec, dict[int, object]] = {}
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for spec, index in tasks:
                    if index is None:
                        futures[pool.submit(run_one, spec)] = (spec, None)
                    else:
                        futures[
                            pool.submit(execute_spec_shard, spec, index, self.kernel)
                        ] = (spec, index)
                for future in as_completed(futures):
                    spec, index = futures[future]
                    if index is None:
                        complete(spec, future.result())
                        continue
                    shards = partial_outcomes.setdefault(spec, {})
                    shards[index] = future.result()
                    if len(shards) == shard_totals[spec]:
                        # Merge strictly in shard order: the merge is
                        # order-sensitive (endpoint clocks come from the
                        # first and last windows), and arrival order is not.
                        complete(
                            spec,
                            merge_shard_outcomes(
                                [shards[i] for i in range(len(shards))]
                            ),
                        )
        else:
            for spec, _ in tasks:
                complete(spec, run_one(spec))
        return results
