"""The experiment runner: (workload × configuration) matrices with caching.

Figures 10-15 all plot the same underlying runs (one per workload per
configuration), just through different metrics.  The runner therefore caches
completed runs — keyed by workload, configuration, system and trace length —
so the first figure's benchmark pays for the simulations and the rest reuse
them.  Traces are cached too, since generation is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.metrics import add_geomean_row, normalize_against_baseline
from repro.experiments.configs import ALL_CONFIGS, ConfigFactory, build_prefetchers
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.multiprogram import MultiProgramResult, MultiProgramSimulator
from repro.sim.stats import SimulationStats
from repro.sim.timing import TimingModel
from repro.workloads.registry import generate_workload
from repro.workloads.trace import Trace

# Module-level caches shared by every runner instance in the process, so that
# successive benchmark modules (fig. 10, fig. 11, ...) reuse each other's runs.
_TRACE_CACHE: dict[tuple, Trace] = {}
_RUN_CACHE: dict[tuple, SimulationStats] = {}


def clear_caches() -> None:
    """Drop all cached traces and runs (used by tests)."""

    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()


@dataclass
class ExperimentRunner:
    """Runs named workloads against named configurations on one system."""

    system: SystemConfig = field(default_factory=SystemConfig.scaled)
    max_accesses: int | None = None
    trace_overrides: dict = field(default_factory=dict)
    use_cache: bool = True
    #: fraction of each trace used to warm caches and prefetcher state before
    #: statistics are collected — the scaled analogue of the paper's
    #: 50M-instruction warm-up per 5M-instruction sample (which is 10x the
    #: sample length; shorter here to keep simulation time reasonable).
    warmup_fraction: float = 0.4

    # -- traces -------------------------------------------------------------
    def trace_for(self, workload: str) -> Trace:
        key = (workload, tuple(sorted(self.trace_overrides.items())))
        if self.use_cache and key in _TRACE_CACHE:
            return _TRACE_CACHE[key]
        trace = generate_workload(workload, **self.trace_overrides)
        if self.use_cache:
            _TRACE_CACHE[key] = trace
        return trace

    # -- single runs --------------------------------------------------------
    def run(
        self,
        workload: str,
        configuration: str,
        extra_factory: ConfigFactory | None = None,
    ) -> SimulationStats:
        """Run one workload under one configuration and return its stats.

        ``extra_factory`` allows running a configuration that is not in the
        global registry (used by the ablation and replacement studies, whose
        configurations are parameterised at call time).
        """

        key = (
            workload,
            configuration,
            self.system.name,
            self.max_accesses,
            self.warmup_fraction,
            tuple(sorted(self.trace_overrides.items())),
        )
        if self.use_cache and key in _RUN_CACHE:
            return _RUN_CACHE[key]

        trace = self.trace_for(workload)
        hierarchy = self.system.build_hierarchy()
        if extra_factory is not None:
            prefetchers = extra_factory(self.system)
        else:
            prefetchers = build_prefetchers(configuration, self.system)
        simulator = Simulator(
            hierarchy,
            prefetchers,
            timing=TimingModel(self.system.timing),
            config=self.system,
            configuration_name=configuration,
        )
        warmup = int(len(trace) * self.warmup_fraction)
        result = simulator.run(
            trace,
            max_accesses=self.max_accesses,
            workload_name=workload,
            warmup_accesses=warmup,
        )
        stats = result.stats
        if self.use_cache:
            _RUN_CACHE[key] = stats
        return stats

    # -- matrices -------------------------------------------------------------
    def run_matrix(
        self,
        workloads: Sequence[str],
        configurations: Sequence[str],
        extra_factories: Mapping[str, ConfigFactory] | None = None,
    ) -> dict[str, dict[str, SimulationStats]]:
        """Run every (workload × configuration) pair; return stats per cell."""

        extra_factories = dict(extra_factories or {})
        results: dict[str, dict[str, SimulationStats]] = {}
        for workload in workloads:
            results[workload] = {}
            for configuration in configurations:
                factory = extra_factories.get(configuration)
                if factory is None and configuration not in ALL_CONFIGS:
                    raise ValueError(f"unknown configuration {configuration!r}")
                results[workload][configuration] = self.run(
                    workload, configuration, extra_factory=factory
                )
        return results

    def normalized_matrix(
        self,
        workloads: Sequence[str],
        configurations: Sequence[str],
        metric: str,
        baseline_config: str = "baseline",
        include_geomean: bool = True,
        extra_factories: Mapping[str, ConfigFactory] | None = None,
    ) -> dict[str, dict[str, float]]:
        """Run the matrix and reduce it to one normalised metric per cell."""

        run_configs = list(configurations)
        if baseline_config not in run_configs:
            run_configs = [baseline_config] + run_configs
        results = self.run_matrix(workloads, run_configs, extra_factories)
        table = normalize_against_baseline(results, metric, baseline_config)
        for per_config in table.values():
            per_config.pop(baseline_config, None)
        if include_geomean:
            table = add_geomean_row(table)
        return table

    # -- multiprogrammed runs ---------------------------------------------------
    def run_multiprogram(
        self,
        pair: Sequence[str],
        configuration: str,
        max_accesses_per_core: int | None = None,
    ) -> MultiProgramResult:
        """Run a workload pair on two cores sharing the L3 and DRAM."""

        factory = ALL_CONFIGS.get(configuration)
        if factory is None:
            raise ValueError(f"unknown configuration {configuration!r}")
        simulator = MultiProgramSimulator(
            self.system,
            prefetcher_factory=lambda: factory(self.system),
            num_cores=len(pair),
            configuration_name=configuration,
        )
        traces = [self.trace_for(workload) for workload in pair]
        shortest = min(len(trace) for trace in traces)
        warmup = int(
            (max_accesses_per_core if max_accesses_per_core is not None else shortest)
            * self.warmup_fraction
        )
        return simulator.run(
            traces,
            workload_names=list(pair),
            max_accesses_per_core=max_accesses_per_core,
            warmup_accesses_per_core=warmup,
        )
