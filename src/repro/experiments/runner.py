"""The experiment runner: (workload × configuration) matrices of simulations.

Execution flows through three layers (spec → executor → store):

* every simulation is first described as an immutable spec — single-core
  cells as a :class:`~repro.experiments.jobs.RunSpec` (workload,
  configuration, call-time configuration parameters, full system
  parameters, trace overrides, warm-up, access cap) and multiprogrammed
  pairs as a :class:`~repro.experiments.jobs.MultiProgramSpec`;
* :meth:`ExperimentRunner.run_matrix` (and
  :meth:`ExperimentRunner.submit`, which also accepts multiprogram specs)
  submits whole batches to a
  :class:`~repro.experiments.parallel.BatchExecutor`, which dedupes specs,
  satisfies what it can from the store, and runs the misses — in parallel
  worker processes when ``jobs > 1``;
* completed runs land in the persistent
  :class:`~repro.experiments.store.ResultStore` under ``.repro_cache/``
  (keyed by spec content hash + code-version salt), so figures 10-15 — which
  all plot the same underlying runs — share work, and *later processes*
  (benchmark sessions, CLI invocations) skip completed simulations entirely.

Every configuration is resolved through the unified
:data:`~repro.experiments.configs.CONFIGS` registry, in which each entry
uniformly accepts (possibly empty) call-time parameters; the parameters
fold into the spec, so *every* run — the replacement study's capped
variants included — persists and parallelises identically.  Traces are
memoised per process, since generation is deterministic and cheap relative
to simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.metrics import add_geomean_row, normalize_against_baseline
from repro.experiments.configs import CONFIGS
from repro.experiments.jobs import (
    MultiProgramSpec,
    RunSpec,
    trace_for_workload,
)
from repro.experiments.jobs import clear_trace_memo as jobs_clear_trace_memo
from repro.experiments.parallel import BatchExecutor
from repro.experiments.store import Result, ResultStore, Spec, default_store
from repro.sim.config import SystemConfig
from repro.sim.multiprogram import MultiProgramResult
from repro.sim.stats import SimulationStats
from repro.workloads.registry import generate_workload
from repro.workloads.trace import Trace


def clear_caches() -> None:
    """Drop the process-local trace memo *and* the persistent default store."""

    jobs_clear_trace_memo()
    default_store().clear()


@dataclass
class ExperimentRunner:
    """Runs named workloads against named configurations on one system."""

    system: SystemConfig = field(default_factory=SystemConfig.scaled)
    max_accesses: int | None = None
    trace_overrides: dict = field(default_factory=dict)
    use_cache: bool = True
    #: fraction of each trace used to warm caches and prefetcher state before
    #: statistics are collected — the scaled analogue of the paper's
    #: 50M-instruction warm-up per 5M-instruction sample (which is 10x the
    #: sample length; shorter here to keep simulation time reasonable).
    warmup_fraction: float = 0.4
    #: worker processes for batch execution; 1 keeps everything in-process.
    jobs: int = 1
    #: result store; ``None`` means the process-wide default store.
    store: ResultStore | None = None
    #: execution kernel for simulations this runner launches; ``None``
    #: resolves to the fast kernel (or the ``REPRO_KERNEL`` environment
    #: override) — see :mod:`repro.sim.kernel`.  Never part of results.
    kernel: str | None = None
    #: trace-window shards per single-core run (see :mod:`repro.sim.shard`);
    #: 1 is sequential replay.  Unlike the kernel, sharding *is* part of a
    #: spec's identity when ``shards > 1``, so sharded and sequential runs
    #: never share a store entry.
    shards: int = 1
    #: warm-up overlap policy for sharded replay: ``"warmup"`` (each shard
    #: re-replays a warm-up-length slice of its predecessor's tail),
    #: ``"full"`` (each shard replays the whole sequential prefix —
    #: bit-identical to unsharded replay), or an explicit access count.
    shard_overlap: int | str = "warmup"

    # -- the spec → executor → store plumbing --------------------------------
    def spec_for(
        self,
        workload: str,
        configuration: str,
        config_params: Mapping | None = None,
    ) -> RunSpec:
        """The immutable spec describing one single-core cell under this runner.

        ``config_params`` carries the call-time parameters of a
        parameterised configuration; they become part of the spec's identity
        (and hence the store key).
        """

        return RunSpec.create(
            workload=workload,
            configuration=configuration,
            system=self.system,
            trace_overrides=self.trace_overrides,
            warmup_fraction=self.warmup_fraction,
            max_accesses=self.max_accesses,
            config_params=config_params,
            shards=self.shards,
            shard_overlap=self.shard_overlap,
        )

    def multiprogram_spec_for(
        self,
        workloads: Sequence[str],
        configuration: str,
        max_accesses_per_core: int | None = None,
        share_metadata: bool = True,
        config_params: Mapping | None = None,
    ) -> MultiProgramSpec:
        """The immutable spec describing one multiprogrammed run.

        ``config_params`` parameterises the configuration every core runs,
        exactly as :meth:`spec_for` does for single-core cells.
        """

        if configuration not in CONFIGS:
            raise ValueError(f"unknown configuration {configuration!r}")
        if self.shards > 1:
            # Sharded replay splits a single core's trace; a multiprogrammed
            # run interleaves cores through one shared L3/DRAM, so its
            # timeline has no independent windows to shard.
            raise ValueError("--shards does not apply to multiprogrammed runs")
        return MultiProgramSpec.create(
            workloads=workloads,
            configuration=configuration,
            system=self.system,
            trace_overrides=self.trace_overrides,
            warmup_fraction=self.warmup_fraction,
            max_accesses_per_core=max_accesses_per_core,
            share_metadata=share_metadata,
            config_params=config_params,
        )

    def _store(self) -> ResultStore | None:
        if not self.use_cache:
            return None
        return self.store if self.store is not None else default_store()

    def _executor(self) -> BatchExecutor:
        return BatchExecutor(store=self._store(), jobs=self.jobs, kernel=self.kernel)

    def submit(self, specs: Sequence[Spec]) -> dict[Spec, Result]:
        """Batch-run arbitrary specs (both kinds) through executor and store."""

        return self._executor().run(specs)

    # -- traces -------------------------------------------------------------
    def trace_for(self, workload: str) -> Trace:
        """The (memoised) trace for a workload under this runner's overrides."""

        if not self.use_cache:
            return generate_workload(workload, **self.trace_overrides)
        return trace_for_workload(workload, self.trace_overrides)

    # -- single runs --------------------------------------------------------
    def run(
        self,
        workload: str,
        configuration: str,
        config_params: Mapping | None = None,
    ) -> SimulationStats:
        """Run one workload under one configuration and return its stats.

        ``config_params`` parameterises the configuration's builder (for
        registry entries that take parameters, e.g. the replacement study's
        ``max_entries``); such runs flow through the executor and persist
        like any other.
        """

        spec = self.spec_for(workload, configuration, config_params)
        return self.submit([spec])[spec]

    # -- matrices -------------------------------------------------------------
    def run_matrix(
        self,
        workloads: Sequence[str],
        configurations: Sequence[str],
        config_params: Mapping | None = None,
    ) -> dict[str, dict[str, SimulationStats]]:
        """Run every (workload × configuration) pair; return stats per cell.

        The full matrix is declared up front and submitted as one batch, so
        the executor can dedupe it, replay completed cells from the store,
        and run the rest in parallel.  ``config_params`` applies to every
        configuration in ``configurations`` that takes parameters (plain
        registry configurations ignore it).
        """

        cell_specs: dict[tuple[str, str], RunSpec] = {}
        for configuration in configurations:
            params = config_params if CONFIGS.takes_params(configuration) else None
            for workload in workloads:
                cell_specs[(workload, configuration)] = self.spec_for(
                    workload, configuration, params
                )
        batch = self._executor().run(list(cell_specs.values()))

        return {
            workload: {
                configuration: batch[cell_specs[(workload, configuration)]]
                for configuration in configurations
            }
            for workload in workloads
        }

    def normalized_matrix(
        self,
        workloads: Sequence[str],
        configurations: Sequence[str],
        metric: str,
        baseline_config: str = "baseline",
        include_geomean: bool = True,
        config_params: Mapping | None = None,
    ) -> dict[str, dict[str, float]]:
        """Run the matrix and reduce it to one normalised metric per cell."""

        run_configs = list(configurations)
        if baseline_config not in run_configs:
            run_configs = [baseline_config] + run_configs
        results = self.run_matrix(workloads, run_configs, config_params)
        table = normalize_against_baseline(results, metric, baseline_config)
        for per_config in table.values():
            per_config.pop(baseline_config, None)
        if include_geomean:
            table = add_geomean_row(table)
        return table

    # -- multiprogrammed runs ---------------------------------------------------
    def run_multiprogram(
        self,
        pair: Sequence[str],
        configuration: str,
        max_accesses_per_core: int | None = None,
        config_params: Mapping | None = None,
    ) -> MultiProgramResult:
        """Run a workload pair on two cores sharing the L3 and DRAM.

        The run is described by a
        :class:`~repro.experiments.jobs.MultiProgramSpec` and flows through
        the executor and persistent store like every other simulation, so a
        repeated pair (within this process or a later one) replays instead
        of re-simulating.  ``config_params`` parameterises the configuration
        on every core.
        """

        spec = self.multiprogram_spec_for(
            pair, configuration, max_accesses_per_core, config_params=config_params
        )
        return self.submit([spec])[spec]
