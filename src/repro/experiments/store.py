"""Persistent, process-shared storage for completed simulation results.

The store is a JSON-lines file under a cache directory (``.repro_cache/`` by
default, overridable with the ``REPRO_CACHE_DIR`` environment variable or
per-store).  Each record holds a :class:`~repro.experiments.jobs.RunSpec`
content hash, the spec's canonical form (for inspection), and the raw
:class:`~repro.sim.stats.SimulationStats` counters.  Because the key hashes
every spec field *plus* a code-version salt, a store can be shared freely
between processes, benchmark sessions and CLI invocations: a stale entry can
never be replayed, it simply stops being found.

Appends of single JSON lines are atomic enough for the way the store is
written (the batch executor writes results from the parent process only), and
on load the *last* record for a key wins, so concurrent benchmark sessions
sharing one directory degrade to harmless duplicate work rather than
corruption.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.jobs import RunSpec, code_version
from repro.sim.stats import SimulationStats

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory used when neither the env var nor an explicit path is given.
DEFAULT_CACHE_DIR = ".repro_cache"

_RESULTS_FILENAME = "results.jsonl"


def stats_to_payload(stats: SimulationStats) -> dict:
    """Flatten stats to a JSON-safe dict (exact float round-trip)."""

    from dataclasses import asdict

    return asdict(stats)


def stats_from_payload(payload: dict) -> SimulationStats:
    return SimulationStats(**payload)


@dataclass
class StoreStats:
    """Counters describing one store instance's traffic and contents."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    entries: int = 0
    path: str = ""

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "entries": self.entries,
            "path": self.path,
        }


@dataclass
class ResultStore:
    """On-disk result store keyed by ``RunSpec.content_hash()``.

    ``get``/``put`` keep live :class:`SimulationStats` objects in an
    in-memory index, so repeated gets within one process return the *same*
    object (preserving the old module-cache identity semantics); payloads
    read from disk are deserialised lazily, once.
    """

    directory: Path | None = None
    hits: int = 0
    misses: int = 0
    puts: int = 0
    _index: dict | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.directory is None:
            self.directory = Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))
        self.directory = Path(self.directory)

    # -- persistence --------------------------------------------------------
    @property
    def results_path(self) -> Path:
        return self.directory / _RESULTS_FILENAME

    def _load_index(self) -> dict:
        if self._index is None:
            self._index = {}
            try:
                text = self.results_path.read_text()
            except OSError:
                # Missing or unreadable store: start empty; the in-memory
                # index still gives within-process caching.
                return self._index
            current_version = code_version()
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn/partial line: skip, never crash
                key = record.get("key")
                if not key:
                    continue
                if record.get("v") != current_version:
                    # Written by a different code version: its key can never
                    # be looked up (the hash is version-salted), so skipping
                    # it bounds the index and keeps `entries` honest.
                    continue
                if record.get("deleted"):
                    self._index.pop(key, None)
                elif "stats" in record:
                    self._index[key] = record["stats"]
        return self._index

    def _append(self, record: dict) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.results_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            # Unwritable store (read-only checkout, sandbox): a completed
            # simulation must never be lost to a cache write, so degrade to
            # the in-memory index and stay quiet.
            pass

    # -- store API ----------------------------------------------------------
    def get(self, spec: RunSpec) -> SimulationStats | None:
        """Return the stored stats for a spec, or ``None`` (counts hit/miss)."""

        index = self._load_index()
        key = spec.content_hash()
        entry = index.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not isinstance(entry, SimulationStats):
            entry = stats_from_payload(entry)
            index[key] = entry
        self.hits += 1
        return entry

    def put(self, spec: RunSpec, stats: SimulationStats) -> None:
        """Persist one result (and keep the live object for in-process gets)."""

        key = spec.content_hash()
        self._append(
            {
                "key": key,
                "v": code_version(),
                "spec": spec.as_dict(),
                "stats": stats_to_payload(stats),
            }
        )
        self._load_index()[key] = stats
        self.puts += 1

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.content_hash() in self._load_index()

    def __len__(self) -> int:
        return len(self._load_index())

    def invalidate(self, spec: RunSpec) -> bool:
        """Drop one entry (tombstone record); returns whether it existed."""

        key = spec.content_hash()
        index = self._load_index()
        if key not in index:
            return False
        del index[key]
        self._append({"key": key, "v": code_version(), "deleted": True})
        return True

    def clear(self) -> int:
        """Remove every persisted result; returns how many were dropped."""

        dropped = len(self._load_index())
        self._index = {}
        try:
            self.results_path.unlink(missing_ok=True)
        except OSError:
            pass
        return dropped

    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            entries=len(self),
            path=str(self.directory),
        )


# ---------------------------------------------------------------------------
# The process-wide default store (what ExperimentRunner uses unless told
# otherwise).  Tests point it at a temporary directory; the benchmark
# harness points it at a directory shared across sessions.
# ---------------------------------------------------------------------------
_default_store: ResultStore | None = None


def default_store() -> ResultStore:
    """The lazily-created process-wide store (honours ``REPRO_CACHE_DIR``)."""

    global _default_store
    if _default_store is None:
        _default_store = ResultStore()
    return _default_store


def set_default_store(store: ResultStore | None) -> ResultStore | None:
    """Replace the process-wide store; returns the previous one."""

    global _default_store
    previous = _default_store
    _default_store = store
    return previous
