"""Persistent, process-shared storage for completed simulation results.

The store is a JSON-lines file under a cache directory (``.repro_cache/`` by
default, overridable with the ``REPRO_CACHE_DIR`` environment variable or
per-store).  Each record holds a spec content hash, the record ``kind``, the
spec's canonical form (for inspection), and the result payload.  Two record
kinds exist, one per spec type:

* ``"run"`` — a :class:`~repro.experiments.jobs.RunSpec` keyed record whose
  payload is the raw :class:`~repro.sim.stats.SimulationStats` counters
  (parameterised runs such as the replacement study are plain ``"run"``
  records whose spec carries ``config_params``);
* ``"multiprogram"`` — a :class:`~repro.experiments.jobs.MultiProgramSpec`
  keyed record whose payload is a full
  :class:`~repro.sim.multiprogram.MultiProgramResult` (per-core stats plus
  per-core prefetcher counters).

Because the key hashes every spec field *plus* a code-version salt, a store
can be shared freely between processes, benchmark sessions and CLI
invocations: a stale entry can never be replayed, it simply stops being
found.

Concurrent writers sharing one directory (parallel benchmark sessions, the
``repro serve`` daemon next to one-shot CLI runs) are safe: each append
takes an ``fcntl`` advisory lock on the JSONL file, so records from
different processes can never interleave mid-line — without the lock, a
record larger than the kernel's atomic-append window (multiprogram payloads
easily are) could tear.  On platforms without ``fcntl`` the lock degrades
to a no-op and the load path's torn-line skip remains the backstop.  On
load the *last* record for a key wins, so concurrent sessions degrade to
harmless duplicate work rather than corruption.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

try:  # pragma: no cover - import-time platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.experiments.jobs import MultiProgramSpec, RunSpec, code_version
from repro.sim.multiprogram import MultiProgramResult
from repro.sim.stats import SimulationStats

# Telemetry: store traffic counters (bumped only when telemetry is on; the
# event log additionally narrates hits and puts so `repro obs tail` shows
# cache behaviour inline with job lifecycle events).
_STORE_HITS = obs.REGISTRY.counter(
    "repro_store_hits_total", "Result-store lookups satisfied from the index."
)
_STORE_MISSES = obs.REGISTRY.counter(
    "repro_store_misses_total", "Result-store lookups that found nothing."
)
_STORE_PUTS = obs.REGISTRY.counter(
    "repro_store_puts_total", "Results persisted into the store."
)

#: Spec/result union types accepted and returned by the store.
Spec = RunSpec | MultiProgramSpec
Result = SimulationStats | MultiProgramResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory used when neither the env var nor an explicit path is given.
DEFAULT_CACHE_DIR = ".repro_cache"

_RESULTS_FILENAME = "results.jsonl"


def stats_to_payload(stats: SimulationStats) -> dict:
    """Flatten stats to a JSON-safe dict (exact float round-trip)."""

    from dataclasses import asdict

    return asdict(stats)


def stats_from_payload(payload: dict) -> SimulationStats:
    """Rebuild :class:`SimulationStats` from its stored payload."""

    return SimulationStats(**payload)


def result_to_record(result: Result) -> tuple[str, dict]:
    """Serialise any result type to its ``(kind, payload)`` record form."""

    if isinstance(result, MultiProgramResult):
        return "multiprogram", result.as_payload()
    return "run", stats_to_payload(result)


def result_from_record(kind: str, payload: dict) -> Result:
    """Deserialise a stored ``(kind, payload)`` pair back to a live result."""

    if kind == "multiprogram":
        return MultiProgramResult.from_payload(payload)
    return stats_from_payload(payload)


def _classify(kind: str, spec: dict) -> dict:
    """Display kind and listing label for one record (``label`` may be None)."""

    configuration = spec.get("configuration", "?")
    if kind == "multiprogram":
        pair = " + ".join(spec.get("workloads", []))
        return {"kind": "multiprogram", "label": f"{pair} × {configuration}"}
    if spec.get("config_params"):
        params = ", ".join(
            f"{key}={value}" for key, value in sorted(spec["config_params"].items())
        )
        return {
            "kind": "parameterised run",
            "label": f"{spec.get('workload', '?')} × {configuration} [{params}]",
        }
    return {"kind": "run", "label": None}


@dataclass
class StoreStats:
    """Counters describing one store instance's traffic and contents."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    entries: int = 0
    path: str = ""

    def as_dict(self) -> dict:
        """The counters as a flat dictionary (reports and tests)."""

        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "entries": self.entries,
            "path": self.path,
        }


@dataclass
class ResultStore:
    """On-disk result store keyed by each spec's ``content_hash()``.

    Both spec kinds share one store: ``get``/``put`` accept a
    :class:`~repro.experiments.jobs.RunSpec` or a
    :class:`~repro.experiments.jobs.MultiProgramSpec` and return the
    matching result type.  Live result objects stay in an in-memory index,
    so repeated gets within one process return the *same* object (preserving
    the old module-cache identity semantics); payloads read from disk are
    deserialised lazily, once.
    """

    directory: Path | None = None
    hits: int = 0
    misses: int = 0
    puts: int = 0
    _index: dict | None = field(default=None, repr=False)
    _meta: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.directory is None:
            self.directory = Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))
        self.directory = Path(self.directory)

    # -- persistence --------------------------------------------------------
    @property
    def results_path(self) -> Path:
        """The JSON-lines file results are appended to."""

        return self.directory / _RESULTS_FILENAME

    def _load_index(self) -> dict:
        """Read the JSONL file once and build the key → entry index."""

        if self._index is None:
            self._index = {}
            try:
                text = self.results_path.read_text()
            except OSError:
                # Missing or unreadable store: start empty; the in-memory
                # index still gives within-process caching.
                return self._index
            current_version = code_version()
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn/partial line: skip, never crash
                key = record.get("key")
                if not key:
                    continue
                if record.get("v") != current_version:
                    # Written by a different code version: its key can never
                    # be looked up (the hash is version-salted), so skipping
                    # it bounds the index and keeps `entries` honest.
                    continue
                if record.get("deleted"):
                    self._index.pop(key, None)
                    self._meta.pop(key, None)
                    continue
                # Lazy entry: (kind, payload), deserialised on first get().
                # "stats" is the pre-kind record field, kept readable so a
                # store written moments before an upgrade degrades cleanly.
                if "payload" in record:
                    entry = (record.get("kind", "run"), record["payload"])
                elif "stats" in record:
                    entry = ("run", record["stats"])
                else:
                    continue
                self._index[key] = entry
                self._meta[key] = {
                    "kind": entry[0],
                    "spec": record.get("spec") or {},
                }
        return self._index

    def _append(self, record: dict) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.results_path.open("a", encoding="utf-8") as handle:
                if fcntl is not None:
                    # Exclusive advisory lock for the duration of the write:
                    # appends from concurrent processes serialise instead of
                    # interleaving partial lines.  Released by close() even
                    # if the write raises.
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            # Unwritable store (read-only checkout, sandbox): a completed
            # simulation must never be lost to a cache write, so degrade to
            # the in-memory index and stay quiet.
            pass

    # -- store API ----------------------------------------------------------
    def get(self, spec: Spec) -> Result | None:
        """Return the stored result for a spec, or ``None`` (counts hit/miss)."""

        index = self._load_index()
        key = spec.content_hash()
        entry = index.get(key)
        if entry is None:
            self.misses += 1
            if obs.enabled():
                _STORE_MISSES.inc()
            return None
        if isinstance(entry, tuple):
            entry = result_from_record(*entry)
            index[key] = entry
        self.hits += 1
        if obs.enabled():
            _STORE_HITS.inc()
            obs.emit("store_hit", key=key[:12])
        return entry

    def put(self, spec: Spec, result: Result) -> None:
        """Persist one result (and keep the live object for in-process gets)."""

        key = spec.content_hash()
        kind, payload = result_to_record(result)
        self._append(
            {
                "key": key,
                "v": code_version(),
                "kind": kind,
                "spec": spec.as_dict(),
                "payload": payload,
            }
        )
        self._load_index()[key] = result
        self._meta[key] = {"kind": kind, "spec": spec.as_dict()}
        self.puts += 1
        if obs.enabled():
            _STORE_PUTS.inc()
            obs.emit("store_put", key=key[:12], kind=kind)

    def __contains__(self, spec: Spec) -> bool:
        """Whether the spec has a stored result (without counting hit/miss)."""

        return spec.content_hash() in self._load_index()

    def __len__(self) -> int:
        """The number of replayable results in the store."""

        return len(self._load_index())

    def invalidate(self, spec: Spec) -> bool:
        """Drop one entry (tombstone record); returns whether it existed."""

        key = spec.content_hash()
        index = self._load_index()
        if key not in index:
            return False
        del index[key]
        self._meta.pop(key, None)
        self._append({"key": key, "v": code_version(), "deleted": True})
        return True

    def clear(self) -> int:
        """Remove every persisted result; returns how many were dropped."""

        dropped = len(self._load_index())
        self._index = {}
        self._meta = {}
        try:
            self.results_path.unlink(missing_ok=True)
        except OSError:
            pass
        return dropped

    # -- inspection ---------------------------------------------------------
    def records(self) -> list[dict]:
        """Display metadata of every stored result.

        Each entry holds the display ``kind`` (``"run"`` for plain
        single-core records, ``"parameterised run"`` for single-core records
        whose spec carries ``config_params`` — e.g. the replacement study —
        and ``"multiprogram"``), a human-readable ``label`` (``None`` for
        plain runs), and the canonical ``spec``.  This is the single
        classification point ``kind_summary`` and the CLI's ``cache show``
        listing both derive from.
        """

        self._load_index()
        return [
            dict(_classify(meta["kind"], meta["spec"]), spec=meta["spec"])
            for meta in self._meta.values()
        ]

    def kind_summary(self) -> dict[str, int]:
        """Entry counts per display kind (see :meth:`records`); non-zero only."""

        counts: dict[str, int] = {}
        for meta in self.records():
            counts[meta["kind"]] = counts.get(meta["kind"], 0) + 1
        return counts

    def stats(self) -> StoreStats:
        """A snapshot of this instance's traffic counters and entry count."""

        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            entries=len(self),
            path=str(self.directory),
        )


def store_stats_payload(store: ResultStore) -> dict:
    """One store's statistics as a JSON-safe dictionary.

    The *single* machine-readable serialisation of a store: both ``repro
    cache show --json`` and the daemon's ``GET /store/stats`` return exactly
    this, so scripts never have to reconcile two shapes.  Carries the
    instance traffic counters (hits/misses/puts), the on-disk footprint,
    the per-kind entry breakdown, and the code version the entries are
    keyed under.
    """

    info = store.stats()
    try:
        size = store.results_path.stat().st_size
    except OSError:
        size = 0
    return {
        **info.as_dict(),
        "size_bytes": size,
        "kinds": store.kind_summary(),
        "code_version": code_version(),
    }


# ---------------------------------------------------------------------------
# The process-wide default store (what ExperimentRunner uses unless told
# otherwise).  Tests point it at a temporary directory; the benchmark
# harness points it at a directory shared across sessions.
# ---------------------------------------------------------------------------
_default_store: ResultStore | None = None


def default_store() -> ResultStore:
    """The lazily-created process-wide store (honours ``REPRO_CACHE_DIR``)."""

    global _default_store
    if _default_store is None:
        _default_store = ResultStore()
    return _default_store


def set_default_store(store: ResultStore | None) -> ResultStore | None:
    """Replace the process-wide store; returns the previous one."""

    global _default_store
    previous = _default_store
    _default_store = store
    return previous
