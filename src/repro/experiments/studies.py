"""Every figure and table of the evaluation, declared as a :class:`Study`.

This module is the catalogue: each entry in :data:`STUDIES` names one
experiment — its workloads, configurations (with call-time parameters),
system axis, metric and reducer — and the spec/executor/store pipeline does
the rest.  The legacy ``figure_N`` entry points in
:mod:`repro.experiments.figures` are thin wrappers over these declarations,
and the ``repro study`` CLI runs them (with axis overrides) directly.

To define a new study, declare it here (or register your own at runtime)::

    STUDIES.register(Study.create(
        name="triangel-scale-sweep",
        figure="Custom",
        title="Triangel speedup at half system scale",
        workloads=SPEC_WORKLOADS,
        configurations=("triangel",),
        metric="speedup",
        scale=0.5,
    ))

Every axis is also overridable from the CLI without any new code::

    repro study run fig10 --workloads mcf,astar --configs triangel
    repro study run replacement-study --set max_entries=2048
    repro study run fig10 --set scale=0.5

The workload axis accepts on-disk traces alongside the generated
workloads: any recorded or imported ``.rtrc`` file on the trace search
path (see :mod:`repro.traces` and ``repro trace``) is a ``trace:<name>``
workload, so ``repro study run fig10 --workloads trace:leela`` runs an
existing study over an external trace — persisted in the store under the
file's content digest like every other run.
"""

from __future__ import annotations

from repro.experiments.configs import (
    ABLATION_LADDER,
    ENERGY_SERIES,
    MAIN_SERIES,
    METADATA_FORMAT_CONFIGS,
    MULTIPROGRAM_SERIES,
    REPLACEMENT_POLICIES,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.study import (
    FigureResult,
    Study,
    StudyRegistry,
    no_specs,
    register_reducer,
)
from repro.workloads.registry import (
    GRAPH500_WORKLOADS,
    MULTIPROGRAM_PAIRS,
    SPEC_WORKLOADS,
)

# ---------------------------------------------------------------------------
# Analytic reducers (tables 1 and 2): no simulations, data from the models
# ---------------------------------------------------------------------------
def structure_sizes_result(config=None) -> FigureResult:
    """Table 1's result: Triangel's dedicated-storage budget (unrendered)."""

    from repro.core.config import (
        total_dedicated_storage_bytes,
        triangel_structure_sizes,
    )

    sizes = triangel_structure_sizes(config)
    table = {
        size.name: {"entries": float(size.entries), "bytes": size.bytes} for size in sizes
    }
    total = total_dedicated_storage_bytes(config)
    table["Total"] = {"entries": float("nan"), "bytes": total}
    return FigureResult(
        figure="Table 1",
        title="Triangel dedicated storage (paper total: ~17.6 KiB)",
        table=table,
        columns=["entries", "bytes"],
        notes=f"Total dedicated storage: {total / 1024:.1f} KiB",
    )


def system_config_result(system) -> FigureResult:
    """Table 2's result for one system: the simulated configuration."""

    description = system.describe()
    table = {key: {"value": float("nan")} for key in description}
    result = FigureResult(
        figure="Table 2",
        title=f"System configuration ({system.name})",
        table=table,
        columns=["value"],
        extras={"description": description},
    )
    lines = [f"Table 2: system configuration ({system.name})", "=" * 40]
    for key, value in description.items():
        lines.append(f"{key:>14}: {value}")
    result.rendered = "\n".join(lines)
    return result


def _table1_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    return structure_sizes_result()


def _table2_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    from repro.sim.config import system_for

    return system_config_result(system_for(study.system, study.scale))


register_reducer("structure-sizes", no_specs, _table1_tables, axes=())
register_reducer(
    "system-description", no_specs, _table2_tables, axes={"system", "scale"}
)


# ---------------------------------------------------------------------------
# The registry: every figure, table and study of the evaluation
# ---------------------------------------------------------------------------
STUDIES = StudyRegistry()


def _matrix_study(name: str, figure: str, title: str, metric: str,
                  series: tuple[str, ...], notes: str, description: str) -> Study:
    """Declare one single-core matrix figure (10-15 share this shape)."""

    return STUDIES.register(Study.create(
        name=name,
        figure=figure,
        title=title,
        metric=metric,
        workloads=SPEC_WORKLOADS,
        configurations=series,
        notes=notes,
        description=description,
    ))


_matrix_study(
    "fig10", "Figure 10", "Speedup over stride-only baseline (higher is better)",
    "speedup", MAIN_SERIES,
    notes="Paper geomeans: Triage 1.093, Triage-Deg4 1.142, Triage-Deg4-Look2 1.166, "
    "Triangel 1.264, Triangel-Bloom 1.261.",
    description="the headline speedup comparison across the SPEC-like workloads",
)
_matrix_study(
    "fig11", "Figure 11", "Normalised DRAM traffic (lower is better)",
    "dram_traffic", MAIN_SERIES,
    notes="Paper geomeans: Triage ~1.285, Triage-Deg4 ~1.438, Triangel ~1.10, "
    "Triangel-Bloom ~1.146.",
    description="DRAM traffic cost of each prefetcher, same matrix as fig10",
)
_matrix_study(
    "fig12", "Figure 12", "Temporal-prefetch accuracy (higher is better)",
    "accuracy", MAIN_SERIES,
    notes="Paper shape: Triangel is the most accurate; Triage-Deg4 is more accurate "
    "than Triage by ratio but issues far more prefetches.",
    description="prefetch accuracy (used before L2 eviction), same matrix as fig10",
)
_matrix_study(
    "fig13", "Figure 13", "Coverage of baseline L2 demand misses (higher is better)",
    "coverage", MAIN_SERIES,
    notes="Paper shape: Triangel declines to prefetch poor streams (Astar, Soplex), "
    "trading coverage there for accuracy and traffic.",
    description="miss coverage, same matrix as fig10",
)
_matrix_study(
    "fig14", "Figure 14", "Normalised L3 accesses incl. Markov metadata (lower is better)",
    "l3_accesses", ENERGY_SERIES,
    notes="Paper shape: Triage-Deg4 exceeds 5x; Triangel stays near Triage-Deg1 even "
    "at degree 4 thanks to filtering and the Metadata Reuse Buffer.",
    description="metadata-inclusive L3 traffic (adds the no-MRB Triangel variant)",
)
_matrix_study(
    "fig15", "Figure 15", "Normalised DRAM+L3 dynamic energy (lower is better)",
    "energy", ENERGY_SERIES,
    notes="Paper geomeans: Triangel ~1.14, Triangel-Bloom ~1.19, Triage ~1.36, "
    "Triage-Deg4 ~1.60.",
    description="dynamic-energy proxy over the fig14 matrix",
)

STUDIES.register(Study.create(
    name="fig16",
    figure="Figure 16",
    title="Multiprogrammed-pair speedup (shared L3, Markov partition and DRAM)",
    reducer="multiprogram",
    pairs=MULTIPROGRAM_PAIRS,
    configurations=MULTIPROGRAM_SERIES,
    max_accesses_per_core=30_000,
    notes="Paper shape: Triangel holds its gains; Triage slips and Triage-Deg4's "
    "aggression backfires under bandwidth constraint.",
    description="workload pairs sharing the L3 and DRAM on two cores",
))

STUDIES.register(Study.create(
    name="fig17",
    figure="Figure 17",
    title="Graph500 search: slowdown and DRAM traffic (lower is better)",
    reducer="slowdown-traffic",
    workloads=GRAPH500_WORKLOADS,
    configurations=MULTIPROGRAM_SERIES,
    notes="Paper shape: Triage configurations slow down markedly and inflate DRAM "
    "traffic; Triangel's Set Dueller keeps both near 1.0.",
    description="the adversarial Graph500 workloads where Triage backfires",
))

STUDIES.register(Study.create(
    name="fig18",
    figure="Figure 18",
    title="Triage speedup by Markov metadata format",
    workloads=SPEC_WORKLOADS,
    configurations=tuple(f"triage-format-{name}" for name in METADATA_FORMAT_CONFIGS),
    relabel={f"triage-format-{name}": name for name in METADATA_FORMAT_CONFIGS},
    metric="speedup",
    notes="Paper shape: 42-bit > 32-bit-LUT variants; the 10-bit-offset "
    "(fragmented) variant drops sharply; 16-way LUT ≈ fully-associative LUT.",
    description="the Markov metadata format study applied to Triage",
))

STUDIES.register(Study.create(
    name="fig19",
    figure="Figure 19",
    title="Triage LUT accuracy with 11-bit vs 10-bit offsets",
    reducer="stat",
    metric="accuracy",
    workloads=SPEC_WORKLOADS,
    configurations=(
        "triage-format-32-bit-LUT-16-way",
        "triage-format-32-bit-LUT-16-way-10b-offset",
    ),
    relabel={
        "triage-format-32-bit-LUT-16-way": "11-bit",
        "triage-format-32-bit-LUT-16-way-10b-offset": "10-bit",
    },
    notes="Paper shape: accuracy is workload-dependent and collapses further with "
    "the fragmented 10-bit offset; Triangel avoids the LUT entirely.",
    description="raw LUT accuracy, sharing its runs with fig18",
))

STUDIES.register(Study.create(
    name="fig20",
    figure="Figure 20",
    title="Ablation: progressively adding Triangel's mechanisms to Triage-Deg4",
    reducer="matrix-pair",
    metrics=("speedup", "dram_traffic"),
    workloads=SPEC_WORKLOADS,
    configurations=tuple(f"ablation-{name}" for name in ABLATION_LADDER),
    relabel={f"ablation-{name}": name for name in ABLATION_LADDER},
    notes="Paper shape: BasePatternConf roughly halves the DRAM overhead; the Set "
    "Dueller cuts traffic further; HighPatternConf trades a little speed for traffic.",
    description="the mechanism-by-mechanism ablation ladder",
))

STUDIES.register(Study.create(
    name="replacement-study",
    figure="Section 3.3",
    title="Markov replacement study (capacity capped at {max_entries} entries)",
    workloads=SPEC_WORKLOADS,
    configurations=tuple(f"triage-{policy}" for policy in REPLACEMENT_POLICIES),
    config_params={"max_entries": 1024},
    metric="speedup",
    notes="Paper observation: HawkEye beats LRU/RRIP only when capacity is "
    "artificially constrained.",
    description="Triage under LRU/SRRIP/HawkEye with the Markov capacity capped",
))

STUDIES.register(Study.create(
    name="table1",
    figure="Table 1",
    title="Triangel dedicated storage (paper total: ~17.6 KiB)",
    reducer="structure-sizes",
    description="analytic storage-budget report, no simulations",
))

STUDIES.register(Study.create(
    name="table2",
    figure="Table 2",
    title="System configuration",
    reducer="system-description",
    system="paper",
    description="analytic description of the simulated system (the system axis)",
))

#: The studies whose union of compiled cells is the main single-core matrix
#: (figures 10-15 share it; submitting it warms the store for all six).
MAIN_MATRIX_STUDIES: tuple[str, ...] = ("fig10", "fig11", "fig12", "fig13", "fig14", "fig15")


def main_matrix_specs(runner: ExperimentRunner) -> list:
    """Every RunSpec figures 10-15 need (the union of their compiled batches).

    Submitting this list through the runner's executor warms the store for
    all six figures in a single deduplicated, parallelisable batch.
    """

    specs: list = []
    for name in MAIN_MATRIX_STUDIES:
        specs.extend(STUDIES.get(name).compile(runner))
    return list(dict.fromkeys(specs))
