"""The declarative study API: one composable spec layer for every experiment.

A :class:`Study` is an immutable declaration of an experiment's axes —
workloads × configurations (with optional call-time parameters) × system ×
metric reducer — plus presentation (figure label, title, notes, column
relabelling).  It contains no execution logic of its own: a study *compiles*
to a batch of :class:`~repro.experiments.jobs.RunSpec` /
:class:`~repro.experiments.jobs.MultiProgramSpec` values for the existing
executor + store pipeline, and a named *reducer* turns the batch's results
into the familiar :class:`FigureResult` table.

The pieces:

* :class:`Study` — the frozen axis spec, with :meth:`Study.compile` (the
  spec batch), :meth:`Study.run` (reduce through the executor + store,
  then render) and :meth:`Study.overridden` (the ``--set scale=0.5`` /
  ``--workloads`` / ``--configs`` override hooks, which validate that an
  override actually applies before anything simulates);
* :data:`REDUCERS` — named reducers (``matrix``, ``stat``, ``matrix-pair``,
  ``multiprogram``, ``slowdown-traffic``, plus analytic ones registered by
  :mod:`repro.experiments.studies`), each pairing a spec enumerator with a
  table builder so ``compile`` and ``run`` can never disagree about which
  simulations a study needs;
* :class:`StudyRegistry` — a name → :class:`Study` registry with
  ``describe`` support; the canonical instance, with every figure and table
  of the paper declared, is :data:`repro.experiments.studies.STUDIES`.

Because studies compile onto the spec/executor/store pipeline unchanged, a
new scenario — a cache-scale sweep, a custom configuration grid, a degree
ladder — is one :class:`Study` declaration (or a CLI override of an
existing one), not a new figure module; and every run it produces persists
and parallelises like the built-in figures.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.metrics import (
    RELATIVE_METRICS,
    add_geomean_row,
    geomean,
    normalize_against_baseline,
)
from repro.analysis.report import render_figure
from repro.experiments.configs import CONFIGS

# _freeze/_thaw are jobs.py's canonicalisation helpers; studies reuse them so
# that study fields freeze exactly like spec fields do.  They stay in jobs.py
# (renaming them there would invalidate the result store, which salts its
# keys with that file's bytes) — treat this import as a package-internal
# contract.
from repro.experiments.jobs import _freeze, _thaw
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import Spec
from repro.sim.config import system_for


@dataclass
class FigureResult:
    """The reproduced data for one figure or table."""

    figure: str
    title: str
    table: dict[str, dict[str, float]]
    columns: list[str]
    rendered: str = ""
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def geomean_row(self) -> dict[str, float]:
        """The summary (geomean) row of the table, if the figure has one."""

        return self.table.get("geomean", {})


def render_result(result: FigureResult) -> FigureResult:
    """Fill in the text rendering of a result (unless the reducer already did)."""

    if not result.rendered:
        result.rendered = render_figure(
            f"{result.figure}: {result.title}",
            result.table,
            result.columns,
            note=result.notes or None,
        )
    return result


# ---------------------------------------------------------------------------
# The Study declaration
# ---------------------------------------------------------------------------
#: Study fields settable through ``--set key=value`` overrides, with the
#: coercion applied to the raw string value.  Anything *not* listed here is
#: treated as a configuration parameter and lands in ``config_params``.
_AXIS_FIELDS: dict[str, Callable[[str], object]] = {
    "system": str,
    "scale": float,
    "metric": str,
    "baseline": str,
    "max_accesses_per_core": lambda raw: None if raw.lower() == "none" else int(raw),
}


def coerce_param(raw: str):
    """Best-effort literal coercion for ``--set`` configuration parameters."""

    lowered = raw.lower()
    if lowered == "none":
        return None
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(raw)
        except ValueError:
            continue
    return raw


def accepted_params(configurations: Sequence[str]) -> set[str]:
    """Every parameter name at least one of the configurations accepts.

    The single acceptance rule behind all three stranded-parameter checks
    (``--set`` overrides, ``--configs`` narrowing, and multiprogram
    compile), so they can never diverge.
    """

    accepted: set[str] = set()
    for name in configurations:
        if name in CONFIGS:
            accepted |= {key for key, _ in CONFIGS.entry(name).params}
    return accepted


def parse_assignments(pairs: Sequence[str] | None) -> dict[str, str]:
    """Parse CLI ``KEY=VALUE`` override strings into a dictionary."""

    assignments: dict[str, str] = {}
    for pair in pairs or ():
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"override {pair!r} is not of the form KEY=VALUE")
        assignments[key] = value
    return assignments


@dataclass(frozen=True)
class Study:
    """An immutable, declarative spec of one experiment's axes.

    The axes: ``workloads`` × ``configurations`` (every configuration
    uniformly takes the — possibly empty — ``config_params``) × the named
    ``system`` at ``scale`` × the ``metric`` consumed by the named
    ``reducer``.  Multiprogram studies declare ``pairs`` instead of
    ``workloads``.  Presentation fields (``figure``, ``title``, ``notes``,
    ``relabel``) only affect rendering, never which simulations run.

    ``title`` may reference configuration parameters with ``str.format``
    placeholders (the replacement study's ``{max_entries}``), so overridden
    variants label themselves.
    """

    name: str
    figure: str
    title: str
    reducer: str = "matrix"
    workloads: tuple[str, ...] = ()
    configurations: tuple[str, ...] = ()
    metric: str = "speedup"
    #: the two metrics of a ``matrix-pair`` study (e.g. figure 20).
    metrics: tuple[str, ...] = ()
    baseline: str = "baseline"
    config_params: tuple = ()
    #: registry name → display name, applied to table columns after reduction.
    relabel: tuple = ()
    #: per-core workload tuples of a multiprogram study (e.g. figure 16).
    pairs: tuple[tuple[str, ...], ...] = ()
    max_accesses_per_core: int | None = None
    system: str = "sim-scale"
    scale: float = 1.0
    notes: str = ""
    description: str = ""

    @classmethod
    def create(cls, *, config_params: Mapping | None = None,
               relabel: Mapping | None = None, **fields) -> "Study":
        """Build a study, canonicalising the mapping-valued fields."""

        return cls(
            config_params=_freeze(dict(config_params or {})),
            relabel=_freeze(dict(relabel or {})),
            **fields,
        )

    # -- axis accessors ------------------------------------------------------
    def config_params_dict(self) -> dict:
        """The call-time configuration parameters as a plain dictionary."""

        return _thaw(self.config_params) or {}

    def relabel_dict(self) -> dict:
        """The registry-name → display-name mapping as a plain dictionary."""

        return _thaw(self.relabel) or {}

    def display_columns(self) -> list[str]:
        """The table columns after relabelling, in declaration order."""

        mapping = self.relabel_dict()
        return [mapping.get(name, name) for name in self.configurations]

    def display_title(self) -> str:
        """The title with configuration parameters substituted in."""

        params = self.config_params_dict()
        return self.title.format(**params) if params else self.title

    def params_for(self, configuration: str) -> dict | None:
        """This study's parameters for one configuration (None when plain)."""

        if configuration in CONFIGS and CONFIGS.takes_params(configuration):
            return self.config_params_dict() or None
        return None

    # -- overrides -----------------------------------------------------------
    def overridden(
        self,
        workloads: Sequence[str] | None = None,
        configurations: Sequence[str] | None = None,
        assignments: Mapping[str, str] | None = None,
    ) -> "Study":
        """A copy of this study with axes overridden (the CLI hooks).

        ``assignments`` holds raw ``--set`` values: keys naming a study axis
        (``scale``, ``system``, ``metric``, ``baseline``,
        ``max_accesses_per_core``) replace that field with type coercion;
        any other key is a configuration parameter and is merged into
        ``config_params`` (so ``--set max_entries=2048`` re-parameterises
        the replacement study).  Overrides that cannot affect this study —
        a workload override on a pair-based or analytic study, or a
        parameter no configuration of the study accepts — are rejected
        rather than silently ignored.  Overridden axes change the compiled
        specs' content hashes, so variants occupy disjoint store entries.
        """

        updates: dict = {}
        from repro.workloads.registry import available_workloads

        reducer = REDUCERS[self.reducer]
        if workloads is not None:
            if not self.workloads:
                hint = (
                    "; its per-core pairs are fixed — register a variant study"
                    if self.pairs
                    else ""
                )
                raise ValueError(
                    f"study {self.name!r} has no workload axis to override{hint}"
                )
            # Bound once: each listing call scans the trace search path.
            known = available_workloads()
            known_set = set(known)
            unknown = [name for name in workloads if name not in known_set]
            if unknown:
                raise ValueError(
                    f"unknown workload(s) {unknown}; available: {known}"
                )
            updates["workloads"] = tuple(workloads)
        if configurations is not None:
            if not self.configurations:
                raise ValueError(
                    f"study {self.name!r} has no configuration axis to override"
                )
            unknown = [name for name in configurations if name not in CONFIGS]
            if unknown:
                raise ValueError(
                    f"unknown configuration(s) {unknown}; available: {CONFIGS.names()}"
                )
            # The study's declared parameters must still apply to the new
            # configuration axis: a replacement-study narrowed to plain
            # configurations would otherwise keep (and advertise in its
            # title) a cap no compiled spec carries.
            stranded = set(self.config_params_dict()) - accepted_params(configurations)
            if stranded:
                raise ValueError(
                    f"--configs override leaves declared parameter(s) "
                    f"{sorted(stranded)} of study {self.name!r} inapplicable; "
                    f"keep a configuration that accepts them"
                )
            updates["configurations"] = tuple(configurations)
        params = self.config_params_dict()
        added_params: set[str] = set()
        for key, raw in (assignments or {}).items():
            coerce = _AXIS_FIELDS.get(key)
            if coerce is not None:
                if key not in reducer.axes:
                    raise ValueError(
                        f"--set {key} does not apply to study {self.name!r}: "
                        f"its {self.reducer!r} reducer reads "
                        f"{sorted(reducer.axes) if reducer.axes else 'no axis fields'}"
                    )
                value = coerce(raw)
                if key == "metric" and reducer.valid_metrics is not None:
                    if value not in reducer.valid_metrics:
                        raise ValueError(
                            f"--set metric={value}: not a metric the "
                            f"{self.reducer!r} reducer knows; expected one of "
                            f"{sorted(reducer.valid_metrics)}"
                        )
                updates[key] = value
            else:
                params[key] = coerce_param(raw)
                added_params.add(key)
        self._validate_added_params(
            added_params, updates.get("configurations", self.configurations)
        )
        if _freeze(params) != self.config_params:
            updates["config_params"] = _freeze(params)
        return dataclasses.replace(self, **updates) if updates else self

    def _validate_added_params(self, added: set, configurations) -> None:
        """Reject configuration parameters that cannot take effect here.

        Shared by :meth:`overridden` and :meth:`with_config_params`, so the
        CLI and the programmatic API enforce the same rule: a parameter is
        either carried by the compiled specs or refused — never silently
        dropped.
        """

        if not added:
            return
        accepted = accepted_params(configurations)
        unknown = set(added) - accepted
        if unknown:
            raise ValueError(
                f"--set key(s) {sorted(unknown)} match neither a study axis "
                f"({sorted(_AXIS_FIELDS)}) nor a parameter of "
                f"{self.name!r}'s configurations"
                + (f" (accepted: {sorted(accepted)})" if accepted else "")
            )

    def with_config_params(self, **params) -> "Study":
        """A copy with ``params`` merged into the configuration parameters.

        Applies the same applicability validation as :meth:`overridden` —
        a parameter no configuration of the study accepts raises instead of
        silently compiling to the unmodified specs.
        """

        self._validate_added_params(set(params), self.configurations)
        merged = self.config_params_dict()
        merged.update(params)
        return dataclasses.replace(self, config_params=_freeze(merged))

    # -- compile / run -------------------------------------------------------
    def make_runner(self, **runner_fields) -> ExperimentRunner:
        """A runner on this study's system axis (``runner_fields`` forwarded)."""

        return ExperimentRunner(
            system=system_for(self.system, self.scale), **runner_fields
        )

    def compile(self, runner: ExperimentRunner | None = None) -> list[Spec]:
        """The deduplicated batch of specs this study needs, in axis order.

        This is exactly the set of simulations :meth:`run` executes (the
        reducer's ``specs`` and ``tables`` enumerate the same cells), so
        submitting the batch — from any process, e.g. a prewarm pass —
        warms the store and a subsequent :meth:`run` re-executes nothing.
        """

        runner = runner or self.make_runner()
        specs = REDUCERS[self.reducer].specs(self, runner)
        return list(dict.fromkeys(specs))

    def run(self, runner: ExperimentRunner | None = None) -> FigureResult:
        """Reduce this study's results (simulating what the store lacks).

        The reducer submits the study's cells as deduplicated batches
        through the runner's executor + store, so completed cells replay
        and misses run (in parallel under ``jobs > 1``).  ``runner``
        carries the execution policy (jobs, store, trace overrides, access
        caps) *and*, when given, the system — a shared benchmark runner
        keeps its own system axis.  Without one, the study runs on its
        declared ``system``/``scale``.
        """

        runner = runner or self.make_runner()
        return render_result(REDUCERS[self.reducer].tables(self, runner))


# ---------------------------------------------------------------------------
# Reducers: spec enumeration + table construction, paired under one name
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Reducer:
    """One named way of turning a study's axes into specs and a table.

    ``specs(study, runner)`` enumerates every spec the study needs;
    ``tables(study, runner)`` builds the (unrendered) :class:`FigureResult`.
    Both run against the same runner, and ``tables`` reads results through
    the runner's store, so a :meth:`Study.run` never simulates a cell its
    compiled batch did not declare.

    ``axes`` names the :data:`_AXIS_FIELDS` this reducer actually reads;
    :meth:`Study.overridden` rejects ``--set`` keys outside it, so an
    override that could not affect the output (``--set metric=...`` on the
    fixed-metric figure 20, ``--set scale=...`` on the analytic table 1)
    fails loudly instead of printing the unmodified table.  When the
    reducer reads the ``metric`` axis, ``valid_metrics`` names the values
    it understands, so a bad metric fails at override time instead of
    after the simulations have already run.
    """

    name: str
    specs: Callable[[Study, ExperimentRunner], list]
    tables: Callable[[Study, ExperimentRunner], FigureResult]
    axes: frozenset = frozenset(_AXIS_FIELDS)
    valid_metrics: frozenset | None = None


REDUCERS: dict[str, Reducer] = {}


def register_reducer(
    name: str, specs, tables, axes=frozenset(_AXIS_FIELDS), valid_metrics=None
) -> Reducer:
    """Register a reducer under a unique name and return it.

    ``axes`` defaults to every overridable axis; built-in reducers narrow
    it to the fields they read.  ``valid_metrics`` (optional) is the set of
    metric values the reducer understands; ``None`` skips validation.
    """

    if name in REDUCERS:
        raise ValueError(f"reducer {name!r} is already registered")
    reducer = Reducer(
        name=name,
        specs=specs,
        tables=tables,
        axes=frozenset(axes),
        valid_metrics=frozenset(valid_metrics) if valid_metrics is not None else None,
    )
    REDUCERS[name] = reducer
    return reducer


def _relabeled(table: dict, mapping: dict[str, str]) -> dict:
    """Rename each row's configuration keys (registry name → display name)."""

    if not mapping:
        return table
    return {
        row: {mapping.get(name, name): value for name, value in per_config.items()}
        for row, per_config in table.items()
    }


def no_specs(study: Study, runner: ExperimentRunner) -> list:
    """Spec enumerator of analytic studies: nothing to simulate."""

    return []


#: Metric values the baseline-normalising reducers understand (the dispatch
#: of :func:`repro.analysis.metrics.normalize_against_baseline`).
_MATRIX_METRICS = frozenset(RELATIVE_METRICS) | {"accuracy"}


def _stat_metrics() -> frozenset:
    """Every per-run statistic the ``stat`` reducer can read off a result."""

    from repro.sim.stats import SimulationStats

    fields = {
        field.name
        for field in dataclasses.fields(SimulationStats)
        if field.name not in ("workload", "configuration")
    }
    properties = {
        name
        for name, value in vars(SimulationStats).items()
        if isinstance(value, property)
    }
    return frozenset(fields | properties)


def _single_core_specs(
    study: Study, runner: ExperimentRunner, include_baseline: bool
) -> list:
    """Every RunSpec of a single-core study, baseline optionally included."""

    configurations = list(study.configurations)
    if include_baseline and study.baseline not in configurations:
        configurations = [study.baseline] + configurations
    return [
        runner.spec_for(workload, configuration, study.params_for(configuration))
        for configuration in configurations
        for workload in study.workloads
    ]


# -- "matrix": baseline-normalised (workload × configuration) metric ---------
def _matrix_specs(study: Study, runner: ExperimentRunner) -> list:
    return _single_core_specs(study, runner, include_baseline=True)


def _matrix_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    table = runner.normalized_matrix(
        list(study.workloads),
        list(study.configurations),
        study.metric,
        baseline_config=study.baseline,
        config_params=study.config_params_dict() or None,
    )
    return FigureResult(
        figure=study.figure,
        title=study.display_title(),
        table=_relabeled(table, study.relabel_dict()),
        columns=study.display_columns(),
        notes=study.notes,
    )


register_reducer(
    "matrix", _matrix_specs, _matrix_tables,
    axes={"system", "scale", "metric", "baseline"},
    valid_metrics=_MATRIX_METRICS,
)


# -- "stat": a raw per-cell statistic, no baseline or normalisation ----------
def _stat_specs(study: Study, runner: ExperimentRunner) -> list:
    return _single_core_specs(study, runner, include_baseline=False)


def _stat_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    results = runner.run_matrix(
        list(study.workloads),
        list(study.configurations),
        config_params=study.config_params_dict() or None,
    )
    mapping = study.relabel_dict()
    table = {
        workload: {
            mapping.get(name, name): getattr(stats, study.metric)
            for name, stats in per_config.items()
        }
        for workload, per_config in results.items()
    }
    return FigureResult(
        figure=study.figure,
        title=study.display_title(),
        table=add_geomean_row(table),
        columns=study.display_columns(),
        notes=study.notes,
    )


register_reducer(
    "stat", _stat_specs, _stat_tables,
    axes={"system", "scale", "metric"},
    valid_metrics=_stat_metrics(),
)


# -- "matrix-pair": two normalised metrics, rows suffixed per metric ---------
#: Row-label suffix per metric in ``matrix-pair`` tables (falls back to the
#: metric name itself).
_METRIC_ROW_SUFFIX = {"dram_traffic": "dram"}


def _matrix_pair_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    mapping = study.relabel_dict()
    series = list(study.configurations)
    run_configs = series if study.baseline in series else [study.baseline] + series
    # One submission for both metrics: the matrix runs once and each metric
    # is a different reduction of the same results (without this, a
    # store-less runner would re-simulate the batch per metric).
    results = runner.run_matrix(
        list(study.workloads),
        run_configs,
        config_params=study.config_params_dict() or None,
    )
    per_metric: dict[str, dict] = {}
    for metric in study.metrics:
        table = normalize_against_baseline(results, metric, study.baseline)
        for per_config in table.values():
            per_config.pop(study.baseline, None)
        per_metric[metric] = _relabeled(add_geomean_row(table), mapping)
    table: dict[str, dict[str, float]] = {}
    for metric in study.metrics:
        suffix = _METRIC_ROW_SUFFIX.get(metric, metric)
        for workload, row in per_metric[metric].items():
            table[f"{workload} {suffix}"] = row
    return FigureResult(
        figure=study.figure,
        title=study.display_title(),
        table=table,
        columns=study.display_columns(),
        notes=study.notes,
        extras=dict(per_metric),
    )


register_reducer(
    "matrix-pair", _matrix_specs, _matrix_pair_tables,
    axes={"system", "scale", "baseline"},  # the metric pair is fixed
)


# -- "multiprogram": pair speedups against a per-pair baseline run -----------
def _multiprogram_cells(study: Study, runner: ExperimentRunner) -> dict:
    params = study.config_params_dict()
    if params:
        # A Study.create-declared parameter that no configuration of the
        # study accepts would compile to default-parameter specs while the
        # title still advertises it — reject, exactly as overridden() and
        # with_config_params() do for the CLI/programmatic override paths.
        stranded = set(params) - accepted_params(study.configurations)
        if stranded:
            raise ValueError(
                f"study {study.name!r} declares parameter(s) "
                f"{sorted(stranded)} that none of its configurations "
                f"accept; they would be silently ignored"
            )
    series = [study.baseline] + list(study.configurations)
    return {
        (pair, configuration): runner.multiprogram_spec_for(
            pair,
            configuration,
            study.max_accesses_per_core,
            config_params=study.params_for(configuration),
        )
        for pair in study.pairs
        for configuration in series
    }


def _multiprogram_specs(study: Study, runner: ExperimentRunner) -> list:
    return list(_multiprogram_cells(study, runner).values())


def _multiprogram_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    cell_specs = _multiprogram_cells(study, runner)
    batch = runner.submit(list(cell_specs.values()))
    table: dict[str, dict[str, float]] = {}
    for pair in study.pairs:
        label = " & ".join(pair)
        baseline = batch[cell_specs[(pair, study.baseline)]]
        table[label] = {}
        for configuration in study.configurations:
            result = batch[cell_specs[(pair, configuration)]]
            speedups = result.speedups_relative_to(baseline)
            table[label][configuration] = geomean(speedups)
    return FigureResult(
        figure=study.figure,
        title=study.display_title(),
        table=add_geomean_row(table),
        columns=study.display_columns(),
        notes=study.notes,
    )


register_reducer(
    "multiprogram", _multiprogram_specs, _multiprogram_tables,
    axes={"system", "scale", "baseline", "max_accesses_per_core"},
)


# -- "slowdown-traffic": inverse speedup + DRAM traffic rows per workload ----
def _slowdown_traffic_tables(study: Study, runner: ExperimentRunner) -> FigureResult:
    series = list(study.configurations)
    results = runner.run_matrix(
        list(study.workloads),
        [study.baseline] + series,
        config_params=study.config_params_dict() or None,
    )
    table: dict[str, dict[str, float]] = {}
    for workload in study.workloads:
        baseline = results[workload][study.baseline]
        slowdown_row = {}
        traffic_row = {}
        for configuration in series:
            stats = results[workload][configuration]
            speedup = stats.speedup_relative_to(baseline)
            slowdown_row[configuration] = 1.0 / speedup if speedup > 0 else float("inf")
            traffic_row[configuration] = stats.dram_traffic_relative_to(baseline)
        table[f"{workload} slowdown"] = slowdown_row
        table[f"{workload} dram"] = traffic_row
    return FigureResult(
        figure=study.figure,
        title=study.display_title(),
        table=table,
        columns=study.display_columns(),
        notes=study.notes,
    )


register_reducer(
    "slowdown-traffic", _matrix_specs, _slowdown_traffic_tables,
    axes={"system", "scale", "baseline"},  # always slowdown + DRAM rows
)


# ---------------------------------------------------------------------------
# The study registry
# ---------------------------------------------------------------------------
class StudyRegistry:
    """A name → :class:`Study` registry with listing and describe support."""

    def __init__(self) -> None:
        self._studies: dict[str, Study] = {}

    def register(self, study: Study) -> Study:
        """Register a study under its (unique) name and return it."""

        if study.name in self._studies:
            raise ValueError(f"study {study.name!r} is already registered")
        if study.reducer not in REDUCERS:
            raise ValueError(
                f"study {study.name!r} names unknown reducer {study.reducer!r}"
            )
        self._studies[study.name] = study
        return study

    def get(self, name: str) -> Study:
        """The named study, or a ``ValueError`` listing what exists."""

        study = self._studies.get(name)
        if study is None:
            raise ValueError(f"unknown study {name!r}; available: {self.names()}")
        return study

    def names(self) -> list[str]:
        """Every registered study name, sorted."""

        return sorted(self._studies)

    def run(self, name: str, runner: ExperimentRunner | None = None) -> FigureResult:
        """Run the named study (see :meth:`Study.run`)."""

        return self.get(name).run(runner)

    @staticmethod
    def digest_of(batch) -> str:
        """A short stable digest of a compiled spec batch.

        Hashes the sorted content hashes of every spec, so two processes
        (or two machines at the same code version) can check they compiled
        the identical batch without shipping the specs around.
        """

        hashes = sorted(spec.content_hash() for spec in batch)
        return hashlib.sha256("|".join(hashes).encode()).hexdigest()[:12]

    def batch_digest(self, name: str, runner: ExperimentRunner | None = None) -> str:
        """The digest of the named study's compiled batch (see :meth:`digest_of`)."""

        return self.digest_of(self.get(name).compile(runner))

    def describe(self, name: str, runner: ExperimentRunner | None = None) -> str:
        """A multi-line description of one study's axes and compiled batch."""

        study = self.get(name)
        batch = study.compile(runner)
        signatures = CONFIGS.signatures()
        lines = [
            f"{study.name}: {study.figure} — {study.display_title()}",
            f"  reducer:        {study.reducer}",
            f"  system:         {study.system} (scale {study.scale:g})",
        ]
        if study.metrics:
            lines.append(f"  metrics:        {', '.join(study.metrics)}")
        elif "metric" in REDUCERS[study.reducer].axes:
            lines.append(f"  metric:         {study.metric}")
        if study.pairs:
            pairs = ", ".join(" & ".join(pair) for pair in study.pairs)
            lines.append(f"  pairs:          {pairs}")
            if study.max_accesses_per_core is not None:
                lines.append(
                    f"  accesses/core:  {study.max_accesses_per_core}"
                )
        elif study.workloads:
            lines.append(f"  workloads:      {', '.join(study.workloads)}")
        if study.configurations:
            columns = ", ".join(
                f"{name}{signatures.get(name, '')}" for name in study.configurations
            )
            lines.append(f"  configurations: {columns}")
        params = study.config_params_dict()
        if params:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(params.items()))
            lines.append(f"  parameters:     {rendered}")
        if study.description:
            lines.append(f"  about:          {study.description}")
        lines.append(
            f"  batch:          {len(batch)} spec(s), digest {self.digest_of(batch)}"
            if batch
            else "  batch:          analytic (no simulations)"
        )
        return "\n".join(lines)

    def __contains__(self, name: str) -> bool:
        return name in self._studies

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._studies)

    def items(self):
        """(name, study) pairs in sorted-name order."""

        return [(name, self._studies[name]) for name in self.names()]
