"""Memory-system substrate: addresses, caches, replacement policies, DRAM.

The Triangel paper evaluates prefetchers on top of a three-level cache
hierarchy (table 2 of the paper): private 64 KiB L1D and 512 KiB L2 per core,
a 2 MiB/core shared 16-way L3, and LPDDR5 DRAM.  The Markov prefetch
metadata lives in a partition of up to 8 ways of the L3.  This package
provides the software model of that substrate:

* :mod:`repro.memory.address` — line/page arithmetic and the virtual→physical
  page mapper used to model frame fragmentation (paper section 6.5).
* :mod:`repro.memory.request` — access records and result types.
* :mod:`repro.memory.replacement` — LRU, FIFO, Random, PLRU, SRRIP/BRRIP.
* :mod:`repro.memory.hawkeye` — the HawkEye replacement policy Triage uses
  for its Markov partition (paper section 3.3).
* :mod:`repro.memory.cache` — a generic set-associative cache with prefetch
  tagging.
* :mod:`repro.memory.partitioned_cache` — the L3 model whose data capacity
  shrinks as ways are reserved for Markov metadata.
* :mod:`repro.memory.dram` — DRAM traffic/energy accounting with an optional
  bandwidth (queueing) model for multiprogrammed runs.
* :mod:`repro.memory.hierarchy` — the composed L1D→L2→L3→DRAM hierarchy.
"""

from repro.memory.address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    PageMapper,
    line_address,
    line_number,
    page_number,
    page_offset,
)
from repro.memory.cache import CacheLine, SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.hawkeye import HawkEyePolicy
from repro.memory.hierarchy import DemandResult, MemoryHierarchy, PrefetchFillResult
from repro.memory.partitioned_cache import PartitionedCache
from repro.memory.replacement import (
    BRRIPPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_replacement_policy,
)
from repro.memory.request import AccessType, MemoryAccess

__all__ = [
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "PageMapper",
    "line_address",
    "line_number",
    "page_number",
    "page_offset",
    "CacheLine",
    "SetAssociativeCache",
    "PartitionedCache",
    "DramModel",
    "HawkEyePolicy",
    "MemoryHierarchy",
    "DemandResult",
    "PrefetchFillResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "make_replacement_policy",
    "AccessType",
    "MemoryAccess",
]
