"""Address arithmetic and the virtual→physical page mapper.

Cache lines are 64 bytes throughout the paper, so the six least-significant
bits of any address are implicit in the prefetcher metadata (paper section
3.1).  Pages are 4 KiB.  The :class:`PageMapper` models an operating system's
virtual-to-physical mapping with a controllable degree of *frame
fragmentation*: Triage's lookup-table compression implicitly assumes strong
physical-frame locality, and the paper shows (section 6.5, figures 18/19)
that realistic fragmentation — modelled there by shrinking the LUT offset
from 11 to 10 bits — destroys its accuracy.  Our workload generators emit
virtual addresses and translate them through a :class:`PageMapper`, so the
same fragmentation knob is available to every experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

CACHE_LINE_SIZE = 64
CACHE_LINE_BITS = 6
PAGE_SIZE = 4096
PAGE_BITS = 12


def line_address(address: int) -> int:
    """Return ``address`` aligned down to its cache-line base."""

    return address & ~(CACHE_LINE_SIZE - 1)


def line_number(address: int) -> int:
    """Return the cache-line number (address >> 6)."""

    return address >> CACHE_LINE_BITS


def page_number(address: int) -> int:
    """Return the 4 KiB page number containing ``address``."""

    return address >> PAGE_BITS


def page_offset(address: int) -> int:
    """Return the offset of ``address`` within its 4 KiB page."""

    return address & (PAGE_SIZE - 1)


@dataclass
class PageMapper:
    """Deterministic virtual→physical page mapping with tunable fragmentation.

    Parameters
    ----------
    fragmentation:
        Fraction of pages mapped to a pseudo-random physical frame instead of
        the next sequential frame.  ``0.0`` models a freshly booted system
        where contiguous virtual pages land in contiguous frames (the
        assumption under which Triage's LUT compression works well);
        ``1.0`` models a heavily fragmented system.
    physical_pages:
        Size of the physical frame pool to draw fragmented mappings from.
    seed:
        Seed for the deterministic mapping.
    base_frame:
        First physical frame used for sequential allocations; lets two
        workloads in a multiprogrammed pair occupy disjoint frame ranges.
    """

    fragmentation: float = 0.0
    physical_pages: int = 1 << 20
    seed: int = 0xA11CE
    base_frame: int = 0x100
    _mapping: dict[int, int] = field(default_factory=dict, repr=False)
    _next_frame: int = field(default=0, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0.0 <= self.fragmentation <= 1.0:
            raise ValueError(
                f"fragmentation must be in [0, 1], got {self.fragmentation}"
            )
        if self.physical_pages <= 0:
            raise ValueError("physical_pages must be positive")
        self._next_frame = self.base_frame
        self._rng = random.Random(self.seed)

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual byte address to a physical byte address.

        The first touch of a virtual page allocates a frame; subsequent
        touches reuse it, so the mapping is stable for the lifetime of the
        mapper (as it would be for a non-swapping OS during a 5M-instruction
        simulation sample).
        """

        vpage = page_number(virtual_address)
        frame = self._mapping.get(vpage)
        if frame is None:
            frame = self._allocate_frame()
            self._mapping[vpage] = frame
        return (frame << PAGE_BITS) | page_offset(virtual_address)

    def _allocate_frame(self) -> int:
        if self.fragmentation > 0.0 and self._rng.random() < self.fragmentation:
            return self._rng.randrange(self.physical_pages)
        frame = self._next_frame
        self._next_frame += 1
        return frame

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages that have been touched so far."""

        return len(self._mapping)
