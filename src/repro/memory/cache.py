"""A generic set-associative cache with prefetch tagging.

Every cache level in the model is an instance of
:class:`SetAssociativeCache` (the L3 uses the :class:`~repro.memory.
partitioned_cache.PartitionedCache` subclass).  Lines carry a *prefetched*
tag and a *used-since-prefetch* flag so the simulator can detect tagged
prefetch hits — the event that, together with demand misses, trains the
temporal prefetchers (paper section 2) — and measure accuracy exactly as the
paper defines it: prefetched lines used before eviction from the L2
(figure 12 caption).

Lines also carry a ``ready_cycle``.  Prefetches are inserted as soon as they
are issued but only become usable once their fill would have completed; a
demand access that arrives earlier pays the remaining latency.  This is how
the model captures *timeliness*, which is the property Triangel's lookahead
and degree mechanisms exist to improve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address import CACHE_LINE_SIZE, line_address
from repro.memory.replacement import ReplacementPolicy, make_replacement_policy


@dataclass(slots=True)
class CacheLine:
    """One cache line's bookkeeping state."""

    valid: bool = False
    tag: int = 0
    dirty: bool = False
    prefetched: bool = False
    used_since_prefetch: bool = False
    pc: int | None = None
    ready_cycle: float = 0.0
    fill_time: float = 0.0

    def reset(self) -> None:
        self.valid = False
        self.tag = 0
        self.dirty = False
        self.prefetched = False
        self.used_since_prefetch = False
        self.pc = None
        self.ready_cycle = 0.0
        self.fill_time = 0.0


@dataclass
class CacheStats:
    """Hit/miss and prefetch-related counters for one cache level."""

    hits: int = 0
    misses: int = 0
    demand_accesses: int = 0
    prefetch_fills: int = 0
    prefetch_first_uses: int = 0
    prefetched_evicted_unused: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        for name in (
            "hits",
            "misses",
            "demand_accesses",
            "prefetch_fills",
            "prefetch_first_uses",
            "prefetched_evicted_unused",
            "writebacks",
            "invalidations",
        ):
            setattr(self, name, 0)


@dataclass(slots=True)
class AccessOutcome:
    """Result of a demand lookup in one cache level."""

    hit: bool
    first_prefetch_use: bool = False
    ready_cycle: float = 0.0
    line_pc: int | None = None


@dataclass(slots=True)
class EvictionInfo:
    """Description of a line displaced by a fill."""

    address: int
    dirty: bool
    prefetched_unused: bool
    pc: int | None = None


class SetAssociativeCache:
    """A set-associative, write-back, allocate-on-miss cache model.

    Parameters
    ----------
    name:
        Human-readable level name used in reports (``"L1D"``, ``"L2"``, ...).
    size_bytes:
        Total data capacity.
    assoc:
        Number of ways.
    line_size:
        Cache-line size in bytes; 64 throughout the paper.
    replacement:
        Either a policy name understood by
        :func:`repro.memory.replacement.make_replacement_policy` or an
        already-constructed :class:`ReplacementPolicy`.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int = CACHE_LINE_SIZE,
        replacement: str | ReplacementPolicy = "lru",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("size_bytes, assoc and line_size must be positive")
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of assoc*line_size "
                f"({assoc}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size_bytes // (assoc * line_size)
        if isinstance(replacement, ReplacementPolicy):
            self.policy = replacement
        else:
            self.policy = make_replacement_policy(replacement, self.num_sets, assoc)
        self._sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # -- address decomposition -------------------------------------------
    def locate(self, address: int) -> tuple[int, int]:
        """Return ``(set_index, tag)`` for a byte address."""

        line = line_address(address) // self.line_size
        return line % self.num_sets, line // self.num_sets

    def _find_way(self, set_index: int, tag: int) -> int | None:
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    # -- queries -----------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Return whether the line is present, without touching any state."""

        set_index, tag = self.locate(address)
        return self._find_way(set_index, tag) is not None

    def get_line(self, address: int) -> CacheLine | None:
        """Return the resident line for ``address`` (no state change)."""

        set_index, tag = self.locate(address)
        way = self._find_way(set_index, tag)
        return self._sets[set_index][way] if way is not None else None

    def resident_line_addresses(self) -> list[int]:
        """Return the byte addresses of all resident lines (test helper)."""

        addresses = []
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    addresses.append(
                        (line.tag * self.num_sets + set_index) * self.line_size
                    )
        return addresses

    # -- demand path --------------------------------------------------------
    def access(
        self,
        address: int,
        pc: int | None = None,
        is_write: bool = False,
        now: float = 0.0,
    ) -> AccessOutcome:
        """Perform a demand lookup, updating replacement and prefetch state."""

        set_index, tag = self.locate(address)
        self.stats.demand_accesses += 1
        self._observe(set_index, address, pc)
        way = self._find_way(set_index, tag)
        if way is None:
            self.stats.misses += 1
            return AccessOutcome(hit=False)
        line = self._sets[set_index][way]
        self.stats.hits += 1
        first_use = False
        if line.prefetched and not line.used_since_prefetch:
            line.used_since_prefetch = True
            first_use = True
            self.stats.prefetch_first_uses += 1
        if is_write:
            line.dirty = True
        self.policy.on_hit(set_index, way, pc)
        return AccessOutcome(
            hit=True,
            first_prefetch_use=first_use,
            ready_cycle=line.ready_cycle,
            line_pc=line.pc,
        )

    def fill(
        self,
        address: int,
        pc: int | None = None,
        is_write: bool = False,
        prefetched: bool = False,
        ready_cycle: float = 0.0,
        now: float = 0.0,
    ) -> EvictionInfo | None:
        """Insert a line (demand fill or prefetch fill); return the victim, if any."""

        set_index, tag = self.locate(address)
        existing = self._find_way(set_index, tag)
        if existing is not None:
            # Re-filling a resident line (e.g. a prefetch racing a demand
            # fill): refresh flags without evicting anything.
            line = self._sets[set_index][existing]
            line.dirty = line.dirty or is_write
            if prefetched and not line.prefetched:
                line.prefetched = True
                line.used_since_prefetch = False
                line.ready_cycle = ready_cycle
            self.policy.on_hit(set_index, existing, pc)
            return None
        if prefetched:
            self.stats.prefetch_fills += 1
        victim_info = None
        way, victim_info = self._choose_victim(set_index)
        line = self._sets[set_index][way]
        line.valid = True
        line.tag = tag
        line.dirty = is_write
        line.prefetched = prefetched
        line.used_since_prefetch = False
        line.pc = pc
        line.ready_cycle = ready_cycle
        line.fill_time = now
        self.policy.on_fill(set_index, way, pc)
        return victim_info

    def _candidate_ways(self, set_index: int) -> list[int]:
        """Ways eligible to hold data; the partitioned L3 narrows this."""

        return list(range(self.assoc))

    def _choose_victim(self, set_index: int) -> tuple[int, EvictionInfo | None]:
        candidates = self._candidate_ways(set_index)
        ways = self._sets[set_index]
        for way in candidates:
            if not ways[way].valid:
                return way, None
        way = self.policy.victim(set_index, candidates)
        return way, self._evict(set_index, way)

    def _evict(self, set_index: int, way: int) -> EvictionInfo:
        line = self._sets[set_index][way]
        address = (line.tag * self.num_sets + set_index) * self.line_size
        prefetched_unused = line.prefetched and not line.used_since_prefetch
        if prefetched_unused:
            self.stats.prefetched_evicted_unused += 1
        if line.dirty:
            self.stats.writebacks += 1
        info = EvictionInfo(
            address=address,
            dirty=line.dirty,
            prefetched_unused=prefetched_unused,
            pc=line.pc,
        )
        line.reset()
        self.policy.on_invalidate(set_index, way)
        return info

    def invalidate(self, address: int) -> bool:
        """Remove the line for ``address`` if present; return whether it was."""

        set_index, tag = self.locate(address)
        way = self._find_way(set_index, tag)
        if way is None:
            return False
        self.stats.invalidations += 1
        self._sets[set_index][way].reset()
        self.policy.on_invalidate(set_index, way)
        return True

    def mark_dirty(self, address: int) -> bool:
        """Mark the line dirty if present (used for write-back propagation)."""

        line = self.get_line(address)
        if line is None:
            return False
        line.dirty = True
        return True

    # -- internals ----------------------------------------------------------
    def _observe(self, set_index: int, address: int, pc: int | None) -> None:
        observe = getattr(self.policy, "observe", None)
        if observe is not None:
            observe(set_index, address, pc)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name}, {self.size_bytes}B, "
            f"{self.assoc}-way, {self.num_sets} sets)"
        )
