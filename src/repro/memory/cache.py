"""A generic set-associative cache with prefetch tagging.

Every cache level in the model is an instance of
:class:`SetAssociativeCache` (the L3 uses the :class:`~repro.memory.
partitioned_cache.PartitionedCache` subclass).  Lines carry a *prefetched*
tag and a *used-since-prefetch* flag so the simulator can detect tagged
prefetch hits — the event that, together with demand misses, trains the
temporal prefetchers (paper section 2) — and measure accuracy exactly as the
paper defines it: prefetched lines used before eviction from the L2
(figure 12 caption).

Lines also carry a ``ready_cycle``.  Prefetches are inserted as soon as they
are issued but only become usable once their fill would have completed; a
demand access that arrives earlier pays the remaining latency.  This is how
the model captures *timeliness*, which is the property Triangel's lookahead
and degree mechanisms exist to improve.

This module sits on the simulation hot path — every demand access probes or
touches two to four cache levels, and prefetch fills add several more — so
it is written for per-access cost:

* tag lookup is a per-set ``{tag: way}`` dictionary kept in lockstep with
  the line array (``_find_way`` is one hash probe, not a way scan);
* set/tag decomposition uses precomputed shifts when the geometry is a
  power of two (it always is in practice), falling back to division
  otherwise;
* :meth:`access` and :meth:`fill` return *reusable scratch* outcome
  objects — each call overwrites the instance returned by the previous
  call on the same cache, so callers must consume an outcome before
  touching the cache again (every caller in the repository does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import CACHE_LINE_SIZE, line_address
from repro.memory.replacement import ReplacementPolicy, make_replacement_policy


@dataclass(slots=True)
class CacheLine:
    """One cache line's bookkeeping state."""

    valid: bool = False
    tag: int = 0
    dirty: bool = False
    prefetched: bool = False
    used_since_prefetch: bool = False
    pc: int | None = None
    ready_cycle: float = 0.0
    fill_time: float = 0.0

    def reset(self) -> None:
        self.valid = False
        self.tag = 0
        self.dirty = False
        self.prefetched = False
        self.used_since_prefetch = False
        self.pc = None
        self.ready_cycle = 0.0
        self.fill_time = 0.0


@dataclass(slots=True)
class CacheStats:
    """Hit/miss and prefetch-related counters for one cache level."""

    hits: int = 0
    misses: int = 0
    demand_accesses: int = 0
    prefetch_fills: int = 0
    prefetch_first_uses: int = 0
    prefetched_evicted_unused: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.demand_accesses = 0
        self.prefetch_fills = 0
        self.prefetch_first_uses = 0
        self.prefetched_evicted_unused = 0
        self.writebacks = 0
        self.invalidations = 0


@dataclass(slots=True)
class AccessOutcome:
    """Result of a demand lookup in one cache level.

    :meth:`SetAssociativeCache.access` returns a per-cache scratch instance,
    overwritten by the next ``access`` on the same cache — read it before
    accessing again, and copy the fields out if they must survive.
    """

    hit: bool
    first_prefetch_use: bool = False
    ready_cycle: float = 0.0
    line_pc: int | None = None


@dataclass(slots=True)
class EvictionInfo:
    """Description of a line displaced by a fill.

    Like :class:`AccessOutcome`, instances returned by
    :meth:`SetAssociativeCache.fill` are per-cache scratch, valid until the
    next eviction on the same cache.
    """

    address: int
    dirty: bool
    prefetched_unused: bool
    pc: int | None = None


class SetAssociativeCache:
    """A set-associative, write-back, allocate-on-miss cache model.

    Parameters
    ----------
    name:
        Human-readable level name used in reports (``"L1D"``, ``"L2"``, ...).
    size_bytes:
        Total data capacity.
    assoc:
        Number of ways.
    line_size:
        Cache-line size in bytes; 64 throughout the paper.
    replacement:
        Either a policy name understood by
        :func:`repro.memory.replacement.make_replacement_policy` or an
        already-constructed :class:`ReplacementPolicy`.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "assoc",
        "line_size",
        "num_sets",
        "policy",
        "stats",
        "_sets",
        "_tag_maps",
        "_all_ways",
        "_line_bits",
        "_set_mask",
        "_set_bits",
        "_policy_observe",
        "_scratch_outcome",
        "_scratch_eviction",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int = CACHE_LINE_SIZE,
        replacement: str | ReplacementPolicy = "lru",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("size_bytes, assoc and line_size must be positive")
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of assoc*line_size "
                f"({assoc}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size_bytes // (assoc * line_size)
        if isinstance(replacement, ReplacementPolicy):
            self.policy = replacement
        else:
            self.policy = make_replacement_policy(replacement, self.num_sets, assoc)
        self._sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        #: Per-set ``{tag: way}`` index mirroring ``_sets``; every fill,
        #: eviction and invalidation updates it, making lookups O(1).
        self._tag_maps: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        self._all_ways = tuple(range(assoc))
        # Shift/mask decomposition (power-of-two geometries, i.e. all of
        # them): line number = address >> _line_bits, set = line & _set_mask,
        # tag = line >> num_sets.bit_length()-1.  ``_set_mask`` is None when
        # either quantity is not a power of two and locate() divides instead.
        if line_size & (line_size - 1) == 0 and self.num_sets & (self.num_sets - 1) == 0:
            self._line_bits = line_size.bit_length() - 1
            self._set_mask = self.num_sets - 1
            self._set_bits = self.num_sets.bit_length() - 1
        else:
            self._line_bits = 0
            self._set_mask = None
            self._set_bits = 0
        # The policy's optional miss-stream hook, resolved once: a
        # per-access getattr() was measurable on the hot path.
        self._policy_observe = getattr(self.policy, "observe", None)
        self.stats = CacheStats()
        self._scratch_outcome = AccessOutcome(hit=False)
        self._scratch_eviction = EvictionInfo(
            address=0, dirty=False, prefetched_unused=False
        )

    # -- address decomposition -------------------------------------------
    def locate(self, address: int) -> tuple[int, int]:
        """Return ``(set_index, tag)`` for a byte address."""

        mask = self._set_mask
        if mask is not None:
            line = address >> self._line_bits
            return line & mask, line >> self._set_bits
        line = line_address(address) // self.line_size
        return line % self.num_sets, line // self.num_sets

    def _find_way(self, set_index: int, tag: int) -> int | None:
        return self._tag_maps[set_index].get(tag)

    # -- queries -----------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Return whether the line is present, without touching any state."""

        set_index, tag = self.locate(address)
        return tag in self._tag_maps[set_index]

    def get_line(self, address: int) -> CacheLine | None:
        """Return the resident line for ``address`` (no state change)."""

        set_index, tag = self.locate(address)
        way = self._tag_maps[set_index].get(tag)
        return self._sets[set_index][way] if way is not None else None

    def resident_line_addresses(self) -> list[int]:
        """Return the byte addresses of all resident lines (test helper)."""

        addresses = []
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    addresses.append(
                        (line.tag * self.num_sets + set_index) * self.line_size
                    )
        return addresses

    # -- demand path --------------------------------------------------------
    def access(
        self,
        address: int,
        pc: int | None = None,
        is_write: bool = False,
        now: float = 0.0,
    ) -> AccessOutcome:
        """Perform a demand lookup, updating replacement and prefetch state.

        Returns the cache's scratch :class:`AccessOutcome` (see class docs).
        """

        set_index, tag = self.locate(address)
        stats = self.stats
        stats.demand_accesses += 1
        observe = self._policy_observe
        if observe is not None:
            observe(set_index, address, pc)
        way = self._tag_maps[set_index].get(tag)
        outcome = self._scratch_outcome
        if way is None:
            stats.misses += 1
            outcome.hit = False
            outcome.first_prefetch_use = False
            outcome.ready_cycle = 0.0
            outcome.line_pc = None
            return outcome
        line = self._sets[set_index][way]
        stats.hits += 1
        first_use = False
        if line.prefetched and not line.used_since_prefetch:
            line.used_since_prefetch = True
            first_use = True
            stats.prefetch_first_uses += 1
        if is_write:
            line.dirty = True
        self.policy.on_hit(set_index, way, pc)
        outcome.hit = True
        outcome.first_prefetch_use = first_use
        outcome.ready_cycle = line.ready_cycle
        outcome.line_pc = line.pc
        return outcome

    def fill(
        self,
        address: int,
        pc: int | None = None,
        is_write: bool = False,
        prefetched: bool = False,
        ready_cycle: float = 0.0,
        now: float = 0.0,
    ) -> EvictionInfo | None:
        """Insert a line (demand fill or prefetch fill); return the victim, if any.

        The returned victim is the cache's scratch :class:`EvictionInfo`
        (see class docs).
        """

        set_index, tag = self.locate(address)
        existing = self._tag_maps[set_index].get(tag)
        if existing is not None:
            # Re-filling a resident line (e.g. a prefetch racing a demand
            # fill): refresh flags without evicting anything.
            line = self._sets[set_index][existing]
            line.dirty = line.dirty or is_write
            if prefetched and not line.prefetched:
                line.prefetched = True
                line.used_since_prefetch = False
                line.ready_cycle = ready_cycle
            self.policy.on_hit(set_index, existing, pc)
            return None
        if prefetched:
            self.stats.prefetch_fills += 1
        way, victim_info = self._choose_victim(set_index)
        line = self._sets[set_index][way]
        line.valid = True
        line.tag = tag
        line.dirty = is_write
        line.prefetched = prefetched
        line.used_since_prefetch = False
        line.pc = pc
        line.ready_cycle = ready_cycle
        line.fill_time = now
        self._tag_maps[set_index][tag] = way
        self.policy.on_fill(set_index, way, pc)
        return victim_info

    def _candidate_ways(self, set_index: int):
        """Ways eligible to hold data; the partitioned L3 narrows this.

        Returns a shared tuple — callers must not mutate it (none do).
        """

        return self._all_ways

    def _choose_victim(self, set_index: int) -> tuple[int, EvictionInfo | None]:
        candidates = self._candidate_ways(set_index)
        # Valid lines always live within the candidate ways (the partitioned
        # L3 evicts data out of ways it reserves), so the tag map's size says
        # whether an invalid way exists at all — a full set, the steady
        # state, skips the scan entirely.
        if len(self._tag_maps[set_index]) < len(candidates):
            ways = self._sets[set_index]
            for way in candidates:
                if not ways[way].valid:
                    return way, None
        way = self.policy.victim(set_index, candidates)
        return way, self._evict(set_index, way)

    def _evict(self, set_index: int, way: int) -> EvictionInfo:
        line = self._sets[set_index][way]
        stats = self.stats
        address = (line.tag * self.num_sets + set_index) * self.line_size
        prefetched_unused = line.prefetched and not line.used_since_prefetch
        if prefetched_unused:
            stats.prefetched_evicted_unused += 1
        if line.dirty:
            stats.writebacks += 1
        info = self._scratch_eviction
        info.address = address
        info.dirty = line.dirty
        info.prefetched_unused = prefetched_unused
        info.pc = line.pc
        del self._tag_maps[set_index][line.tag]
        line.reset()
        self.policy.on_invalidate(set_index, way)
        return info

    def invalidate(self, address: int) -> bool:
        """Remove the line for ``address`` if present; return whether it was."""

        set_index, tag = self.locate(address)
        way = self._tag_maps[set_index].get(tag)
        if way is None:
            return False
        self.stats.invalidations += 1
        del self._tag_maps[set_index][tag]
        self._sets[set_index][way].reset()
        self.policy.on_invalidate(set_index, way)
        return True

    def mark_dirty(self, address: int) -> bool:
        """Mark the line dirty if present (used for write-back propagation)."""

        line = self.get_line(address)
        if line is None:
            return False
        line.dirty = True
        return True

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name}, {self.size_bytes}B, "
            f"{self.assoc}-way, {self.num_sets} sets)"
        )
