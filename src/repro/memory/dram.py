"""DRAM model: latency, traffic accounting, bandwidth contention and energy.

The paper's headline efficiency claims are expressed in DRAM traffic
(figure 11: Triangel +10% over baseline vs +28.5% for Triage) and in a
simple energy model where a DRAM access costs 25 units and an L3 access one
unit (section 6.2).  This module provides the DRAM side of both.

The bandwidth model is a single-server queue: each access occupies the
channel for ``occupancy_cycles``; an access that arrives while the channel
is busy waits.  For single-core runs at the paper's intensity this adds
little, but in the multiprogrammed experiments (figure 16) it is what makes
misplaced aggression (Triage-Deg4) hurt.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DramStats:
    """Raw DRAM event counters."""

    demand_reads: int = 0
    writes: int = 0
    prefetch_fills: int = 0
    total_wait_cycles: float = 0.0

    @property
    def total_accesses(self) -> int:
        return self.demand_reads + self.writes + self.prefetch_fills

    def reset(self) -> None:
        self.demand_reads = 0
        self.writes = 0
        self.prefetch_fills = 0
        self.total_wait_cycles = 0.0


@dataclass
class DramModel:
    """Latency/traffic/energy model of the memory controller + LPDDR5 device.

    Parameters
    ----------
    latency_cycles:
        Idle-channel access latency seen by the L3 (row activation + CAS +
        transfer), in core cycles.
    occupancy_cycles:
        Channel occupancy per access; sets the maximum sustainable bandwidth.
    energy_per_access:
        Energy units per DRAM access; the paper uses 25 with the L3 at 1.
    """

    latency_cycles: float = 160.0
    occupancy_cycles: float = 8.0
    energy_per_access: float = 25.0
    stats: DramStats = field(default_factory=DramStats)
    _next_free_cycle: float = field(default=0.0, repr=False)

    def access(
        self,
        now: float,
        *,
        is_write: bool = False,
        is_prefetch: bool = False,
    ) -> float:
        """Record an access starting at ``now``; return its total latency."""

        wait = max(0.0, self._next_free_cycle - now)
        start = now + wait
        self._next_free_cycle = start + self.occupancy_cycles
        self.stats.total_wait_cycles += wait
        if is_write:
            self.stats.writes += 1
        elif is_prefetch:
            self.stats.prefetch_fills += 1
        else:
            self.stats.demand_reads += 1
        return wait + self.latency_cycles

    @property
    def total_accesses(self) -> int:
        return self.stats.total_accesses

    @property
    def energy(self) -> float:
        """Total DRAM dynamic energy in the paper's abstract units."""

        return self.stats.total_accesses * self.energy_per_access

    def reset(self) -> None:
        self.stats.reset()
        self._next_free_cycle = 0.0
