"""DRAM model: latency, traffic accounting, bandwidth contention and energy.

The paper's headline efficiency claims are expressed in DRAM traffic
(figure 11: Triangel +10% over baseline vs +28.5% for Triage) and in a
simple energy model where a DRAM access costs 25 units and an L3 access one
unit (section 6.2).  This module provides the DRAM side of both.

The bandwidth model is a single-server queue: each access occupies the
channel for ``occupancy_cycles``; an access that arrives while the channel
is busy waits.  For single-core runs at the paper's intensity this adds
little, but in the multiprogrammed experiments (figure 16) it is what makes
misplaced aggression (Triage-Deg4) hurt.

Counter accounting is **accumulator-batched**: :meth:`DramModel.access`
updates four flat slots on the model itself (three integer event counts and
the float wait total) instead of reaching through a stats object per access.
The :attr:`DramModel.stats` property flushes those accumulators into the
long-form :class:`DramStats` on demand, so every observation point — the
engine's ``_finalise``, the sharded kernel's counter snapshots, the tests —
still reads the same dataclass it always did, while the hot path pays one
slot store per event.  Flushing is assignment (not addition), so reading
``stats`` mid-run any number of times is idempotent and the flushed values
are bit-identical to the per-access bookkeeping they replace: the ``wait``
additions happen in the same order on the accumulator as they previously
did on ``stats.total_wait_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    """Raw DRAM event counters."""

    demand_reads: int = 0
    writes: int = 0
    prefetch_fills: int = 0
    total_wait_cycles: float = 0.0

    @property
    def total_accesses(self) -> int:
        return self.demand_reads + self.writes + self.prefetch_fills

    def reset(self) -> None:
        self.demand_reads = 0
        self.writes = 0
        self.prefetch_fills = 0
        self.total_wait_cycles = 0.0


class DramModel:
    """Latency/traffic/energy model of the memory controller + LPDDR5 device.

    Parameters
    ----------
    latency_cycles:
        Idle-channel access latency seen by the L3 (row activation + CAS +
        transfer), in core cycles.
    occupancy_cycles:
        Channel occupancy per access; sets the maximum sustainable bandwidth.
    energy_per_access:
        Energy units per DRAM access; the paper uses 25 with the L3 at 1.
    """

    __slots__ = (
        "latency_cycles",
        "occupancy_cycles",
        "energy_per_access",
        "_stats",
        "_next_free_cycle",
        "_demand_reads",
        "_writes",
        "_prefetch_fills",
        "_wait_cycles",
    )

    def __init__(
        self,
        latency_cycles: float = 160.0,
        occupancy_cycles: float = 8.0,
        energy_per_access: float = 25.0,
    ) -> None:
        self.latency_cycles = latency_cycles
        self.occupancy_cycles = occupancy_cycles
        self.energy_per_access = energy_per_access
        self._stats = DramStats()
        self._next_free_cycle = 0.0
        # Batched event accumulators — see the module docstring.  These are
        # the authoritative counters; ``self._stats`` is a flush target.
        self._demand_reads = 0
        self._writes = 0
        self._prefetch_fills = 0
        self._wait_cycles = 0.0

    def access(
        self,
        now: float,
        *,
        is_write: bool = False,
        is_prefetch: bool = False,
    ) -> float:
        """Record an access starting at ``now``; return its total latency."""

        wait = max(0.0, self._next_free_cycle - now)
        start = now + wait
        self._next_free_cycle = start + self.occupancy_cycles
        self._wait_cycles += wait
        if is_write:
            self._writes += 1
        elif is_prefetch:
            self._prefetch_fills += 1
        else:
            self._demand_reads += 1
        return wait + self.latency_cycles

    @property
    def stats(self) -> DramStats:
        """The event counters, with the batched accumulators flushed in."""

        stats = self._stats
        stats.demand_reads = self._demand_reads
        stats.writes = self._writes
        stats.prefetch_fills = self._prefetch_fills
        stats.total_wait_cycles = self._wait_cycles
        return stats

    @property
    def total_accesses(self) -> int:
        return self._demand_reads + self._writes + self._prefetch_fills

    @property
    def energy(self) -> float:
        """Total DRAM dynamic energy in the paper's abstract units."""

        return self.total_accesses * self.energy_per_access

    def reset(self) -> None:
        self._demand_reads = 0
        self._writes = 0
        self._prefetch_fills = 0
        self._wait_cycles = 0.0
        self._stats.reset()
        self._next_free_cycle = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DramModel(latency_cycles={self.latency_cycles!r}, "
            f"occupancy_cycles={self.occupancy_cycles!r}, "
            f"energy_per_access={self.energy_per_access!r}, "
            f"stats={self.stats!r})"
        )
