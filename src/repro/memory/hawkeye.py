"""HawkEye replacement (Jain & Lin, ISCA 2016), as used by Triage.

Triage uses HawkEye to prioritise frequently reused Markov-table entries
when the partition is space-constrained (paper section 3.3).  HawkEye
consists of:

* **OPTgen** — for a small number of sampled sets, an occupancy vector over a
  sliding window of recent accesses determines whether Belady's optimal
  policy (MIN) *would have* cached each reused line;
* a **PC-based predictor** of 3-bit saturating counters, trained positively
  when OPTgen says MIN would have hit and negatively otherwise;
* an insertion/promotion scheme layered on RRIP state: lines from
  positively-classified PCs ("cache friendly") are inserted with RRPV 0 and
  age normally, lines from negatively-classified PCs are inserted with the
  maximum RRPV so they are evicted first.

The paper observes that with a 1 MiB Markov budget HawkEye gains only ~0.25%
over LRU, and only matters when capacity is artificially constrained to
256 KiB (section 3.3, footnote 4); Triangel therefore drops it for SRRIP.
The replacement-study benchmark reproduces that comparison.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.memory.replacement import ReplacementPolicy
from repro.utils.hashing import mix64


class OptGen:
    """Occupancy-vector model of Belady's MIN for one sampled set.

    For each access we remember its position in a circular history.  When an
    address is re-accessed we check whether, in every quantum between the
    previous access and now, the modelled cache still had spare capacity; if
    so MIN would have kept the line (a "MIN hit") and we bump occupancy over
    that interval.
    """

    def __init__(self, capacity: int, history_length: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.history_length = history_length
        self._occupancy = [0] * history_length
        self._last_access: dict[int, int] = {}
        self._time = 0

    def access(self, address: int) -> bool:
        """Record an access; return ``True`` if MIN would have hit."""

        now = self._time
        self._time += 1
        previous = self._last_access.get(address)
        self._last_access[address] = now
        if previous is None or now - previous >= self.history_length:
            self._slide(now)
            return False
        hit = all(
            self._occupancy[slot % self.history_length] < self.capacity
            for slot in range(previous, now)
        )
        if hit:
            for slot in range(previous, now):
                self._occupancy[slot % self.history_length] += 1
        self._slide(now)
        return hit

    def _slide(self, now: int) -> None:
        # The slot we are about to reuse (one full window ahead) is cleared so
        # the circular buffer behaves like a sliding window.
        self._occupancy[now % self.history_length] = 0


class HawkEyePredictor:
    """PC-indexed predictor of cache friendliness (3-bit counters)."""

    def __init__(self, counter_bits: int = 3, table_size: int = 2048) -> None:
        self.maximum = (1 << counter_bits) - 1
        self.table_size = table_size
        self._counters: defaultdict[int, int] = defaultdict(lambda: self.maximum // 2 + 1)

    def _index(self, pc: int) -> int:
        return mix64(pc) % self.table_size

    def train(self, pc: int, opt_hit: bool) -> None:
        index = self._index(pc)
        value = self._counters[index]
        if opt_hit:
            self._counters[index] = min(self.maximum, value + 1)
        else:
            self._counters[index] = max(0, value - 1)

    def is_friendly(self, pc: int) -> bool:
        return self._counters[self._index(pc)] > self.maximum // 2


class HawkEyePolicy(ReplacementPolicy):
    """HawkEye layered on per-way RRPV state.

    ``sample_period`` controls which sets feed OPTgen; the paper's HawkEye
    uses 64 sampled sets out of the full cache, which we approximate by
    sampling every ``num_sets // 64`` th set (at least every set for small
    caches, which only improves fidelity).
    """

    MAX_RRPV = 7

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        sampled_sets: int = 64,
        optgen_history: int = 128,
    ) -> None:
        super().__init__(num_sets, assoc)
        self._rrpv = [[self.MAX_RRPV] * assoc for _ in range(num_sets)]
        self._line_pc = [[None] * assoc for _ in range(num_sets)]
        self._predictor = HawkEyePredictor()
        period = max(1, num_sets // max(1, sampled_sets))
        self._sampled = {s for s in range(num_sets) if s % period == 0}
        self._optgen = {s: OptGen(assoc, optgen_history) for s in self._sampled}

    # -- sampling ---------------------------------------------------------
    def observe(self, set_index: int, address: int, pc: int | None) -> None:
        """Feed a sampled access into OPTgen and train the predictor.

        The owning cache calls this for every access (hit or miss) before
        updating replacement state, which matches HawkEye's structure where
        the sampler sees the full access stream of the sampled sets.
        """

        if pc is None or set_index not in self._sampled:
            return
        opt_hit = self._optgen[set_index].access(address)
        self._predictor.train(pc, opt_hit)

    # -- replacement interface -------------------------------------------
    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._line_pc[set_index][way] = pc
        if pc is not None and self._predictor.is_friendly(pc):
            self._rrpv[set_index][way] = 0
        else:
            self._rrpv[set_index][way] = self.MAX_RRPV

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        line_pc = self._line_pc[set_index][way]
        relevant_pc = pc if pc is not None else line_pc
        if relevant_pc is not None and self._predictor.is_friendly(relevant_pc):
            self._rrpv[set_index][way] = 0
        # Cache-averse lines are never promoted above friendly lines: leave
        # their RRPV at the maximum.

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        rrpvs = self._rrpv[set_index]
        best = max(candidates, key=lambda way: rrpvs[way])
        if rrpvs[best] < self.MAX_RRPV:
            # Age friendly lines (bounded, unlike true HawkEye's detrain step,
            # which additionally punishes the evicted PC — done below).
            for way in candidates:
                if rrpvs[way] < self.MAX_RRPV - 1:
                    rrpvs[way] += 1
        evicted_pc = self._line_pc[set_index][best]
        if evicted_pc is not None and rrpvs[best] < self.MAX_RRPV:
            # Evicting a line HawkEye wanted to keep: negative feedback.
            self._predictor.train(evicted_pc, opt_hit=False)
        return best

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.MAX_RRPV
        self._line_pc[set_index][way] = None

    def is_friendly(self, pc: int) -> bool:
        """Expose the predictor's classification (used in tests)."""

        return self._predictor.is_friendly(pc)
