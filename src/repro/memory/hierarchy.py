"""The composed L1D → L2 → L3 → DRAM hierarchy.

This is the substrate every experiment runs on.  It mirrors the paper's
setup (table 2): per-core L1D and L2, a shared partitioned L3 whose ways can
be reserved for Markov metadata, and DRAM behind it.  Demand accesses walk
down the hierarchy and fill upwards; temporal prefetches fill into the L2
(section 5: "Both prefetch into the L2"); the stride prefetcher at the L1
fills into the L1 and L2.

Timeliness is modelled through per-line ``ready_cycle``:  a prefetch issued
at cycle *t* for a line that hits in the L3 becomes usable at
``t + markov_latency + l3_latency``; one that must come from DRAM at
``t + markov_latency + l3_latency + dram_latency``.  A demand access that
arrives before the line is ready stalls for the difference, so late (but
correct) prefetches recover only part of the miss latency — exactly the
effect Triangel's lookahead-2 and degree-4 aggression exist to fix.

Both demand and prefetch entry points take an optional ``out`` result to
mutate instead of allocating: the execution kernels pass one scratch
:class:`DemandResult`/:class:`PrefetchFillResult` per run, so the hot path
allocates nothing per access.  Without ``out`` a fresh result is returned,
which is what tests and interactive exploration want.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import line_address
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.partitioned_cache import PartitionedCache


@dataclass
class HierarchyParams:
    """Geometry and latency parameters of the cache hierarchy.

    Defaults are the paper's table 2 scaled down by
    :meth:`repro.sim.config.SystemConfig.scaled`; the raw values here are
    the "sim scale" defaults used by tests.
    """

    l1_size: int = 4 * 1024
    l1_assoc: int = 4
    l2_size: int = 16 * 1024
    l2_assoc: int = 8
    l3_size: int = 64 * 1024
    l3_assoc: int = 16
    line_size: int = 64
    l1_latency: float = 4.0
    l2_latency: float = 9.0
    l3_latency: float = 20.0
    l1_replacement: str = "plru"
    l2_replacement: str = "lru"
    l3_replacement: str = "lru"
    max_markov_ways: int = 8
    dram_latency: float = 160.0
    dram_occupancy: float = 8.0
    dram_energy_per_access: float = 25.0
    l3_energy_per_access: float = 1.0


@dataclass(slots=True)
class DemandResult:
    """Outcome of one demand access as seen by the core."""

    level: str
    latency: float
    line_address: int
    l2_miss: bool = False
    l2_prefetch_first_use: bool = False
    l1_prefetch_first_use: bool = False
    late_prefetch_stall: float = 0.0


@dataclass(slots=True)
class PrefetchFillResult:
    """Outcome of issuing a prefetch fill into the hierarchy."""

    already_present: bool
    from_dram: bool
    ready_cycle: float
    latency: float


@dataclass(slots=True)
class HierarchyStats:
    """Aggregate counters that the experiment harness normalises."""

    demand_accesses: int = 0
    l2_demand_misses: int = 0
    l3_data_accesses: int = 0
    markov_accesses: int = 0
    late_prefetch_stall_cycles: float = 0.0

    def reset(self) -> None:
        self.demand_accesses = 0
        self.l2_demand_misses = 0
        self.l3_data_accesses = 0
        self.markov_accesses = 0
        self.late_prefetch_stall_cycles = 0.0


class MemoryHierarchy:
    """Three-level cache hierarchy with a partitioned L3 and DRAM.

    A hierarchy owns private L1D and L2 caches.  The L3 and DRAM may be
    shared between two hierarchies for the multiprogrammed experiments
    (figure 16); pass them explicitly in that case.
    """

    __slots__ = ("params", "l1d", "l2", "l3", "dram", "stats", "l2_fill_count")

    def __init__(
        self,
        params: HierarchyParams | None = None,
        l3: PartitionedCache | None = None,
        dram: DramModel | None = None,
    ) -> None:
        self.params = params or HierarchyParams()
        p = self.params
        self.l1d = SetAssociativeCache(
            "L1D", p.l1_size, p.l1_assoc, p.line_size, p.l1_replacement
        )
        self.l2 = SetAssociativeCache(
            "L2", p.l2_size, p.l2_assoc, p.line_size, p.l2_replacement
        )
        self.l3 = l3 or PartitionedCache(
            "L3",
            p.l3_size,
            p.l3_assoc,
            p.line_size,
            p.l3_replacement,
            max_reserved_ways=p.max_markov_ways,
        )
        self.dram = dram or DramModel(
            latency_cycles=p.dram_latency,
            occupancy_cycles=p.dram_occupancy,
            energy_per_access=p.dram_energy_per_access,
        )
        self.stats = HierarchyStats()
        self.l2_fill_count = 0

    # -- demand path ---------------------------------------------------------
    def demand_access(
        self,
        pc: int,
        address: int,
        is_write: bool = False,
        now: float = 0.0,
        out: DemandResult | None = None,
    ) -> DemandResult:
        """Perform a demand access; return the level serviced and the latency.

        When ``out`` is given it is overwritten and returned (the kernels'
        allocation-free path); otherwise a fresh result is allocated.
        """

        line = line_address(address)
        self.stats.demand_accesses += 1

        l1_outcome = self.l1d.access(line, pc, is_write, now)
        if l1_outcome.hit:
            stall = l1_outcome.ready_cycle - now
            if stall < 0.0:
                stall = 0.0
            self.stats.late_prefetch_stall_cycles += stall
            if out is None:
                return DemandResult(
                    level="l1",
                    latency=self.params.l1_latency + stall,
                    line_address=line,
                    l1_prefetch_first_use=l1_outcome.first_prefetch_use,
                    late_prefetch_stall=stall,
                )
            out.level = "l1"
            out.latency = self.params.l1_latency + stall
            out.line_address = line
            out.l2_miss = False
            out.l2_prefetch_first_use = False
            out.l1_prefetch_first_use = l1_outcome.first_prefetch_use
            out.late_prefetch_stall = stall
            return out
        return self.demand_after_l1_miss(line, pc, is_write, now, out)

    def demand_after_l1_miss(
        self,
        line: int,
        pc: int,
        is_write: bool,
        now: float,
        out: DemandResult | None = None,
    ) -> DemandResult:
        """Continue a demand access below a missing L1 (kernel entry point).

        ``line`` is the line-aligned address; the caller has already charged
        the hierarchy-level access counter and performed (and missed) the L1
        lookup.  The fused kernel inlines the L1 probe and jumps straight
        here, so the L1 fast path costs no extra calls.
        """

        p = self.params
        l2_outcome = self.l2.access(line, pc, is_write, now)
        if l2_outcome.hit:
            stall = l2_outcome.ready_cycle - now
            if stall < 0.0:
                stall = 0.0
            self.stats.late_prefetch_stall_cycles += stall
            first_use = l2_outcome.first_prefetch_use
            self._fill_l1(line, pc, is_write, now)
            if out is None:
                return DemandResult(
                    level="l2",
                    latency=p.l1_latency + p.l2_latency + stall,
                    line_address=line,
                    l2_prefetch_first_use=first_use,
                    late_prefetch_stall=stall,
                )
            out.level = "l2"
            out.latency = p.l1_latency + p.l2_latency + stall
            out.line_address = line
            out.l2_miss = False
            out.l2_prefetch_first_use = first_use
            out.l1_prefetch_first_use = False
            out.late_prefetch_stall = stall
            return out

        # The access missed the L2: this is a demand L2 miss regardless of
        # where it is eventually serviced, and it is what the temporal
        # prefetchers train on (together with tagged prefetch hits).
        stats = self.stats
        stats.l2_demand_misses += 1
        stats.l3_data_accesses += 1
        l3_outcome = self.l3.access(line, pc, is_write, now)
        base_latency = p.l1_latency + p.l2_latency + p.l3_latency
        if l3_outcome.hit:
            self._fill_l2(line, pc, is_write, now)
            self._fill_l1(line, pc, is_write, now)
            if out is None:
                return DemandResult(
                    level="l3",
                    latency=base_latency,
                    line_address=line,
                    l2_miss=True,
                )
            out.level = "l3"
            out.latency = base_latency
            out.line_address = line
            out.l2_miss = True
            out.l2_prefetch_first_use = False
            out.l1_prefetch_first_use = False
            out.late_prefetch_stall = 0.0
            return out

        dram_latency = self.dram.access(now + base_latency, is_write=False)
        self._fill_l3(line, pc, is_write, now)
        self._fill_l2(line, pc, is_write, now)
        self._fill_l1(line, pc, is_write, now)
        if out is None:
            return DemandResult(
                level="dram",
                latency=base_latency + dram_latency,
                line_address=line,
                l2_miss=True,
            )
        out.level = "dram"
        out.latency = base_latency + dram_latency
        out.line_address = line
        out.l2_miss = True
        out.l2_prefetch_first_use = False
        out.l1_prefetch_first_use = False
        out.late_prefetch_stall = 0.0
        return out

    # -- prefetch paths --------------------------------------------------------
    def prefetch_fill(
        self,
        address: int,
        pc: int | None,
        now: float,
        extra_latency: float = 0.0,
        target_level: str = "l2",
        out: PrefetchFillResult | None = None,
    ) -> PrefetchFillResult:
        """Bring ``address`` into ``target_level`` on behalf of a prefetcher.

        ``extra_latency`` is latency already incurred before the fill begins
        (e.g. the 25-cycle Markov-table lookup); it pushes back the line's
        ready time.  The L3 lookup performed to source the data is charged as
        an L3 data access; a miss there goes to DRAM and is charged as a
        prefetch fill.  ``out``, when given, is overwritten and returned.
        """

        p = self.params
        line = line_address(address)
        target = self.l2 if target_level == "l2" else self.l1d
        if target.probe(line):
            if out is None:
                return PrefetchFillResult(
                    already_present=True, from_dram=False, ready_cycle=now, latency=0.0
                )
            out.already_present = True
            out.from_dram = False
            out.ready_cycle = now
            out.latency = 0.0
            return out

        self.stats.l3_data_accesses += 1
        if self.l3.probe(line):
            # Touch replacement state so the L3 knows the line is live.
            self.l3.access(line, pc, False, now)
            latency = extra_latency + p.l3_latency
            from_dram = False
        else:
            dram_latency = self.dram.access(
                now + extra_latency + p.l3_latency, is_prefetch=True
            )
            latency = extra_latency + p.l3_latency + dram_latency
            from_dram = True
            self._fill_l3(line, pc, False, now)

        ready = now + latency
        if target_level == "l2":
            self._fill_l2(line, pc, False, now, prefetched=True, ready_cycle=ready)
        else:
            self._fill_l1(line, pc, False, now, prefetched=True, ready_cycle=ready)
            self._fill_l2(line, pc, False, now, prefetched=True, ready_cycle=ready)
        if out is None:
            return PrefetchFillResult(
                already_present=False,
                from_dram=from_dram,
                ready_cycle=ready,
                latency=latency,
            )
        out.already_present = False
        out.from_dram = from_dram
        out.ready_cycle = ready
        out.latency = latency
        return out

    def record_markov_access(self, count: int = 1) -> None:
        """Charge ``count`` Markov-table accesses against the L3 (section 5)."""

        self.stats.markov_accesses += count

    # -- partition control -------------------------------------------------
    def set_markov_ways(self, ways: int) -> None:
        """Resize the Markov partition of the L3."""

        self.l3.set_reserved_ways(ways)

    # -- aggregate metrics ---------------------------------------------------
    @property
    def total_l3_accesses(self) -> int:
        """Data accesses plus Markov-table accesses (figure 14's metric)."""

        return self.stats.l3_data_accesses + self.stats.markov_accesses

    @property
    def dram_traffic(self) -> int:
        """Total DRAM accesses (figure 11's metric)."""

        return self.dram.total_accesses

    def dynamic_energy(self) -> float:
        """Combined DRAM + L3 dynamic energy (figure 15's methodology)."""

        return (
            self.dram.energy
            + self.total_l3_accesses * self.params.l3_energy_per_access
        )

    # -- fill helpers ---------------------------------------------------------
    def _fill_l1(
        self,
        line: int,
        pc: int | None,
        is_write: bool,
        now: float,
        prefetched: bool = False,
        ready_cycle: float = 0.0,
    ) -> None:
        victim = self.l1d.fill(
            line, pc, is_write, prefetched=prefetched, ready_cycle=ready_cycle, now=now
        )
        if victim is not None and victim.dirty:
            if not self.l2.mark_dirty(victim.address):
                self.l2.fill(victim.address, victim.pc, is_write=True, now=now)

    def _fill_l2(
        self,
        line: int,
        pc: int | None,
        is_write: bool,
        now: float,
        prefetched: bool = False,
        ready_cycle: float = 0.0,
    ) -> None:
        self.l2_fill_count += 1
        victim = self.l2.fill(
            line, pc, is_write, prefetched=prefetched, ready_cycle=ready_cycle, now=now
        )
        if victim is not None and victim.dirty:
            if not self.l3.mark_dirty(victim.address):
                self._fill_l3(victim.address, victim.pc, True, now)

    def _fill_l3(
        self, line: int, pc: int | None, is_write: bool, now: float
    ) -> None:
        victim = self.l3.fill(line, pc, is_write, now=now)
        if victim is not None and victim.dirty:
            self.dram.access(now, is_write=True)

    def reset_stats(self) -> None:
        """Clear every statistics counter (cache contents are preserved)."""

        self.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.l3.stats.reset()
        self.dram.reset()
        self.l2_fill_count = 0
