"""The partitioned last-level cache.

Both Triage and Triangel store their Markov metadata in a variable-size
partition of the L3 cache: between 0 and 8 of the 16 ways of every set are
reserved for metadata, and the remaining ways hold ordinary data (paper
sections 2 and 3.2).  The Markov table itself is modelled by
:class:`repro.triage.markov_table.MarkovTable` / :class:`repro.core.
markov_table.TriangelMarkovTable`; this class models the *cost* of the
partition — the loss of data capacity — by restricting data fills to the
non-reserved ways and invalidating resident lines when the partition grows.

The partition size is chosen by the Bloom-filter sizer (Triage-ISR, section
3.5) or by Triangel's Set Dueller (section 4.7); either way the decision
arrives through :meth:`set_reserved_ways`.
"""

from __future__ import annotations

from repro.memory.cache import EvictionInfo, SetAssociativeCache
from repro.memory.replacement import ReplacementPolicy


class PartitionedCache(SetAssociativeCache):
    """A set-associative cache with a reserved metadata partition.

    Ways ``[assoc - reserved_ways, assoc)`` of every set are reserved for
    prefetcher metadata and never hold data lines.  Growing the partition
    invalidates (writing back if dirty) any data lines occupying the newly
    reserved ways; shrinking simply makes the ways available again.
    """

    __slots__ = (
        "max_reserved_ways",
        "_reserved_ways",
        "partition_resizes",
        "lines_displaced_by_partition",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int = 64,
        replacement: str | ReplacementPolicy = "lru",
        max_reserved_ways: int | None = None,
    ) -> None:
        super().__init__(name, size_bytes, assoc, line_size, replacement)
        self.max_reserved_ways = (
            assoc // 2 if max_reserved_ways is None else max_reserved_ways
        )
        if not 0 <= self.max_reserved_ways <= assoc:
            raise ValueError(
                f"max_reserved_ways {self.max_reserved_ways} outside [0, {assoc}]"
            )
        self._reserved_ways = 0
        self.partition_resizes = 0
        self.lines_displaced_by_partition = 0

    # -- partition control -------------------------------------------------
    @property
    def reserved_ways(self) -> int:
        """Number of ways per set currently reserved for Markov metadata."""

        return self._reserved_ways

    @property
    def data_ways(self) -> int:
        """Number of ways per set currently available for data."""

        return self.assoc - self._reserved_ways

    def set_reserved_ways(self, ways: int) -> list[EvictionInfo]:
        """Resize the metadata partition; return data lines displaced by growth."""

        if not 0 <= ways <= self.max_reserved_ways:
            raise ValueError(
                f"reserved ways {ways} outside [0, {self.max_reserved_ways}]"
            )
        if ways == self._reserved_ways:
            return []
        displaced: list[EvictionInfo] = []
        if ways > self._reserved_ways:
            # The newly reserved ways are the highest-indexed data ways.
            for set_index in range(self.num_sets):
                for way in range(self.assoc - ways, self.assoc - self._reserved_ways):
                    line = self._sets[set_index][way]
                    if line.valid:
                        # _evict returns the cache's scratch record; copy it,
                        # since this list outlives the next eviction.
                        info = self._evict(set_index, way)
                        displaced.append(
                            EvictionInfo(
                                address=info.address,
                                dirty=info.dirty,
                                prefetched_unused=info.prefetched_unused,
                                pc=info.pc,
                            )
                        )
            self.lines_displaced_by_partition += len(displaced)
        self._reserved_ways = ways
        self.partition_resizes += 1
        return displaced

    # -- data placement restriction -----------------------------------------
    def _candidate_ways(self, set_index: int) -> list[int]:
        return list(range(self.assoc - self._reserved_ways))

    @property
    def reserved_capacity_bytes(self) -> int:
        """Bytes of L3 currently reserved for metadata."""

        return self._reserved_ways * self.num_sets * self.line_size

    @property
    def data_capacity_bytes(self) -> int:
        """Bytes of L3 currently available for data."""

        return self.data_ways * self.num_sets * self.line_size
