"""Cache replacement policies.

The paper touches several replacement policies:

* the L3 data cache and the smaller caches use conventional policies (we
  default to LRU for data caches and tree-PLRU is available for the L1);
* Triage's Markov partition uses HawkEye (:mod:`repro.memory.hawkeye`),
  while Triangel uses the much simpler SRRIP (paper sections 3.3 and 4.8);
* the Metadata Reuse Buffer uses FIFO because its entries are accessed a
  bounded number of times and should then leave (section 4.6, footnote 9);
* section 3.3 and footnote 4 compare LRU, RRIP and HawkEye for the Markov
  partition under constrained capacity — the replacement-study benchmark
  reproduces that comparison.

All policies share one interface so that any structure in the model can be
configured with any of them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence


class ReplacementPolicy(ABC):
    """Interface for per-set replacement state.

    The owning cache calls :meth:`on_fill` when a line is inserted,
    :meth:`on_hit` when a line is re-referenced, :meth:`victim` to choose a
    way to evict (restricted to ``candidates``, which lets a partitioned
    cache exclude reserved ways), and :meth:`on_invalidate` when a line is
    removed for a reason other than replacement.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        if num_sets <= 0 or assoc <= 0:
            raise ValueError("num_sets and assoc must be positive")
        self.num_sets = num_sets
        self.assoc = assoc

    @abstractmethod
    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        """Record that a new line was inserted into ``way``."""

    @abstractmethod
    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        """Record a re-reference of the line in ``way``."""

    @abstractmethod
    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        """Choose a way to evict from ``candidates`` (all currently valid)."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Hook for policies that keep per-way state; default is a no-op."""

    def name(self) -> str:
        return type(self).__name__.replace("Policy", "")


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement via a per-set recency stack."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._stamp = 0
        self._last_use = [[-1] * assoc for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._stamp += 1
        self._last_use[set_index][way] = self._stamp

    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._touch(set_index, way)

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        # Manual scan (not min(key=...)): victim selection runs once per
        # eviction on the hot path, and the closure-per-call spelling was
        # measurable.  Ties keep the first candidate, exactly as min() did.
        if not candidates:
            raise ValueError("victim() needs at least one candidate way")
        stamps = self._last_use[set_index]
        iterator = iter(candidates)
        best = next(iterator)
        best_stamp = stamps[best]
        for way in iterator:
            stamp = stamps[way]
            if stamp < best_stamp:
                best = way
                best_stamp = stamp
        return best

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._last_use[set_index][way] = -1

    def recency_rank(self, set_index: int, way: int, candidates: Sequence[int]) -> int:
        """Return the eviction rank of ``way`` (0 = most evictable).

        Used by the Set Dueller model, which needs a unique evictability
        score per tag to infer hit rates for every possible partitioning
        (paper section 4.7, footnote 10).
        """

        stamps = self._last_use[set_index]
        ordered = sorted(candidates, key=lambda candidate: stamps[candidate])
        return ordered.index(way)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement (used by the Metadata Reuse Buffer)."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._stamp = 0
        self._fill_time = [[-1] * assoc for _ in range(num_sets)]

    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._stamp += 1
        self._fill_time[set_index][way] = self._stamp

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        # FIFO deliberately ignores re-references.
        return

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        times = self._fill_time[set_index]
        return min(candidates, key=lambda way: times[way])

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._fill_time[set_index][way] = -1


class RandomPolicy(ReplacementPolicy):
    """Uniform-random replacement, deterministic under a fixed seed."""

    def __init__(self, num_sets: int, assoc: int, seed: int = 0xC0FFEE) -> None:
        super().__init__(num_sets, assoc)
        self._rng = random.Random(seed)

    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        return

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        return

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        return candidates[self._rng.randrange(len(candidates))]


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, as used by Arm L1 caches (paper reference [3]).

    The tree is stored as a flat array of internal-node bits per set; a bit
    of 0 points to the left subtree as the "older" half.  Associativity is
    rounded up to a power of two internally; candidate filtering falls back
    to recency order among the requested candidates when the tree's choice
    is not a candidate (which happens only for the partitioned cache).
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._leaves = 1
        while self._leaves < assoc:
            self._leaves *= 2
        self._bits = [[0] * max(1, self._leaves - 1) for _ in range(num_sets)]
        # Fallback recency for candidate-restricted victim selection.
        self._lru = LRUPolicy(num_sets, assoc)

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        # The tree walk and the fallback-LRU stamp are written out inline:
        # this runs on every hit of every PLRU cache (the L1's entire hot
        # path), where the former _touch → LRU.on_hit → LRU._touch call
        # chain was measurable.
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                bits[node] = 1  # Point away from the touched (left) half.
                node = 2 * node + 1
                high = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                low = mid
        lru = self._lru
        lru._stamp += 1
        lru._last_use[set_index][way] = lru._stamp

    # Fills and explicit touches update exactly the same state.
    on_fill = on_hit
    _touch = on_hit

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            if bits[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        choice = low
        if choice in candidates:
            return choice
        return self._lru.victim(set_index, candidates)

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._lru.on_invalidate(set_index, way)


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (RRIP) [Jaleel et al., ISCA'10].

    Triangel replaces HawkEye with SRRIP for its Markov partition to save the
    13 KiB HawkEye dueller (paper section 4.8).  New lines are inserted with
    a "long" re-reference prediction (RRPV = max-1); hits promote to 0;
    victims are lines with RRPV == max, aging everyone when none exists.
    """

    def __init__(self, num_sets: int, assoc: int, rrpv_bits: int = 2) -> None:
        super().__init__(num_sets, assoc)
        if rrpv_bits <= 0:
            raise ValueError("rrpv_bits must be positive")
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv = [[self.max_rrpv] * assoc for _ in range(num_sets)]

    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._rrpv[set_index][way] = self.max_rrpv - 1

    def on_hit(self, set_index: int, way: int, pc: int | None = None) -> None:
        self._rrpv[set_index][way] = 0

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for way in candidates:
                if rrpvs[way] >= self.max_rrpv:
                    return way
            for way in candidates:
                rrpvs[way] += 1

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.max_rrpv


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: mostly-distant insertion with occasional long insertion.

    Included for completeness of the replacement study; it behaves like SRRIP
    but inserts with the maximum RRPV most of the time, which protects the
    cache against scanning workloads.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrpv_bits: int = 2,
        long_insert_probability: float = 1.0 / 32.0,
        seed: int = 0xB1BB,
    ) -> None:
        super().__init__(num_sets, assoc, rrpv_bits)
        self._probability = long_insert_probability
        self._rng = random.Random(seed)

    def on_fill(self, set_index: int, way: int, pc: int | None = None) -> None:
        if self._rng.random() < self._probability:
            self._rrpv[set_index][way] = self.max_rrpv - 1
        else:
            self._rrpv[set_index][way] = self.max_rrpv


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": TreePLRUPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
}


def make_replacement_policy(name: str, num_sets: int, assoc: int) -> ReplacementPolicy:
    """Create a replacement policy by name (``lru``, ``fifo``, ``random``,
    ``plru``, ``srrip``, ``brrip`` or ``hawkeye``)."""

    key = name.lower()
    if key == "hawkeye":
        # Imported lazily to avoid a circular import with hawkeye.py.
        from repro.memory.hawkeye import HawkEyePolicy

        return HawkEyePolicy(num_sets, assoc)
    try:
        factory = _POLICY_FACTORIES[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(_POLICY_FACTORIES) + ['hawkeye']}"
        ) from exc
    return factory(num_sets, assoc)
