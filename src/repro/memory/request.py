"""Access records exchanged between traces, the simulator and the hierarchy."""

from __future__ import annotations

import enum
from typing import NamedTuple


class AccessType(enum.Enum):
    """Classification of a memory access as seen by the hierarchy."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"


class MemoryAccess(NamedTuple):
    """A single demand memory access from the trace.

    A named tuple rather than a dataclass: the object API survives for
    tests, tooling and the reference engine, but constructing millions of
    frozen dataclasses (each ``__init__`` routed through
    ``object.__setattr__``) was one of the measured per-access costs the
    columnar hot path exists to avoid — and the named tuple makes the
    residual object path several times cheaper too.

    Attributes
    ----------
    pc:
        Program counter of the instruction performing the access.  Both
        Triage and Triangel are PC-localised (paper section 2), so the PC is
        as important to the prefetchers as the address itself.
    address:
        Physical byte address accessed.
    is_write:
        Whether the access is a store.  Stores participate in cache state but
        the temporal prefetchers train on the combined miss stream just as
        loads do.
    """

    pc: int
    address: int
    is_write: bool = False

    @property
    def access_type(self) -> AccessType:
        # Bound once at class-definition time: resolving an enum member is a
        # metaclass ``__getattr__`` walk, which must not run per access.
        return _STORE if self.is_write else _LOAD


_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
