"""Access records exchanged between traces, the simulator and the hierarchy."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessType(enum.Enum):
    """Classification of a memory access as seen by the hierarchy."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single demand memory access from the trace.

    Attributes
    ----------
    pc:
        Program counter of the instruction performing the access.  Both
        Triage and Triangel are PC-localised (paper section 2), so the PC is
        as important to the prefetchers as the address itself.
    address:
        Physical byte address accessed.
    is_write:
        Whether the access is a store.  Stores participate in cache state but
        the temporal prefetchers train on the combined miss stream just as
        loads do.
    """

    pc: int
    address: int
    is_write: bool = False

    @property
    def access_type(self) -> AccessType:
        return AccessType.STORE if self.is_write else AccessType.LOAD
