"""repro.obs — the unified telemetry layer (metrics, spans, events).

One dependency-free package gives every layer of the stack — columnar
kernel, scheduler, batch executor, result store, HTTP daemon — a shared
instrumentation vocabulary:

* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and histograms with labels; snapshot-able as a dictionary and renderable
  in Prometheus text exposition format (the daemon's ``GET /metrics``);
* :mod:`repro.obs.spans` — nestable timing spans with a thread-local stack
  and a shared no-op when disabled, so the allocation-free kernel contract
  holds with the instrumentation compiled in;
* :mod:`repro.obs.events` — an append-only, size-rotated, schema-versioned
  JSONL event log under ``<cache-dir>/obs/`` (``repro obs tail|summary``
  reads it).

**The toggle.**  Telemetry is *off* by default: every producer call is a
cheap boolean check and nothing else.  Turn it on with the
``REPRO_TELEMETRY=1`` environment variable or any simulating CLI command's
``--telemetry`` flag (:func:`set_enabled` writes through to the
environment, so lazily-spawned pool workers inherit the setting exactly
like ``REPRO_TRACE_DIR`` registrations do).  The kernels additionally keep
their hot-loop contract regardless of the toggle: they take a few coarse
clock samples per *run* — never per-access work — and report through
:func:`record_replay` after the loop ends.
"""

from __future__ import annotations

import os

from repro.obs.events import EventLog, default_log, emit, set_default_log
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.spans import (
    Span,
    add_phase,
    breakdown,
    collect,
    current_span,
    span,
)

#: Environment variable toggling telemetry for a whole process tree.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Values of :data:`TELEMETRY_ENV` that mean "on".
_TRUTHY = ("1", "true", "yes", "on")

_enabled: bool | None = None


def enabled() -> bool:
    """Whether telemetry is on (resolved from the environment once)."""

    global _enabled
    if _enabled is None:
        raw = os.environ.get(TELEMETRY_ENV, "").strip().lower()
        _enabled = raw in _TRUTHY
    return _enabled


def set_enabled(on: bool | None) -> None:
    """Turn telemetry on/off explicitly, or reset to environment resolution.

    ``True``/``False`` also write the environment variable so worker
    processes spawned later (the scheduler's lazy pool) inherit the choice;
    ``None`` clears both the cache and the variable.
    """

    global _enabled
    if on is None:
        _enabled = None
        os.environ.pop(TELEMETRY_ENV, None)
        return
    _enabled = bool(on)
    os.environ[TELEMETRY_ENV] = "1" if on else "0"


# ---------------------------------------------------------------------------
# Well-known kernel instrumentation.  Declared lazily so importing the obs
# package costs nothing; the kernels call record_replay() once per run.
# ---------------------------------------------------------------------------
_replay_metrics = None


def record_replay(
    workload: str,
    accesses: int,
    prefix_accesses: int,
    prefix_seconds: float,
    sample_seconds: float,
) -> None:
    """Report one kernel run's coarse phase sample (post-loop, O(1)).

    Called by :func:`repro.sim.kernel.run_fast` and ``run_fast_window``
    after their fused loops end — two or three ``perf_counter`` reads per
    *run* are the entire kernel-side cost.  Records the replay throughput
    counters plus the ``prefix_replay``/``sampled_window`` phases on the
    current span (or collector), which is how a job's per-phase breakdown
    learns about kernel time when execution is in-process.
    """

    if not enabled():
        return
    global _replay_metrics
    if _replay_metrics is None:
        _replay_metrics = (
            REGISTRY.counter(
                "repro_replay_accesses_total",
                "Accesses replayed by the fast kernels, by phase.",
                labels=("phase",),
            ),
            REGISTRY.counter(
                "repro_replay_seconds_total",
                "Wall seconds spent in the fast kernels, by phase.",
                labels=("phase",),
            ),
            REGISTRY.gauge(
                "repro_replay_last_accesses_per_second",
                "Sampled-window throughput of the most recent kernel run.",
            ),
        )
    accesses_total, seconds_total, last_aps = _replay_metrics
    accesses_total.inc(prefix_accesses, phase="prefix")
    accesses_total.inc(accesses, phase="sample")
    seconds_total.inc(max(prefix_seconds, 0.0), phase="prefix")
    seconds_total.inc(max(sample_seconds, 0.0), phase="sample")
    if sample_seconds > 0.0 and accesses:
        last_aps.set(accesses / sample_seconds)
    if prefix_seconds > 0.0:
        add_phase("prefix_replay", prefix_seconds, workload=workload)
    add_phase("sampled_window", sample_seconds, workload=workload)


__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TELEMETRY_ENV",
    "add_phase",
    "breakdown",
    "collect",
    "current_span",
    "default_log",
    "emit",
    "enabled",
    "record_replay",
    "set_default_log",
    "set_enabled",
    "span",
]
