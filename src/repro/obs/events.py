"""An append-only, size-rotated, schema-versioned JSONL event log.

The third leg of the telemetry layer: where metrics aggregate and spans
time, events *narrate* — one JSON object per line, in arrival order, for
the things an operator reconstructs incidents from:

* job lifecycle (``job_submitted`` / ``job_completed`` / ``job_failed`` /
  ``job_cancelled``),
* scheduler queue transitions (``task_queued`` / ``task_dispatched`` /
  ``task_done`` / ``task_abandoned``),
* store traffic (``store_hit`` / ``store_put``).

Every record carries the schema version (``"v"``), a wall-clock timestamp
(``"ts"``), and the event name (``"event"``); emitters add flat
JSON-safe fields.  Bumping :data:`SCHEMA_VERSION` is the upgrade contract:
readers skip records whose version they do not understand rather than
misparse them.

The default log lives under ``<cache-dir>/obs/events.jsonl`` (the same
``REPRO_CACHE_DIR`` resolution the result store uses), rotating to
``events.jsonl.1`` … ``.N`` when the active file exceeds ``max_bytes`` —
a long-running daemon's log is bounded at roughly
``max_bytes × (backups + 1)``.  Writes are serialised by a lock (handler
threads and the dispatcher emit concurrently) and failures degrade to
silence: telemetry must never take a simulation down.

Module-level :func:`emit` is the one-line producer API the wired layers
call; it is a no-op unless telemetry is enabled.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

#: Version stamped into every record (bump on incompatible field changes).
SCHEMA_VERSION = 1

#: Rotation threshold for the active file, in bytes.
DEFAULT_MAX_BYTES = 1_000_000

#: Rotated generations kept (``events.jsonl.1`` is the newest).
DEFAULT_BACKUPS = 3

#: Subdirectory of the cache directory that holds telemetry artifacts.
OBS_SUBDIR = "obs"

_EVENTS_FILENAME = "events.jsonl"


def default_log_path(cache_dir: str | os.PathLike | None = None) -> Path:
    """Where the process-wide event log lives for a cache directory.

    Resolution mirrors the result store's: explicit directory, then the
    ``REPRO_CACHE_DIR`` environment variable, then ``.repro_cache``.
    """

    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
    return Path(cache_dir) / OBS_SUBDIR / _EVENTS_FILENAME


class EventLog:
    """One rotating JSONL event log (see the module docstring)."""

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------
    def emit(self, event: str, **fields) -> dict:
        """Append one record; returns it (written or not — see module docs)."""

        record = {"v": SCHEMA_VERSION, "ts": time.time(), "event": event, **fields}
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._rotate_if_needed(len(line))
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line)
            except OSError:
                # Unwritable telemetry directory: drop the event silently —
                # observability must never fail the observed work.
                pass
        return record

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
            return
        oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
        oldest.unlink(missing_ok=True)
        for generation in range(self.backups - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{generation}")
            if source.exists():
                source.rename(self.path.with_name(f"{self.path.name}.{generation + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))

    # -- reading -------------------------------------------------------------
    def paths(self) -> list[Path]:
        """Existing log files, oldest first (rotated generations + active)."""

        found = [
            path
            for generation in range(self.backups, 0, -1)
            if (path := self.path.with_name(f"{self.path.name}.{generation}")).exists()
        ]
        if self.path.exists():
            found.append(self.path)
        return found

    def read(self) -> list[dict]:
        """Every parseable current-schema record, oldest first."""

        records: list[dict] = []
        for path in self.paths():
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line (rotation race): skip, never crash
                if not isinstance(record, dict):
                    continue
                if record.get("v") != SCHEMA_VERSION:
                    continue  # foreign schema: skip rather than misparse
                records.append(record)
        return records

    def tail(self, count: int = 20) -> list[dict]:
        """The newest ``count`` records, oldest of them first."""

        if count < 1:
            return []
        return self.read()[-count:]


# ---------------------------------------------------------------------------
# The process-wide default log (lazy; honours REPRO_CACHE_DIR at creation).
# ---------------------------------------------------------------------------
_default_log: EventLog | None = None
_default_lock = threading.Lock()


def default_log() -> EventLog:
    """The lazily-created process-wide event log."""

    global _default_log
    with _default_lock:
        if _default_log is None:
            _default_log = EventLog(default_log_path())
        return _default_log


def set_default_log(log: EventLog | None) -> EventLog | None:
    """Replace the process-wide log (tests); returns the previous one."""

    global _default_log
    with _default_lock:
        previous, _default_log = _default_log, log
    return previous


def emit(event: str, **fields) -> None:
    """Append one record to the default log — a no-op when disabled."""

    from repro.obs import enabled

    if not enabled():
        return
    default_log().emit(event, **fields)
