"""A process-local metrics registry: counters, gauges and histograms.

The registry is the numeric half of the telemetry layer (spans and the
event log are the other two): instrumented code declares a metric once —
``REGISTRY.counter("repro_store_hits_total", "…")`` — and bumps it from
wherever, with optional labels.  Two read-side views exist:

* :meth:`MetricsRegistry.snapshot` — a plain nested dictionary, what the
  Python API and tests consume;
* :meth:`MetricsRegistry.render` — the Prometheus text exposition format
  (version 0.0.4), what the ``repro serve`` daemon's ``GET /metrics``
  endpoint returns, so any Prometheus-compatible scraper can watch a
  daemon without this package growing a client dependency.

Everything is stdlib and dependency-free by design.  Metric objects are
cheap to update (one lock acquisition and a dict bump), but they are still
**not** for per-access kernel work — the kernels record one coarse sample
per run (see :func:`repro.obs.record_replay`), never per-access.

Declaring the same name twice returns the same object; redeclaring it as a
different type or with different labels raises, because two writers
disagreeing on a metric's identity is a bug worth failing loudly on.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

#: Histogram bucket upper bounds used when a declaration does not choose
#: its own: tuned for request/simulation latencies in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0,
)

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus-style number: integers bare, floats via ``repr``."""

    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""

    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(names: tuple[str, ...], values: tuple, extra: str = "") -> str:
    """The ``{a="x",b="y"}`` suffix for one series (empty when unlabelled)."""

    pairs = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared machinery: label validation and the per-series value table."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Iterable[str]) -> None:
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        for label in self.label_names:
            if not _LABEL.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def labelled(self) -> list[tuple[tuple, object]]:
        """Every series as ``(label_values, value)``, insertion-ordered."""

        with self._lock:
            return list(self._series.items())


class Counter(_Metric):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""

        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """The labelled series' current value (0 when never incremented)."""

        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A value that can go up and down (queue depths, in-flight counts)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""

        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""

        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the labelled series."""

        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """The labelled series' current value (0 when never set)."""

        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    """One label set's bucket counts, sum and count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, buckets: int) -> None:
        self.counts = [0] * (buckets + 1)  # +1 for the +Inf bucket
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Observations bucketed by upper bound (latencies, durations)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""

        key = self._key(labels)
        slot = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.counts[slot] += 1
            series.total += value
            series.count += 1


class MetricsRegistry:
    """Declares and owns metrics; snapshot-able and Prometheus-renderable.

    One module-level :data:`REGISTRY` serves the whole process; tests build
    private registries so golden output never depends on what other code
    recorded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _declare(self, cls, name: str, help: str, labels: Iterable[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        """Declare (or fetch) a counter."""

        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        """Declare (or fetch) a gauge."""

        return self._declare(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Declare (or fetch) a histogram."""

        return self._declare(Histogram, name, help, labels, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        """Every declared metric, in declaration order."""

        with self._lock:
            return list(self._metrics.values())

    def reset(self) -> None:
        """Drop every declared metric (tests only)."""

        with self._lock:
            self._metrics.clear()

    # -- read-side views -----------------------------------------------------
    def snapshot(self) -> dict:
        """Every metric's series as a JSON-safe nested dictionary."""

        out: dict = {}
        for metric in self.metrics():
            series_list = []
            for values, series in metric.labelled():
                labels = dict(zip(metric.label_names, values))
                if isinstance(series, _HistogramSeries):
                    cumulative, running = {}, 0
                    for bound, count in zip(metric.buckets, series.counts):
                        running += count
                        cumulative[str(bound)] = running
                    cumulative["+Inf"] = running + series.counts[-1]
                    series_list.append(
                        {
                            "labels": labels,
                            "count": series.count,
                            "sum": series.total,
                            "buckets": cumulative,
                        }
                    )
                else:
                    series_list.append({"labels": labels, "value": series})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series_list,
            }
        return out

    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Series order is deterministic: metrics in declaration order, series
        sorted by label values — so golden tests can compare exact text.
        """

        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            series = sorted(metric.labelled(), key=lambda item: item[0])
            for values, value in series:
                if isinstance(value, _HistogramSeries):
                    running = 0
                    for bound, count in zip(metric.buckets, value.counts):
                        running += count
                        suffix = _render_labels(
                            metric.label_names, values, f'le="{_format_value(bound)}"'
                        )
                        lines.append(f"{metric.name}_bucket{suffix} {running}")
                    running += value.counts[-1]
                    inf = _render_labels(metric.label_names, values, 'le="+Inf"')
                    lines.append(f"{metric.name}_bucket{inf} {running}")
                    plain = _render_labels(metric.label_names, values)
                    lines.append(
                        f"{metric.name}_sum{plain} {_format_value(value.total)}"
                    )
                    lines.append(f"{metric.name}_count{plain} {value.count}")
                else:
                    suffix = _render_labels(metric.label_names, values)
                    lines.append(f"{metric.name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented layer records into.
REGISTRY = MetricsRegistry()
