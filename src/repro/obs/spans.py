"""Nestable timing spans with a disabled-mode no-op fast path.

A span measures one named region of work::

    from repro.obs import span

    with span("replay", trace="bench_hot"):
        with span("reduce"):
            ...

Spans nest through a thread-local stack: a span opened while another is
active becomes its child, and a finished *root* span is handed to the
thread's active collector (see :class:`collect`) so callers can attach the
whole tree — flattened by :func:`breakdown` into a ``{name: seconds}``
phase map — to whatever the work produced (the scheduler attaches it to
each job's telemetry).

When telemetry is disabled (the default), :func:`span` returns one shared
no-op object: **no allocation, no clock read, no stack traffic** — which is
what lets the allocation-free kernels keep their contract with the
instrumentation compiled in.  Work that already measured itself (the
kernels take two or three coarse clock samples per run, never per-access
work) reports through :func:`add_phase`, which records a pre-timed child
without ever having wrapped the region in a context manager.

Everything here is thread-isolated: two threads never see each other's
stacks or collectors.
"""

from __future__ import annotations

import threading
import time

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """One timed region: name, labels, duration and child spans.

    Spans are their own context managers; ``seconds`` is valid after exit.
    """

    __slots__ = ("name", "labels", "seconds", "children", "_started")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.seconds = 0.0
        self.children: list[Span] = []
        self._started = 0.0

    def __enter__(self) -> "Span":
        _stack().append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.seconds = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            sink = getattr(_local, "collector", None)
            if sink is not None:
                sink.append(self)
        return False

    def as_dict(self) -> dict:
        """The span tree as a JSON-safe dictionary."""

        data: dict = {"name": self.name, "seconds": self.seconds}
        if self.labels:
            data["labels"] = dict(self.labels)
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data


class _NoopSpan:
    """The shared disabled-mode span: every operation is free."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **labels) -> Span | _NoopSpan:
    """A context manager timing one region (the shared no-op when disabled)."""

    from repro.obs import enabled

    if not enabled():
        return _NOOP
    return Span(name, labels)


def current_span() -> Span | None:
    """The innermost active span on this thread, or ``None``."""

    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def add_phase(name: str, seconds: float, **labels) -> None:
    """Attach a pre-timed child span to the current span (or collector).

    This is how already-instrumented code (the kernels' coarse post-loop
    samples) reports into the span tree without paying for a context
    manager per phase.  A no-op when telemetry is disabled or nothing is
    listening.
    """

    from repro.obs import enabled

    if not enabled():
        return
    phase = Span(name, labels)
    phase.seconds = seconds
    parent = current_span()
    if parent is not None:
        parent.children.append(phase)
        return
    sink = getattr(_local, "collector", None)
    if sink is not None:
        sink.append(phase)


class collect:
    """Capture every root span finished on this thread while active.

    ``with collect() as spans:`` yields a list that accumulates finished
    root spans (and orphan :func:`add_phase` records).  Collectors nest:
    the previous collector is restored on exit, so a scheduler capturing
    around an inline backend call never steals spans from an outer scope.
    """

    __slots__ = ("spans", "_previous")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._previous: list | None = None

    def __enter__(self) -> list:
        self._previous = getattr(_local, "collector", None)
        _local.collector = self.spans
        return self.spans

    def __exit__(self, *exc_info) -> bool:
        _local.collector = self._previous
        return False


def breakdown(spans: list) -> dict[str, float]:
    """Flatten span trees into a ``{name: total_seconds}`` phase map.

    Children contribute under their own names (summed across repeats);
    the map is what job telemetry and tests consume — small, stable keys,
    no tree walking required downstream.
    """

    phases: dict[str, float] = {}

    def _walk(node: Span) -> None:
        phases[node.name] = phases.get(node.name, 0.0) + node.seconds
        for child in node.children:
            _walk(child)

    for root in spans:
        _walk(root)
    return {name: round(seconds, 6) for name, seconds in phases.items()}
