"""Prefetcher interfaces and the conventional stride baseline.

The paper's baseline system includes a degree-8 stride prefetcher at the L1
data cache (table 2); Triage and Triangel sit at the L2 and prefetch into it.
This package defines the interface all prefetchers share
(:class:`~repro.prefetch.base.Prefetcher`), the decision record they return
(:class:`~repro.prefetch.base.PrefetchDecision`), and the stride prefetcher
(:class:`~repro.prefetch.stride.StridePrefetcher`).
"""

from repro.prefetch.base import Prefetcher, PrefetcherStats, PrefetchDecision
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "Prefetcher",
    "PrefetcherStats",
    "PrefetchDecision",
    "StridePrefetcher",
]
