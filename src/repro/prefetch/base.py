"""Common prefetcher interface.

Every prefetcher in the model — the stride baseline, Triage and Triangel —
implements :class:`Prefetcher`.  The simulation engine invokes each
prefetcher once per demand access with the outcome of that access (which
level hit, whether the L2 missed, whether a previously prefetched line was
used for the first time) and receives back :class:`PrefetchDecision`
records describing the lines to bring in.  The engine then performs the
fills and attributes traffic and accuracy.

The hot-path spelling is :meth:`Prefetcher.observe_into`, which *emits*
decisions into a reusable :class:`DecisionBuffer` owned by the caller, so
observing an access allocates nothing; :meth:`Prefetcher.observe` wraps it
to return a plain list for tests and the readable reference engine.

Keeping the interface observation-based (rather than letting prefetchers
mutate caches directly) matches the hardware structure — prefetchers snoop
the miss stream and issue requests — and makes the prefetchers directly
unit-testable on synthetic access sequences without a full hierarchy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.memory.hierarchy import DemandResult, MemoryHierarchy


@dataclass(slots=True)
class PrefetchDecision:
    """A single prefetch the engine should issue.

    Attributes
    ----------
    address:
        Line-aligned byte address to prefetch.
    target_level:
        ``"l1"`` or ``"l2"`` — which cache the prefetch fills into.
    extra_latency:
        Latency already spent before the fill can begin (for temporal
        prefetchers this is the Markov-table lookup cost, 25 cycles in the
        paper's setup, possibly avoided when the Metadata Reuse Buffer hits).
    metadata_source:
        Where the prediction came from (``"markov"``, ``"mrb"``,
        ``"stride"``); used by tests and traffic accounting.
    """

    address: int
    target_level: str = "l2"
    extra_latency: float = 0.0
    metadata_source: str = "markov"


class DecisionBuffer:
    """A reusable sink for the prefetch decisions of one observation.

    Prefetchers emit into a buffer instead of building a fresh list per
    access: the engine clears one buffer, passes it to
    :meth:`Prefetcher.observe_into`, and iterates the emitted decisions.
    Slots are :class:`PrefetchDecision` instances recycled across
    :meth:`clear` calls, so a steady-state simulation allocates nothing per
    access — which also means a decision read from a buffer is only valid
    until that buffer's next ``clear``.  (:meth:`Prefetcher.observe`, the
    object API, copies out of a fresh buffer instead.)
    """

    __slots__ = ("_decisions", "count")

    def __init__(self) -> None:
        self._decisions: list[PrefetchDecision] = []
        self.count = 0

    def clear(self) -> None:
        """Forget the previous observation's decisions (slots are kept)."""

        self.count = 0

    def emit(
        self,
        address: int,
        target_level: str = "l2",
        extra_latency: float = 0.0,
        metadata_source: str = "markov",
    ) -> None:
        """Record one prefetch decision, reusing a slot when one is free."""

        count = self.count
        decisions = self._decisions
        if count < len(decisions):
            decision = decisions[count]
            decision.address = address
            decision.target_level = target_level
            decision.extra_latency = extra_latency
            decision.metadata_source = metadata_source
        else:
            decisions.append(
                PrefetchDecision(address, target_level, extra_latency, metadata_source)
            )
        self.count = count + 1

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[PrefetchDecision]:
        decisions = self._decisions
        for index in range(self.count):
            yield decisions[index]

    def to_list(self) -> list[PrefetchDecision]:
        """The emitted decisions as a plain list (shares the slot objects)."""

        return self._decisions[: self.count]


@dataclass(slots=True)
class PrefetcherStats:
    """Counters shared by every prefetcher."""

    triggers: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_resident: int = 0
    markov_lookups: int = 0
    markov_updates: int = 0
    markov_update_skips: int = 0
    mrb_hits: int = 0
    training_events: int = 0

    def reset(self) -> None:
        for name in (
            "triggers",
            "prefetches_issued",
            "prefetches_dropped_resident",
            "markov_lookups",
            "markov_updates",
            "markov_update_skips",
            "mrb_hits",
            "training_events",
        ):
            setattr(self, name, 0)


class Prefetcher(ABC):
    """Interface shared by the stride, Triage and Triangel prefetchers."""

    #: Declares whether this prefetcher can react to an access whose result
    #: has neither ``l2_miss`` nor ``l2_prefetch_first_use`` set.  The
    #: temporal prefetchers set this ``False`` — their ``observe_into``
    #: returns before touching *any* state (not even a counter) on such
    #: accesses — which lets the fast kernel skip the call entirely on the
    #: (dominant) L1-hit path.  A subclass may only set ``False`` if that
    #: no-op guarantee holds; the reference engine always calls everything,
    #: so the kernel-parity suite catches a false declaration.
    observes_hits: bool = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = PrefetcherStats()
        self.hierarchy: MemoryHierarchy | None = None

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Give the prefetcher access to the hierarchy it serves.

        Temporal prefetchers need this for three things: charging
        Markov-table lookups as L3 accesses, resizing the L3's metadata
        partition, and (for Triangel) checking whether a sampled target is
        already resident in the L2 (section 4.4.2).
        """

        self.hierarchy = hierarchy

    @abstractmethod
    def observe_into(
        self,
        pc: int,
        line_addr: int,
        result: DemandResult,
        now: float,
        sink: DecisionBuffer,
    ) -> None:
        """Observe one demand access; emit prefetches into ``sink``.

        This is the hot-path entry point: the execution kernels pass a
        cleared, reusable :class:`DecisionBuffer` so that observing an
        access allocates nothing.  Implementations append by calling
        ``sink.emit(...)`` and never clear the sink themselves.
        """

    def observe(
        self, pc: int, line_addr: int, result: DemandResult, now: float
    ) -> list[PrefetchDecision]:
        """Observe one demand access and return prefetches to issue.

        The object-returning convenience around :meth:`observe_into`, used
        by the readable reference engine and by tests.  Each call uses a
        fresh buffer, so the returned decisions are safe to keep.
        """

        sink = DecisionBuffer()
        self.observe_into(pc, line_addr, result, now, sink)
        return sink.to_list()

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- conveniences used by several implementations -----------------------
    def _target_resident(self, address: int) -> bool:
        """Whether ``address`` is already in the L2 (no prefetch needed)."""

        return self.hierarchy is not None and self.hierarchy.l2.probe(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (used for the no-prefetch baseline)."""

    def __init__(self) -> None:
        super().__init__("none")

    def observe_into(
        self,
        pc: int,
        line_addr: int,
        result: DemandResult,
        now: float,
        sink: DecisionBuffer,
    ) -> None:
        return None
