"""Common prefetcher interface.

Every prefetcher in the model — the stride baseline, Triage and Triangel —
implements :class:`Prefetcher`.  The simulation engine calls
:meth:`Prefetcher.observe` once per demand access with the outcome of that
access (which level hit, whether the L2 missed, whether a previously
prefetched line was used for the first time) and receives back a list of
:class:`PrefetchDecision` records describing the lines to bring in.  The
engine then performs the fills and attributes traffic and accuracy.

Keeping the interface observation-based (rather than letting prefetchers
mutate caches directly) matches the hardware structure — prefetchers snoop
the miss stream and issue requests — and makes the prefetchers directly
unit-testable on synthetic access sequences without a full hierarchy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.memory.hierarchy import DemandResult, MemoryHierarchy


@dataclass(slots=True)
class PrefetchDecision:
    """A single prefetch the engine should issue.

    Attributes
    ----------
    address:
        Line-aligned byte address to prefetch.
    target_level:
        ``"l1"`` or ``"l2"`` — which cache the prefetch fills into.
    extra_latency:
        Latency already spent before the fill can begin (for temporal
        prefetchers this is the Markov-table lookup cost, 25 cycles in the
        paper's setup, possibly avoided when the Metadata Reuse Buffer hits).
    metadata_source:
        Where the prediction came from (``"markov"``, ``"mrb"``,
        ``"stride"``); used by tests and traffic accounting.
    """

    address: int
    target_level: str = "l2"
    extra_latency: float = 0.0
    metadata_source: str = "markov"


@dataclass
class PrefetcherStats:
    """Counters shared by every prefetcher."""

    triggers: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_resident: int = 0
    markov_lookups: int = 0
    markov_updates: int = 0
    markov_update_skips: int = 0
    mrb_hits: int = 0
    training_events: int = 0

    def reset(self) -> None:
        for name in (
            "triggers",
            "prefetches_issued",
            "prefetches_dropped_resident",
            "markov_lookups",
            "markov_updates",
            "markov_update_skips",
            "mrb_hits",
            "training_events",
        ):
            setattr(self, name, 0)


class Prefetcher(ABC):
    """Interface shared by the stride, Triage and Triangel prefetchers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = PrefetcherStats()
        self.hierarchy: MemoryHierarchy | None = None

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Give the prefetcher access to the hierarchy it serves.

        Temporal prefetchers need this for three things: charging
        Markov-table lookups as L3 accesses, resizing the L3's metadata
        partition, and (for Triangel) checking whether a sampled target is
        already resident in the L2 (section 4.4.2).
        """

        self.hierarchy = hierarchy

    @abstractmethod
    def observe(
        self, pc: int, line_addr: int, result: DemandResult, now: float
    ) -> list[PrefetchDecision]:
        """Observe one demand access and return prefetches to issue."""

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- conveniences used by several implementations -----------------------
    def _target_resident(self, address: int) -> bool:
        """Whether ``address`` is already in the L2 (no prefetch needed)."""

        return self.hierarchy is not None and self.hierarchy.l2.probe(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (used for the no-prefetch baseline)."""

    def __init__(self) -> None:
        super().__init__("none")

    def observe(
        self, pc: int, line_addr: int, result: DemandResult, now: float
    ) -> list[PrefetchDecision]:
        return []
