"""PC-localised stride prefetcher (the baseline's only prefetcher).

The paper's baseline core has a degree-8 stride prefetcher at the L1 data
cache (table 2), in the tradition of Chen & Baer [10]: a table indexed by PC
records the last address and the last observed stride together with a small
confidence counter; once the same stride is observed repeatedly, the
prefetcher issues ``degree`` prefetches ahead of the current access.

Every experimental configuration in the paper — including the baseline that
all speedups are normalised to — keeps this prefetcher, so its behaviour
contributes to the baseline miss rate that defines coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import CACHE_LINE_SIZE, line_address
from repro.memory.hierarchy import DemandResult
from repro.prefetch.base import DecisionBuffer, Prefetcher
from repro.utils.hashing import mix64


@dataclass(slots=True)
class StrideEntry:
    """Per-PC stride-detection state."""

    pc_tag: int = -1
    last_address: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """Classic PC-indexed stride prefetcher.

    Parameters
    ----------
    degree:
        Number of lines prefetched ahead once the stride is confident; the
        paper's baseline uses 8.
    table_size:
        Number of PC-indexed entries.
    confidence_threshold:
        Number of consecutive confirmations of a stride before prefetching.
    target_level:
        Cache level the prefetches fill into (``"l1"`` matches the paper).
    min_stride_bytes:
        Strides smaller than this (within the same line) do not prefetch.
    """

    def __init__(
        self,
        degree: int = 8,
        table_size: int = 256,
        confidence_threshold: int = 2,
        target_level: str = "l1",
        min_stride_bytes: int = CACHE_LINE_SIZE,
    ) -> None:
        super().__init__("stride")
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.table_size = table_size
        self.confidence_threshold = confidence_threshold
        self.target_level = target_level
        self.min_stride_bytes = min_stride_bytes
        self._table = [StrideEntry() for _ in range(table_size)]
        # pc → table entry, memoised: the mapping is pure (entries mutate in
        # place, never move), workloads use few distinct PCs, and the
        # hash-and-index runs once per simulated access otherwise.  Bounded:
        # past the cap (an imported trace with a huge PC universe), new PCs
        # just pay the hash instead of growing the dict without limit.
        self._entry_memo: dict[int, StrideEntry] = {}
        self._entry_memo_cap = 16 * table_size

    def observe_into(
        self,
        pc: int,
        line_addr: int,
        result: DemandResult,
        now: float,
        sink: DecisionBuffer,
    ) -> None:
        stats = self.stats
        stats.triggers += 1
        memo = self._entry_memo
        entry = memo.get(pc)
        if entry is None:
            entry = self._table[mix64(pc) % self.table_size]
            if len(memo) < self._entry_memo_cap:
                memo[pc] = entry
        if entry.pc_tag != pc:
            entry.pc_tag = pc
            entry.last_address = line_addr
            entry.stride = 0
            entry.confidence = 0
            return

        stride = line_addr - entry.last_address
        if stride != 0 and stride == entry.stride:
            confidence = entry.confidence + 1
            cap = self.confidence_threshold + 1
            entry.confidence = confidence if confidence < cap else cap
        else:
            entry.stride = stride
            entry.confidence = 1 if stride != 0 else 0
        entry.last_address = line_addr
        stats.training_events += 1

        stride_ok = abs(entry.stride) >= self.min_stride_bytes
        should_prefetch = (
            entry.confidence >= self.confidence_threshold
            and stride_ok
            # Prefetch on misses and on first use of prefetched lines so the
            # stream keeps running ahead without re-issuing on every L1 hit.
            and (
                result.level != "l1"
                or result.l1_prefetch_first_use
                or result.l2_prefetch_first_use
            )
        )
        if not should_prefetch:
            return

        l1d = self.hierarchy.l1d if self.hierarchy is not None else None
        target_level = self.target_level
        entry_stride = entry.stride
        for distance in range(1, self.degree + 1):
            target = line_address(line_addr + entry_stride * distance)
            if target < 0:
                break
            if l1d is not None and l1d.probe(target):
                stats.prefetches_dropped_resident += 1
                continue
            sink.emit(target, target_level, 0.0, "stride")
            stats.prefetches_issued += 1
