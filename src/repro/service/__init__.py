"""The service layer: one shared scheduling core for CLI and daemon.

This package turns the experiment layer's batch compute engine (specs →
executor → content-hashed store) into something many concurrent clients can
share:

* :mod:`repro.service.backends` — the :class:`~repro.service.backends.
  WorkerBackend` protocol behind which execution runs (in the scheduler's
  dispatch thread, or on a process pool), so "where work runs" is a
  pluggable policy rather than executor code;
* :mod:`repro.service.scheduler` — the :class:`~repro.service.scheduler.
  Scheduler`: a priority job queue over spec batches with per-client
  quotas, cooperative cancellation of not-yet-started specs, and in-flight
  deduplication so concurrent jobs never execute the same spec twice.  The
  CLI's one-shot :class:`~repro.experiments.parallel.BatchExecutor` is a
  thin wrapper over one of these;
* :mod:`repro.service.requests` — parsing/compiling HTTP job requests
  (``run``/``multiprogram``/``study``/``explore``) into spec batches plus a
  finalize step that reduces results into a JSON payload;
* :mod:`repro.service.manifest` — the run-manifest schema every completed
  job carries (request, spec digests, code-version salt, store
  hit/miss/shared provenance) and its round-trip verification;
* :mod:`repro.service.server` — the ``repro serve`` daemon: a stdlib
  ``ThreadingHTTPServer`` exposing ``POST /jobs``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/result``, ``POST /jobs/<id>/cancel``, ``GET /healthz``
  and ``GET /store/stats``.

The thin Python client for the HTTP API lives in :mod:`repro.client`.
"""

# Re-exports resolve lazily: the experiment layer's one-shot executor wraps
# the scheduler, so an eager package import here would cycle back through
# requests → runner → parallel → scheduler.  Lazy resolution also keeps
# `import repro.experiments` from dragging in the HTTP server machinery.
_EXPORTS = {
    "InlineBackend": "repro.service.backends",
    "ProcessPoolBackend": "repro.service.backends",
    "WorkerBackend": "repro.service.backends",
    "backend_for_jobs": "repro.service.backends",
    "job_manifest": "repro.service.manifest",
    "spec_from_payload": "repro.service.manifest",
    "verify_manifest": "repro.service.manifest",
    "compile_request": "repro.service.requests",
    "Job": "repro.service.scheduler",
    "QuotaExceededError": "repro.service.scheduler",
    "Scheduler": "repro.service.scheduler",
    "build_server": "repro.service.server",
    "serve": "repro.service.server",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "InlineBackend",
    "Job",
    "ProcessPoolBackend",
    "QuotaExceededError",
    "Scheduler",
    "WorkerBackend",
    "backend_for_jobs",
    "build_server",
    "compile_request",
    "job_manifest",
    "serve",
    "spec_from_payload",
    "verify_manifest",
]
