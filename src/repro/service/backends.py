"""Worker backends: where the scheduler's tasks actually execute.

The :class:`~repro.service.scheduler.Scheduler` never runs a simulation
itself — it hands picklable ``(fn, *args)`` calls to a
:class:`WorkerBackend` and consumes the returned futures.  Two backends
ship:

* :class:`InlineBackend` runs each call synchronously in the dispatch
  thread (the ``jobs == 1`` policy — no pool spawn cost, deterministic
  ordering);
* :class:`ProcessPoolBackend` fans calls out to a lazily created
  ``ProcessPoolExecutor`` (the ``jobs > 1`` policy — the pool spawns on
  the first submitted call, so a fully store-satisfied batch never pays
  for worker processes).

Anything satisfying the protocol — a remote-worker pool, a cluster client —
slots in without the scheduler changing: the backend is a constructor
argument, not executor code.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Protocol, runtime_checkable


@runtime_checkable
class WorkerBackend(Protocol):
    """What the scheduler needs from an execution substrate.

    ``slots`` caps how many submitted calls may be in flight at once (the
    scheduler's dispatch loop never exceeds it); :meth:`submit` returns a
    ``concurrent.futures.Future`` resolving to the call's result; and
    :meth:`close` releases whatever the backend holds.  ``fn`` and its
    arguments must be picklable — process-based backends ship them to
    workers exactly as the batch executor always has.
    """

    slots: int

    def submit(self, fn, /, *args) -> Future:
        """Run ``fn(*args)`` and return a future for its result."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        ...  # pragma: no cover - protocol


class InlineBackend:
    """Runs every call synchronously in the submitting (dispatch) thread.

    The returned future is already resolved, so the scheduler's completion
    path runs immediately — serial execution with zero thread or process
    overhead, exactly like the old in-process executor path.
    """

    slots = 1

    def submit(self, fn, /, *args) -> Future:
        """Execute ``fn(*args)`` now; the future carries result or error."""

        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - relayed via the future
            future.set_exception(error)
        return future

    def close(self) -> None:
        """Nothing to release."""


class ProcessPoolBackend:
    """Fans calls out to ``jobs`` worker processes (created lazily).

    The pool spawns on the first :meth:`submit`, so schedulers whose every
    spec is satisfied from the store never pay for worker processes —
    matching the old executor's "don't spawn a pool you won't use" rule.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be at least 1, got {jobs}")
        self.slots = int(jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def submit(self, fn, /, *args) -> Future:
        """Submit ``fn(*args)`` to the (lazily created) process pool."""

        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.slots)
            pool = self._pool
        return pool.submit(fn, *args)

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight work to finish."""

        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def backend_for_jobs(jobs: int) -> WorkerBackend:
    """The default backend for a worker count: inline at 1, a pool above."""

    if jobs < 1:
        raise ValueError(f"worker count must be at least 1, got {jobs}")
    return InlineBackend() if jobs == 1 else ProcessPoolBackend(jobs)
