"""Run manifests: the provenance record every completed job carries.

A manifest is the service's answer to "what exactly produced this result?".
It captures the original request, the canonical form *and* content digest of
every spec the job resolved, the code-version salt those digests were
computed under, and how each spec was satisfied (store hit, fresh execution,
or shared with a concurrently running job).  ``GET /jobs/<id>/result``
returns it alongside the reduced tables, and the smoke tests in CI assert
on its ``store`` block (e.g. *zero re-executions against a warm store*).

The canonical spec dictionaries are the same JSON
:meth:`~repro.experiments.jobs.RunSpec.as_dict` forms that key the result
store, so a manifest round-trips: :func:`spec_from_payload` rebuilds the
frozen spec objects, and :func:`verify_manifest` checks that every recorded
digest still matches what the rebuilt spec hashes to under the current
code version.  A verification failure means the result was produced by
different code (or the manifest was edited) — exactly the staleness the
store's version salt guards against, surfaced at the API boundary.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping

from repro.experiments.jobs import (
    MultiProgramSpec,
    RunSpec,
    _freeze,
    code_version,
)
from repro.experiments.store import ResultStore, Spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.scheduler import Job

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


def spec_payload(spec: Spec) -> dict:
    """One manifest entry for a spec: digest + kind + canonical form."""

    data = spec.as_dict()
    return {"digest": spec.content_hash(), "kind": data["kind"], "spec": data}


def spec_from_payload(payload: Mapping) -> Spec:
    """Rebuild the frozen spec a manifest entry (or job request) describes.

    Accepts the canonical :meth:`~repro.experiments.jobs.RunSpec.as_dict` /
    :meth:`~repro.experiments.jobs.MultiProgramSpec.as_dict` form.  The
    rebuild is exact — freezing the thawed trees restores the original
    tuples, and JSON floats round-trip bit-for-bit — so
    ``spec_from_payload(spec.as_dict()).content_hash() == spec.content_hash()``
    holds for every spec, which is what manifest verification relies on.
    """

    data = dict(payload)
    kind = data.pop("kind", "run")
    if kind == "run":
        return RunSpec(
            workload=data["workload"],
            configuration=data["configuration"],
            system=_freeze(data["system"]),
            trace_overrides=_freeze(data.get("trace_overrides") or {}),
            warmup_fraction=data.get("warmup_fraction", 0.4),
            max_accesses=data.get("max_accesses"),
            config_params=_freeze(data.get("config_params") or {}),
            trace_digests=_freeze(data.get("trace_digests") or {}),
            shards=int(data.get("shards", 1)),
            shard_overlap=data.get("shard_overlap", "warmup"),
        )
    if kind == "multiprogram":
        return MultiProgramSpec(
            workloads=tuple(data["workloads"]),
            configuration=data["configuration"],
            system=_freeze(data["system"]),
            trace_overrides=_freeze(data.get("trace_overrides") or {}),
            warmup_fraction=data.get("warmup_fraction", 0.4),
            max_accesses_per_core=data.get("max_accesses_per_core"),
            share_metadata=data.get("share_metadata", True),
            config_params=_freeze(data.get("config_params") or {}),
            trace_digests=_freeze(data.get("trace_digests") or {}),
        )
    raise ValueError(f"unknown spec kind {kind!r} (expected run or multiprogram)")


def job_manifest(job: "Job", store: ResultStore | None = None) -> dict:
    """The Snippet-3-style ``manifest.json`` for one job.

    ``store`` (when given) contributes the cache path the provenance
    counters refer to.  The manifest is pure JSON — every spec appears in
    its canonical dictionary form with its content digest, salted by the
    ``code_version`` recorded at the top level.
    """

    return {
        "manifest_version": MANIFEST_VERSION,
        "generated": time.time(),
        "code_version": code_version(),
        "job": {
            "id": job.id,
            "kind": job.kind,
            "label": job.label,
            "client": job.client,
            "priority": job.priority,
            "state": job.state,
            "submitted": job.submitted,
            "finished": job.finished,
        },
        "request": dict(job.request),
        "specs": [spec_payload(spec) for spec in job.specs],
        "store": {
            "path": str(store.directory) if store is not None else None,
            "hits": job.provenance["store"],
            "executed": job.provenance["executed"],
            "shared": job.provenance["shared"],
        },
    }


def verify_manifest(manifest: Mapping) -> list[str]:
    """Check a manifest's digests against the current code; list problems.

    Returns an empty list when every spec entry rebuilds to a spec whose
    ``content_hash`` matches the recorded digest and the recorded
    ``code_version`` matches the running code.  Each problem is one
    human-readable string — suitable for printing or asserting empty.
    """

    problems: list[str] = []
    recorded = manifest.get("code_version")
    if recorded != code_version():
        problems.append(
            f"manifest code_version {recorded!r} does not match the running "
            f"code ({code_version()!r}); its results were produced by a "
            f"different simulator version"
        )
        # Digests are salted by code version, so every one would mismatch
        # for the same root cause — report the version skew once instead.
        return problems
    for position, entry in enumerate(manifest.get("specs", [])):
        try:
            spec = spec_from_payload(entry["spec"])
        except (KeyError, TypeError, ValueError) as error:
            problems.append(f"spec #{position} does not rebuild: {error}")
            continue
        if spec.content_hash() != entry.get("digest"):
            problems.append(
                f"spec #{position} ({entry.get('digest', '?')[:12]}…) digest "
                f"mismatch: rebuilt spec hashes to "
                f"{spec.content_hash()[:12]}…"
            )
    return problems
