"""Compiling HTTP job payloads into spec batches plus a reduce step.

``POST /jobs`` bodies are JSON dictionaries with a ``kind`` discriminator.
:func:`compile_request` validates one and returns a :class:`CompiledRequest`
holding

* the deduplicated list of specs the scheduler should resolve,
* a ``finalize`` callable that reduces the job's resolved results into the
  JSON payload ``GET /jobs/<id>/result`` returns, and
* the normalised request echoed into the job's manifest.

Four request kinds mirror the CLI's simulating surfaces:

``run``
    One workload under one or more configurations (``repro run``): each
    configuration compiles to a :class:`~repro.experiments.jobs.RunSpec`;
    the result maps configuration → raw statistics payload.
``multiprogram``
    One workload tuple under one configuration (figure 16's shape): a
    single :class:`~repro.experiments.jobs.MultiProgramSpec`.
``study``
    A registered study by name with the same axis overrides the CLI takes
    (``workloads``/``configs``/``set``); compiles through
    :meth:`~repro.experiments.study.Study.compile` and reduces to the
    rendered figure table.
``spec``
    Canonical spec dictionaries verbatim (the manifest's own ``spec``
    entries) — the round-trip path: a manifest fetched from one daemon can
    be resubmitted to another and deduped against its store.

An ``explore`` kind compiles a design-space search *description* (the
``repro explore describe`` plan — candidates, rungs, budget) without
simulating: it carries no specs, so the job completes instantly.

Every validation problem raises ``ValueError`` with a user-renderable
message; the HTTP layer maps those to ``400`` responses, exactly as the
CLI maps them to exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, TYPE_CHECKING

from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore, Spec, result_to_record
from repro.experiments.studies import STUDIES
from repro.sim.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.scheduler import Job

#: Request kinds :func:`compile_request` understands.
REQUEST_KINDS = ("run", "multiprogram", "study", "spec", "explore")


@dataclass
class CompiledRequest:
    """A validated job request: specs to resolve + how to reduce them."""

    kind: str
    label: str
    specs: list = field(default_factory=list)
    request: dict = field(default_factory=dict)
    #: reduces the completed job's results to the JSON result payload; runs
    #: once, after every spec resolved, outside the scheduler lock.
    finalize: Callable[["Job"], dict] | None = None


def _require(payload: Mapping, key: str, kind: str) -> object:
    value = payload.get(key)
    if value is None:
        raise ValueError(f"{kind!r} request requires a {key!r} field")
    return value


def _names(value, field_name: str) -> list[str]:
    """A non-empty list of names from a JSON list (or comma string)."""

    if isinstance(value, str):
        value = [part.strip() for part in value.split(",") if part.strip()]
    if not isinstance(value, list) or not value:
        raise ValueError(f"{field_name}: expected a non-empty list of names")
    bad = [item for item in value if not isinstance(item, str)]
    if bad:
        raise ValueError(f"{field_name}: names must be strings, got {bad}")
    return value


def _trace_overrides(payload: Mapping) -> dict:
    """Trace-generation overrides from a request (same rule as the CLI)."""

    length = payload.get("trace_length")
    if length is None:
        return {}
    if not isinstance(length, int) or length <= 0:
        raise ValueError("trace_length must be a positive integer")
    return {"length": length}


def _runner_for(payload: Mapping, store: ResultStore | None) -> ExperimentRunner:
    """The runner a ``run``/``multiprogram`` request's specs compile under."""

    return ExperimentRunner(
        system=SystemConfig.scaled(float(payload.get("scale", 1.0))),
        max_accesses=payload.get("max_accesses"),
        trace_overrides=_trace_overrides(payload),
        warmup_fraction=float(payload.get("warmup_fraction", 0.4)),
        store=store,
        shards=int(payload.get("shards", 1)),
        shard_overlap=payload.get("shard_overlap") or "warmup",
    )


def _assignments(payload: Mapping) -> dict[str, str]:
    """The ``set`` overrides as the raw strings the study layer coerces.

    JSON clients naturally send typed values (``{"scale": 0.5}``); the
    study override machinery applies its own per-axis coercion to strings,
    so everything is stringified first — ``None`` spelling the CLI's
    ``"none"``.
    """

    assignments = payload.get("set") or {}
    if not isinstance(assignments, Mapping):
        raise ValueError("'set' must be a mapping of axis/parameter overrides")
    return {
        str(key): "none" if value is None else str(value)
        for key, value in assignments.items()
    }


# -- per-kind compilers -------------------------------------------------------
def _compile_run(payload: Mapping, store: ResultStore | None) -> CompiledRequest:
    from repro.experiments.store import stats_to_payload

    workload = _require(payload, "workload", "run")
    configurations = _names(
        payload.get("configurations") or ["triage", "triangel"], "configurations"
    )
    runner = _runner_for(payload, store)
    params = payload.get("config_params") or None
    from repro.experiments.configs import CONFIGS

    cells = [
        (
            configuration,
            runner.spec_for(
                workload,
                configuration,
                params if CONFIGS.takes_params(configuration) else None,
            ),
        )
        for configuration in configurations
    ]

    def finalize(job: "Job") -> dict:
        return {
            "workload": workload,
            "results": {
                configuration: stats_to_payload(job.results[spec])
                for configuration, spec in cells
            },
        }

    return CompiledRequest(
        kind="run",
        label=f"run {workload} × {len(cells)} configuration(s)",
        specs=[spec for _, spec in cells],
        request=dict(payload),
        finalize=finalize,
    )


def _compile_multiprogram(
    payload: Mapping, store: ResultStore | None
) -> CompiledRequest:
    workloads = _names(_require(payload, "workloads", "multiprogram"), "workloads")
    configuration = _require(payload, "configuration", "multiprogram")
    runner = _runner_for(payload, store)
    spec = runner.multiprogram_spec_for(
        workloads,
        configuration,
        payload.get("max_accesses_per_core"),
        share_metadata=bool(payload.get("share_metadata", True)),
        config_params=payload.get("config_params") or None,
    )

    def finalize(job: "Job") -> dict:
        return {"result": job.results[spec].as_payload()}

    return CompiledRequest(
        kind="multiprogram",
        label=f"multiprogram {' + '.join(workloads)} × {configuration}",
        specs=[spec],
        request=dict(payload),
        finalize=finalize,
    )


def _compile_study(payload: Mapping, store: ResultStore | None) -> CompiledRequest:
    name = _require(payload, "name", "study")
    study = STUDIES.get(name).overridden(
        workloads=_names(payload["workloads"], "workloads")
        if payload.get("workloads") is not None
        else None,
        configurations=_names(payload["configs"], "configs")
        if payload.get("configs") is not None
        else None,
        assignments=_assignments(payload),
    )
    max_accesses = payload.get("max_accesses")
    if study.pairs and max_accesses is not None:
        # Same rule as the CLI: multiprogram specs cap per-core accesses.
        raise ValueError(
            f"study {name!r} runs multiprogrammed; max_accesses does not "
            f"apply — use set.max_accesses_per_core"
        )
    runner = study.make_runner(
        max_accesses=max_accesses,
        trace_overrides=_trace_overrides(payload),
        store=store,
        shards=int(payload.get("shards", 1)),
        shard_overlap=payload.get("shard_overlap") or "warmup",
    )
    specs = study.compile(runner)

    def finalize(job: "Job") -> dict:
        # Every spec is resolved and persisted by now, so the reducer's
        # second pass replays entirely from the (serial, in-process) store.
        result = study.run(runner)
        return {
            "figure": result.figure,
            "title": result.title,
            "table": result.table,
            "columns": result.columns,
            "rendered": result.rendered,
            "notes": result.notes,
        }

    return CompiledRequest(
        kind="study",
        label=f"study {name} ({len(specs)} spec(s))",
        specs=specs,
        request=dict(payload),
        finalize=finalize,
    )


def _compile_spec(payload: Mapping, store: ResultStore | None) -> CompiledRequest:
    from repro.service.manifest import spec_from_payload

    entries = payload.get("specs")
    if not isinstance(entries, list) or not entries:
        raise ValueError("'spec' request requires a non-empty 'specs' list")
    specs: list[Spec] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ValueError(f"specs[{position}]: expected a spec dictionary")
        # Accept both bare canonical forms and manifest entries ({digest,
        # kind, spec}) so a fetched manifest resubmits verbatim.
        data = entry.get("spec", entry)
        try:
            specs.append(spec_from_payload(data))
        except (KeyError, TypeError) as error:
            raise ValueError(f"specs[{position}] does not parse: {error}") from None

    def finalize(job: "Job") -> dict:
        results = {}
        for spec in job.specs:
            kind, result_payload = result_to_record(job.results[spec])
            results[spec.content_hash()] = {"kind": kind, "result": result_payload}
        return {"results": results}

    return CompiledRequest(
        kind="spec",
        label=f"spec batch ({len(specs)} spec(s))",
        specs=specs,
        request=dict(payload),
        finalize=finalize,
    )


def _compile_explore(payload: Mapping, store: ResultStore | None) -> CompiledRequest:
    from repro.experiments import explore

    space = explore.overridden_space(
        workloads=_names(payload["workloads"], "workloads")
        if payload.get("workloads") is not None
        else None,
        configurations=_names(payload["configs"], "configs")
        if payload.get("configs") is not None
        else None,
        assignments=_assignments(payload),
    )
    tuning = {
        key: payload[key]
        for key in ("screen_accesses", "eta", "confirm")
        if payload.get(key) is not None
    }
    description = explore.describe_search(
        space,
        strategy=payload.get("strategy", "halving"),
        budget=payload.get("budget"),
        seed=int(payload.get("seed", 0)),
        objective=payload.get("objective", "coverage"),
        trace_overrides=_trace_overrides(payload),
        **tuning,
    )

    return CompiledRequest(
        kind="explore",
        label=f"explore describe ({payload.get('strategy', 'halving')})",
        specs=[],
        request=dict(payload),
        finalize=lambda job: {"description": description},
    )


_COMPILERS = {
    "run": _compile_run,
    "multiprogram": _compile_multiprogram,
    "study": _compile_study,
    "spec": _compile_spec,
    "explore": _compile_explore,
}


def compile_request(
    payload: Mapping, store: ResultStore | None = None
) -> CompiledRequest:
    """Validate one job payload and compile it (see module docs).

    ``store`` is the scheduler's store: compiled specs dedupe against it,
    and study finalization replays through it.  Raises ``ValueError`` for
    anything malformed — unknown kind, missing fields, axis overrides the
    named study rejects.
    """

    if not isinstance(payload, Mapping):
        raise ValueError("job request must be a JSON object")
    kind = payload.get("kind")
    compiler = _COMPILERS.get(kind)
    if compiler is None:
        raise ValueError(
            f"unknown request kind {kind!r}; expected one of {list(_COMPILERS)}"
        )
    return compiler(payload, store)
