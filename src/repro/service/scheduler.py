"""The scheduling core shared by the one-shot CLI path and the daemon.

The :class:`Scheduler` is the lifted form of the old batch executor: callers
submit batches of specs as :class:`Job`\\ s, and one priority queue feeds a
pluggable :class:`~repro.service.backends.WorkerBackend` (in-thread at
``jobs == 1``, a process pool above).  What the executor did per batch the
scheduler does continuously, for many concurrent clients against one warm
store:

* **store first** — every submitted spec is satisfied from the
  :class:`~repro.experiments.store.ResultStore` when it can be, and every
  fresh result is persisted the moment it completes;
* **in-flight dedupe** — a spec already queued or running for another job
  is *joined*, not re-executed: the second job waits on the same task and
  records the result as ``shared``.  Concurrent clients submitting the
  same study therefore cost one execution of each unique spec, total;
* **priorities** — higher-priority jobs' specs dispatch first (FIFO within
  a priority level; joining a queued task lifts it to the joiner's
  priority);
* **per-client quotas** — a submission that would push a client's
  unresolved spec count past the quota is rejected immediately with
  :class:`QuotaExceededError`, never queued forever;
* **cooperative cancellation** — cancelling a job detaches it from its
  pending tasks; tasks no other job wants and that have not started are
  abandoned, while tasks already executing run to completion and persist
  (the store never holds a torn batch).

Sharded :class:`~repro.experiments.jobs.RunSpec`\\ s fan out exactly as they
did under the executor: one backend call per trace window when the backend
has more than one slot, merged in shard order on arrival.

:class:`~repro.experiments.parallel.BatchExecutor` is now a thin wrapper
that builds a scheduler, submits one job, and waits — so the CLI's one-shot
path and the ``repro serve`` daemon exercise the same code.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from collections import deque
from functools import partial
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.experiments.jobs import RunSpec, shard_plan_for_spec
from repro.experiments.store import Result, ResultStore, Spec

#: Job lifecycle states (a job is ``running`` from submission — its specs
#: may still be queued behind other jobs' — until it reaches a terminal
#: state).
JOB_STATES = ("running", "completed", "failed", "cancelled")

#: How each of a job's specs was satisfied, as recorded in its provenance
#: counters and per-spec events.
SPEC_SOURCES = ("store", "executed", "shared")

#: Progress events retained per job.  Long-running daemon jobs with huge
#: batches emit thousands of ``spec_resolved`` entries; the ring keeps the
#: newest ``JOB_EVENT_LIMIT`` with their original ``seq`` numbers, so the
#: ``?after=N`` streaming contract survives and drops are reported
#: explicitly rather than silently renumbered.
JOB_EVENT_LIMIT = 512

_JOBS_SUBMITTED = obs.REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted by the scheduler."
)
_JOBS_COMPLETED = obs.REGISTRY.counter(
    "repro_jobs_completed_total", "Jobs that reached the completed state."
)
_JOBS_FAILED = obs.REGISTRY.counter(
    "repro_jobs_failed_total", "Jobs that reached the failed state."
)
_JOBS_CANCELLED = obs.REGISTRY.counter(
    "repro_jobs_cancelled_total", "Jobs cancelled before completion."
)
_SPECS_RESOLVED = obs.REGISTRY.counter(
    "repro_specs_resolved_total",
    "Specs resolved, by provenance (store/executed/shared).",
    labels=("source",),
)
_QUEUE_DEPTH = obs.REGISTRY.gauge(
    "repro_scheduler_queue_depth",
    "Undispatched backend-call parts waiting in the priority heap.",
)
_ACTIVE_PARTS = obs.REGISTRY.gauge(
    "repro_scheduler_active_parts", "Backend calls currently in flight."
)
_PART_SECONDS = obs.REGISTRY.histogram(
    "repro_scheduler_part_seconds",
    "Wall seconds from dispatch to completion of one backend-call part.",
)


class QuotaExceededError(RuntimeError):
    """A submission would exceed the per-client unresolved-spec quota."""


def spec_label(spec: Spec) -> str:
    """A short human-readable label for one spec (events and listings)."""

    if isinstance(spec, RunSpec):
        return f"{spec.workload} × {spec.configuration}"
    return f"{' + '.join(spec.workloads)} × {spec.configuration}"


class Job:
    """One submitted batch of specs, tracked through to a terminal state.

    Jobs are created by :meth:`Scheduler.submit` only.  ``results`` maps
    each unique spec to its result once resolved; ``provenance`` counts how
    specs were satisfied (``store``/``executed``/``shared``); ``events`` is
    a bounded ring of the newest progress events whose entries carry a
    monotonically increasing ``seq`` — pollers pass the last seen ``seq``
    back to :meth:`Scheduler.job_snapshot` to stream only what is new, and
    a poller that fell behind the ring sees the drop reported explicitly
    (``events_dropped`` / ``events_gap``) rather than silently renumbered
    events.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[Spec],
        *,
        client: str,
        priority: int,
        kind: str,
        label: str,
        request: Mapping | None,
        finalize: Callable[["Job"], dict] | None,
        event_limit: int = JOB_EVENT_LIMIT,
    ) -> None:
        self.id = job_id
        self.specs = tuple(specs)
        self.client = client
        self.priority = priority
        self.kind = kind
        self.label = label
        self.request = dict(request) if request else {}
        self.state = "running"
        self.error: str | None = None
        self.submitted = time.time()
        self.finished: float | None = None
        self.results: dict[Spec, Result] = {}
        self.provenance = {source: 0 for source in SPEC_SOURCES}
        self.events: deque[dict] = deque(maxlen=max(1, event_limit))
        self.payload: dict | None = None
        self.manifest: dict | None = None
        self.telemetry: dict | None = None
        self._event_seq = 0
        self._phase_seconds: dict[str, float] = {}
        self._spec_telemetry: dict[str, dict] = {}
        self._pending: set[Spec] = set(self.specs)
        self._errors: list[BaseException] = []
        self._finalize = finalize
        self._sealed = False
        self._done = threading.Event()

    # -- progress -----------------------------------------------------------
    def record_event(self, event: str, **detail) -> None:
        """Append one progress event (``seq`` and timestamp added here).

        The ring drops the oldest entry once full; ``seq`` keeps counting
        from the dropped entries, so streaming consumers can detect gaps.
        """

        self.events.append(
            {"seq": self._event_seq, "time": time.time(), "event": event, **detail}
        )
        self._event_seq += 1

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring since the job was created."""

        return self._event_seq - len(self.events)

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall time against one named phase (telemetry only)."""

        self._phase_seconds[name] = self._phase_seconds.get(name, 0.0) + seconds

    def resolve(self, spec: Spec, result: Result, source: str) -> None:
        """Record one spec's result (called by the scheduler, under lock)."""

        self._pending.discard(spec)
        self.results[spec] = result
        self.provenance[source] += 1
        if obs.enabled():
            _SPECS_RESOLVED.inc(source=source)
        self.record_event(
            "spec_resolved",
            spec=spec_label(spec),
            digest=spec.content_hash()[:12],
            source=source,
        )

    def resolve_error(self, spec: Spec, error: BaseException) -> None:
        """Record one spec's failure (called by the scheduler, under lock)."""

        self._pending.discard(spec)
        self._errors.append(error)
        self.record_event("spec_failed", spec=spec_label(spec), error=str(error))

    # -- inspection ----------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""

        return self.state != "running"

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (or timeout)."""

        return self._done.wait(timeout)

    def snapshot(self, after: int | None = None, events: bool = True) -> dict:
        """The job's status as a JSON-safe dictionary.

        ``after`` filters the event log to entries with ``seq > after``
        (the polling-based streaming contract of ``GET /jobs/<id>``).
        When the ring has evicted events the snapshot says so:
        ``events_dropped`` counts total evictions, and ``events_gap``
        names the ``[from, to]`` seq range a too-slow poller missed.
        """

        data = {
            "id": self.id,
            "kind": self.kind,
            "label": self.label,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "submitted": self.submitted,
            "finished": self.finished,
            "specs": {
                "total": len(self.specs),
                "resolved": len(self.results),
                **self.provenance,
            },
        }
        if events:
            log = list(self.events)
            if after is not None:
                log = [entry for entry in log if entry["seq"] > after]
            data["events"] = log
            dropped = self.events_dropped
            if dropped:
                data["events_dropped"] = dropped
                oldest_kept = self.events[0]["seq"] if self.events else self._event_seq
                gap_from = 0 if after is None else after + 1
                if oldest_kept > gap_from:
                    data["events_gap"] = [gap_from, oldest_kept - 1]
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data


class _Task:
    """One unit of deduplicated work: a spec and its backend call parts."""

    __slots__ = (
        "spec", "parts", "merge", "creator", "waiters",
        "state", "priority", "dispatched", "outcomes", "error",
        "phases", "part_started", "part_seconds",
    )

    def __init__(self, spec: Spec, parts, merge, creator: Job, priority: int):
        self.spec = spec
        self.parts = parts  # list of (fn, *args) tuples, picklable
        self.merge = merge  # None, or merges the ordered part outcomes
        self.creator = creator
        self.waiters: list[Job] = [creator]
        self.state = "queued"  # queued | running | done | failed | abandoned
        self.priority = priority
        self.dispatched: set[int] = set()
        self.outcomes: dict[int, object] = {}
        self.error: BaseException | None = None
        # Telemetry only (empty when disabled): kernel phase seconds
        # collected at dispatch, and per-part dispatch→done wall time.
        self.phases: dict[str, float] = {}
        self.part_started: dict[int, float] = {}
        self.part_seconds: dict[int, float] = {}


class Scheduler:
    """Priority job queue + quotas + cancellation over a worker backend.

    ``backend`` defaults to the policy ``jobs`` implies (inline at 1, a
    process pool above); ``quota`` caps each client's *unresolved* specs —
    store-satisfied specs never count.  ``kernel`` travels to workers with
    every call, exactly as the executor forwarded it.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        kernel: str | None = None,
        backend=None,
        quota: int | None = None,
    ) -> None:
        from repro.service.backends import backend_for_jobs

        self.store = store
        self.kernel = kernel
        self.quota = quota
        self._backend = backend if backend is not None else backend_for_jobs(jobs)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._tasks: dict[Spec, _Task] = {}
        self._heap: list[tuple[int, int, int, _Task]] = []
        self._seq = itertools.count()
        self._outstanding: dict[str, int] = {}
        self._active = 0
        self._stop = False
        self._dispatcher: threading.Thread | None = None
        self._started = time.time()
        self.executed = 0  # specs this scheduler ran (not hits, not shares)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        specs: Sequence[Spec],
        *,
        client: str = "local",
        priority: int = 0,
        kind: str = "batch",
        label: str | None = None,
        request: Mapping | None = None,
        finalize: Callable[[Job], dict] | None = None,
    ) -> Job:
        """Enqueue one job; returns immediately with its :class:`Job`.

        Raises :class:`QuotaExceededError` before any state changes when
        the batch's store misses would push ``client`` past the quota.
        """

        unique = list(dict.fromkeys(specs))
        job = Job(
            f"job-{uuid.uuid4().hex[:12]}",
            unique,
            client=client,
            priority=priority,
            kind=kind,
            label=label or (spec_label(unique[0]) if unique else kind),
            request=request,
            finalize=finalize,
        )
        completed = False
        telemetry = obs.enabled()
        with self._cond:
            misses = [
                spec
                for spec in unique
                if self.store is None or spec not in self.store
            ]
            if self.quota is not None:
                held = self._outstanding.get(client, 0)
                if held + len(misses) > self.quota:
                    raise QuotaExceededError(
                        f"client {client!r} quota exceeded: {held} unresolved "
                        f"spec(s) held + {len(misses)} submitted > quota "
                        f"{self.quota}; retry once current jobs finish"
                    )
            self._jobs[job.id] = job
            job.record_event(
                "submitted", specs=len(unique), misses=len(misses), client=client
            )
            if telemetry:
                _JOBS_SUBMITTED.inc()
                obs.emit(
                    "job_submitted",
                    job=job.id,
                    kind=kind,
                    specs=len(unique),
                    misses=len(misses),
                    client=client,
                )
            for spec in unique:
                if self.store is not None:
                    lookup_start = time.perf_counter() if telemetry else 0.0
                    cached = self.store.get(spec)
                    if telemetry:
                        job.add_phase_seconds(
                            "store_io", time.perf_counter() - lookup_start
                        )
                else:
                    cached = None
                if cached is not None:
                    job.resolve(spec, cached, "store")
                    continue
                self._outstanding[client] = self._outstanding.get(client, 0) + 1
                task = self._tasks.get(spec)
                if task is not None and task.state in ("queued", "running"):
                    task.waiters.append(job)
                    if priority > task.priority and task.state == "queued":
                        # Lift the queued task to the joiner's priority by
                        # re-pushing its undispatched parts; stale heap
                        # entries are skipped via ``dispatched`` on pop.
                        task.priority = priority
                        self._push_parts(task)
                    continue
                self._tasks[spec] = task = self._make_task(spec, job, priority)
                self._push_parts(task)
                if telemetry:
                    obs.emit(
                        "task_queued",
                        job=job.id,
                        spec=spec_label(spec),
                        parts=len(task.parts),
                        priority=priority,
                    )
            if telemetry:
                self._update_gauges()
            if not job._pending:
                job._sealed = True
                completed = True
            else:
                self._ensure_dispatcher()
                self._cond.notify_all()
        if completed:
            self._finish_job(job)
        return job

    def _make_task(self, spec: Spec, creator: Job, priority: int) -> _Task:
        """Build the task for one spec miss (sharded specs fan out).

        Execution entry points are resolved through the
        :mod:`~repro.experiments.parallel` namespace at task-creation time,
        which keeps that module the single patch point for counting or
        faking executions in tests.
        """

        from repro.experiments import parallel

        if (
            isinstance(spec, RunSpec)
            and spec.shards > 1
            and self._backend.slots > 1
        ):
            plan = shard_plan_for_spec(spec)
            if plan.shard_count > 1:
                from repro.sim.shard import merge_shard_outcomes

                parts = [
                    (parallel.execute_spec_shard, spec, index, self.kernel)
                    for index in range(plan.shard_count)
                ]
                return _Task(spec, parts, merge_shard_outcomes, creator, priority)
        return _Task(
            spec,
            [(partial(parallel.execute, kernel=self.kernel), spec)],
            None,
            creator,
            priority,
        )

    def _push_parts(self, task: _Task) -> None:
        """Heap-push every undispatched part of a task at its priority."""

        for index in range(len(task.parts)):
            if index not in task.dispatched:
                heapq.heappush(
                    self._heap, (-task.priority, next(self._seq), index, task)
                )

    def _update_gauges(self) -> None:
        """Under lock: publish queue depth and in-flight parts (telemetry)."""

        _QUEUE_DEPTH.set(len(self._heap))
        _ACTIVE_PARTS.set(self._active)

    # -- dispatch ------------------------------------------------------------
    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-scheduler", daemon=True
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            telemetry = obs.enabled()
            with self._cond:
                while not self._stop and not (
                    self._heap and self._active < self._backend.slots
                ):
                    self._cond.wait()
                if self._stop:
                    return
                _, _, index, task = heapq.heappop(self._heap)
                if task.state not in ("queued", "running") or index in task.dispatched:
                    continue  # abandoned/failed task or stale re-pushed entry
                task.state = "running"
                task.dispatched.add(index)
                self._active += 1
                call = task.parts[index]
                if telemetry:
                    task.part_started[index] = time.perf_counter()
                    self._update_gauges()
            if telemetry:
                obs.emit(
                    "task_dispatched",
                    job=task.creator.id,
                    spec=spec_label(task.spec),
                    part=index,
                )
                # An inline backend executes the part synchronously inside
                # submit(), on this thread — collect the kernel's phase
                # spans here.  Pool backends return immediately and run the
                # part in a worker process, whose spans stay process-local;
                # only the dispatch→done wall time survives for them.
                try:
                    with obs.collect() as spans:
                        future = self._backend.submit(*call)
                except BaseException as error:  # noqa: BLE001 - backend refused
                    self._part_done(task, index, None, error)
                    continue
                if spans:
                    with self._lock:
                        for name, seconds in obs.breakdown(spans).items():
                            task.phases[name] = task.phases.get(name, 0.0) + seconds
            else:
                try:
                    future = self._backend.submit(*call)
                except BaseException as error:  # noqa: BLE001 - backend refused
                    self._part_done(task, index, None, error)
                    continue
            future.add_done_callback(
                lambda f, t=task, i=index: self._part_done(t, i, f, None)
            )

    def _part_done(self, task: _Task, index: int, future, submit_error) -> None:
        """One backend call finished; merge, persist, resolve waiters."""

        completions: list[Job] = []
        telemetry = obs.enabled()
        with self._cond:
            self._active -= 1
            if telemetry and index in task.part_started:
                part_seconds = time.perf_counter() - task.part_started[index]
                task.part_seconds[index] = part_seconds
                _PART_SECONDS.observe(part_seconds)
            error = submit_error if future is None else future.exception()
            if error is not None:
                if task.state != "failed":
                    task.state = "failed"
                    task.error = error
                    if telemetry:
                        obs.emit(
                            "task_done",
                            job=task.creator.id,
                            spec=spec_label(task.spec),
                            outcome="failed",
                            error=str(error),
                        )
                    completions = self._resolve_task(task, None, error)
                    self._tasks.pop(task.spec, None)
            elif task.state == "running":
                task.outcomes[index] = future.result()
                if len(task.outcomes) == len(task.parts):
                    if task.merge is not None:
                        result = task.merge(
                            [task.outcomes[i] for i in range(len(task.parts))]
                        )
                    else:
                        result = task.outcomes[index]
                    if self.store is not None:
                        put_start = time.perf_counter() if telemetry else 0.0
                        self.store.put(task.spec, result)
                        if telemetry:
                            task.creator.add_phase_seconds(
                                "store_io", time.perf_counter() - put_start
                            )
                    self.executed += 1
                    task.state = "done"
                    if telemetry:
                        obs.emit(
                            "task_done",
                            job=task.creator.id,
                            spec=spec_label(task.spec),
                            outcome="done",
                            parts=len(task.parts),
                            seconds=round(sum(task.part_seconds.values()), 6),
                        )
                    completions = self._resolve_task(task, result, None)
                    self._tasks.pop(task.spec, None)
            if telemetry:
                self._update_gauges()
            self._cond.notify_all()
        for job in completions:
            self._finish_job(job)

    def _resolve_task(self, task: _Task, result, error) -> list[Job]:
        """Under lock: deliver a task outcome to every waiting job."""

        sealed: list[Job] = []
        telemetry = obs.enabled()
        for job in task.waiters:
            if job.state != "running" or task.spec not in job._pending:
                continue
            if error is None:
                source = "executed" if job is task.creator else "shared"
                job.resolve(task.spec, result, source)
                if telemetry:
                    self._record_spec_telemetry(job, task, source)
            else:
                job.resolve_error(task.spec, error)
            self._release_quota(job.client, 1)
            if not job._pending and not job._sealed:
                job._sealed = True
                sealed.append(job)
        return sealed

    @staticmethod
    def _record_spec_telemetry(job: Job, task: _Task, source: str) -> None:
        """Under lock: fold a finished task's timings into one waiter job."""

        seconds = sum(task.part_seconds.values())
        entry: dict = {"seconds": round(seconds, 6), "source": source}
        if task.phases:
            entry["phases"] = {
                name: round(value, 6) for name, value in task.phases.items()
            }
        if len(task.parts) > 1 and task.part_seconds:
            # Slow-shard skew: how much longer the slowest shard ran than
            # the fastest — large values mean the window split is lopsided.
            entry["shards"] = len(task.parts)
            entry["shard_skew_s"] = round(
                max(task.part_seconds.values()) - min(task.part_seconds.values()), 6
            )
        job._spec_telemetry[spec_label(task.spec)] = entry
        if job is task.creator:
            job.add_phase_seconds("execute", seconds)
            for name, value in task.phases.items():
                job.add_phase_seconds(name, value)

    def _release_quota(self, client: str, count: int) -> None:
        held = self._outstanding.get(client, 0) - count
        if held > 0:
            self._outstanding[client] = held
        else:
            self._outstanding.pop(client, None)

    def _finish_job(self, job: Job) -> None:
        """Outside the lock: run finalize, then seal the terminal state.

        Finalize (the request layer's reduce step — rendering a study
        table, flattening stats) may itself run batches through a *fresh*
        one-shot scheduler against the now-warm store; it must never submit
        to *this* scheduler, which could deadlock a single-slot backend.
        """

        payload: dict | None = None
        finalize_error: BaseException | None = None
        telemetry = obs.enabled()
        if not job._errors and job._finalize is not None:
            reduce_start = time.perf_counter() if telemetry else 0.0
            try:
                payload = job._finalize(job)
            except Exception as error:  # noqa: BLE001 - recorded on the job
                finalize_error = error
            if telemetry:
                job.add_phase_seconds("reduce", time.perf_counter() - reduce_start)
        with self._cond:
            if job.state != "running":  # pragma: no cover - cancel race guard
                return
            if job._errors or finalize_error is not None:
                failure = job._errors[0] if job._errors else finalize_error
                job.state = "failed"
                job.error = str(failure)
                job._errors = job._errors or [finalize_error]
            else:
                job.state = "completed"
                job.payload = payload
            job.finished = time.time()
            if telemetry and (job._phase_seconds or job._spec_telemetry):
                job.telemetry = {
                    "phases": {
                        name: round(value, 6)
                        for name, value in job._phase_seconds.items()
                    },
                    "specs": dict(job._spec_telemetry),
                }
            job.record_event(job.state)
            job._done.set()
            self._cond.notify_all()
        if telemetry:
            if job.state == "completed":
                _JOBS_COMPLETED.inc()
            else:
                _JOBS_FAILED.inc()
            obs.emit(
                f"job_{job.state}",
                job=job.id,
                kind=job.kind,
                client=job.client,
                seconds=round(job.finished - job.submitted, 6),
                **job.provenance,
            )

    # -- job control ---------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job for an id; raises ``KeyError`` for unknown ids."""

        with self._lock:
            return self._jobs[job_id]

    def job_snapshot(self, job_id: str, after: int | None = None) -> dict:
        """A consistent status snapshot (see :meth:`Job.snapshot`)."""

        with self._lock:
            return self._jobs[job_id].snapshot(after=after)

    def jobs(self) -> list[Job]:
        """Every job this scheduler has accepted, in submission order."""

        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a job cooperatively; returns whether anything changed.

        Pending specs are detached; queued tasks nobody else wants are
        abandoned before they start.  Specs already executing run to
        completion and persist to the store — cancellation never tears a
        batch mid-write — but the job stops waiting for them.
        """

        with self._cond:
            job = self._jobs[job_id]
            if job.state != "running" or job._sealed:
                return False
            abandoned = 0
            for spec in list(job._pending):
                task = self._tasks.get(spec)
                if task is not None and job in task.waiters:
                    task.waiters.remove(job)
                    if not task.waiters and task.state == "queued":
                        task.state = "abandoned"
                        self._tasks.pop(spec, None)
                        abandoned += 1
            released = len(job._pending)
            job._pending.clear()
            self._release_quota(job.client, released)
            job.state = "cancelled"
            job.finished = time.time()
            job.record_event("cancelled", detached=released, abandoned=abandoned)
            job._done.set()
            self._cond.notify_all()
        if obs.enabled():
            _JOBS_CANCELLED.inc()
            obs.emit(
                "job_cancelled",
                job=job.id,
                detached=released,
                abandoned=abandoned,
            )
            if abandoned:
                obs.emit("task_abandoned", job=job.id, tasks=abandoned)
        return True

    # -- one-shot + lifecycle -------------------------------------------------
    def run(self, specs: Sequence[Spec]) -> dict[Spec, Result]:
        """Submit one batch and wait: the executor-compatible one-shot path.

        Returns a spec → result mapping for the unique specs, in
        submission order.  A failing spec re-raises its original exception,
        exactly as the in-process executor did.
        """

        job = self.submit(specs)
        job.wait()
        if job._errors:
            raise job._errors[0]
        return {spec: job.results[spec] for spec in job.specs}

    def stats(self) -> dict:
        """JSON-safe scheduler counters (the daemon's ``/healthz`` body)."""

        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "uptime_s": time.time() - self._started,
                "jobs": states,
                "queued_parts": len(self._heap),
                "active_parts": self._active,
                "executed_specs": self.executed,
                "outstanding": dict(self._outstanding),
                "backend_slots": self._backend.slots,
                "quota": self.quota,
                "telemetry": obs.enabled(),
            }

    def close(self) -> None:
        """Stop the dispatch loop and release the backend (idempotent)."""

        with self._cond:
            self._stop = True
            self._cond.notify_all()
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.join()
        self._backend.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
