"""The ``repro serve`` daemon: a stdlib HTTP/JSON front on the scheduler.

One long-running process owns a :class:`~repro.service.scheduler.Scheduler`
over the shared result store, and every client — the ``repro submit`` CLI,
the :mod:`repro.client` Python client, plain ``curl`` — talks to it over
JSON:

==========================  =================================================
``POST /jobs``              submit a job (see :mod:`repro.service.requests`
                            for the body kinds); returns the job snapshot,
                            ``429`` over quota, ``400`` on validation errors
``GET /jobs``               list every job's snapshot (without event logs)
``GET /jobs/<id>``          one job's status; ``?after=N`` returns only
                            progress events with ``seq > N`` (poll-based
                            streaming)
``GET /jobs/<id>/result``   the reduced result payload plus the run
                            manifest; ``409`` until the job completes
``POST /jobs/<id>/cancel``  cooperative cancellation
``GET /healthz``            liveness + scheduler counters + code version
``GET /store/stats``        the shared store's machine-readable statistics
                            (the same serializer ``repro cache show --json``
                            prints)
``GET /metrics``            the process's telemetry registry in Prometheus
                            text exposition format (always served; series
                            only move when ``REPRO_TELEMETRY`` is on)
==========================  =================================================

With telemetry enabled every request is also measured: per-endpoint latency
histograms (``repro_http_request_seconds``) and status-labelled request
counters (``repro_http_requests_total``), with job ids normalised out of
the route label so the cardinality stays bounded.

Everything is stdlib (``http.server.ThreadingHTTPServer``): no new
dependencies.  Handler threads block in :meth:`Scheduler.submit` only long
enough to compile and enqueue — execution happens on the scheduler's
backend — so a slow simulation never starves ``/healthz``.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.experiments.jobs import code_version
from repro.experiments.store import ResultStore, store_stats_payload
from repro.service.manifest import job_manifest
from repro.service.requests import compile_request
from repro.service.scheduler import QuotaExceededError, Scheduler

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Content type of ``GET /metrics`` (Prometheus text exposition format).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HTTP_SECONDS = obs.REGISTRY.histogram(
    "repro_http_request_seconds",
    "Wall seconds handling one HTTP request, by endpoint.",
    labels=("method", "route"),
)
_HTTP_REQUESTS = obs.REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by endpoint and status code.",
    labels=("method", "route", "status"),
)


def _route_label(path: str) -> str:
    """The bounded-cardinality route label for a request path.

    Job ids are normalised to ``{id}`` so every job hits the same series;
    unknown paths collapse into one ``other`` bucket.
    """

    parts = [part for part in urlparse(path).path.split("/") if part]
    if not parts:
        return "/"
    if parts[0] == "jobs":
        if len(parts) == 1:
            return "/jobs"
        if len(parts) == 2:
            return "/jobs/{id}"
        if len(parts) == 3 and parts[2] in ("result", "cancel"):
            return "/jobs/{id}/" + parts[2]
        return "other"
    if parts == ["healthz"]:
        return "/healthz"
    if parts == ["metrics"]:
        return "/metrics"
    if parts == ["store", "stats"]:
        return "/store/stats"
    return "other"


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server plus the scheduler/store it fronts."""

    daemon_threads = True

    def __init__(self, address, scheduler: Scheduler, store: ResultStore | None,
                 verbose: bool = False) -> None:
        self.scheduler = scheduler
        self.store = store
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""

        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    server: ServiceServer  # narrowed for the route handlers

    # -- plumbing ------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            sys.stderr.write(
                f"repro serve: {self.address_string()} {format % args}\n"
            )

    def _send(self, status: int, payload: dict) -> None:
        self._send_bytes(status, json.dumps(payload).encode(), "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode(), content_type)

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _client_name(self, payload: dict) -> str:
        return (
            payload.get("client")
            or self.headers.get("X-Repro-Client")
            or self.client_address[0]
        )

    # -- routes --------------------------------------------------------------
    _status = 0  # last response status, captured by _send_bytes for metrics

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._observed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._observed("POST", self._handle_post)

    def _observed(self, method: str, handler) -> None:
        """Run one route handler, measuring latency and counting status."""

        if not obs.enabled():
            handler()
            return
        self._status = 0
        start = time.perf_counter()
        try:
            handler()
        finally:
            route = _route_label(self.path)
            _HTTP_SECONDS.observe(
                time.perf_counter() - start, method=method, route=route
            )
            _HTTP_REQUESTS.inc(method=method, route=route, status=str(self._status))

    def _handle_get(self) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send(
                    200,
                    {
                        "status": "ok",
                        "code_version": code_version(),
                        "scheduler": self.server.scheduler.stats(),
                        "store": store_stats_payload(self.server.store)
                        if self.server.store is not None
                        else None,
                    },
                )
            elif parts == ["metrics"]:
                self._send_text(200, obs.REGISTRY.render(), METRICS_CONTENT_TYPE)
            elif parts == ["store", "stats"]:
                if self.server.store is None:
                    self._error(404, "this daemon runs without a store")
                    return
                self._send(200, store_stats_payload(self.server.store))
            elif parts == ["jobs"]:
                with_jobs = self.server.scheduler.jobs()
                self._send(
                    200, {"jobs": [job.snapshot(events=False) for job in with_jobs]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                query = parse_qs(url.query)
                after_raw = query.get("after", [None])[0]
                after = int(after_raw) if after_raw is not None else None
                self._send(200, self.server.scheduler.job_snapshot(parts[1], after))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._send_result(parts[1])
            else:
                self._error(404, f"no such endpoint: GET {url.path}")
        except KeyError:
            self._error(404, f"unknown job {parts[1]!r}")
        except ValueError as error:
            self._error(400, str(error))

    def _handle_post(self) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["jobs"]:
                self._submit_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                scheduler = self.server.scheduler
                cancelled = scheduler.cancel(parts[1])
                snapshot = scheduler.job_snapshot(parts[1])
                self._send(200, {"cancelled": cancelled, "job": snapshot})
            else:
                self._error(404, f"no such endpoint: POST {url.path}")
        except KeyError:
            self._error(404, f"unknown job {parts[1]!r}")
        except QuotaExceededError as error:
            self._error(429, str(error))
        except ValueError as error:
            self._error(400, str(error))

    def _submit_job(self) -> None:
        payload = self._read_json()
        compiled = compile_request(payload, self.server.store)
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise ValueError("priority must be an integer")
        job = self.server.scheduler.submit(
            compiled.specs,
            client=self._client_name(payload),
            priority=priority,
            kind=compiled.kind,
            label=compiled.label,
            request=compiled.request,
            finalize=compiled.finalize,
        )
        self._send(201, job.snapshot(events=False))

    def _send_result(self, job_id: str) -> None:
        scheduler = self.server.scheduler
        job = scheduler.get(job_id)
        if not job.done:
            self._error(
                409, f"job {job_id} is still {job.state}; poll GET /jobs/{job_id}"
            )
            return
        if job.state != "completed":
            self._send(
                409,
                {
                    "error": f"job {job_id} {job.state}"
                    + (f": {job.error}" if job.error else ""),
                    "job": job.snapshot(events=False),
                },
            )
            return
        self._send(
            200,
            {
                "job": job.snapshot(events=False),
                "result": job.payload,
                "manifest": job_manifest(job, self.server.store),
            },
        )


def build_server(
    store: ResultStore | None,
    host: str = DEFAULT_HOST,
    port: int = 0,
    jobs: int = 1,
    kernel: str | None = None,
    quota: int | None = None,
    verbose: bool = False,
) -> ServiceServer:
    """A ready-to-run service (``port=0`` picks a free port — tests use this).

    The caller owns the lifecycle: ``serve_forever()`` (usually on a
    thread), then ``shutdown()``/``server_close()`` and
    ``scheduler.close()``.
    """

    scheduler = Scheduler(store=store, jobs=jobs, kernel=kernel, quota=quota)
    return ServiceServer((host, port), scheduler, store, verbose=verbose)


def serve(
    store: ResultStore | None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    jobs: int = 1,
    kernel: str | None = None,
    quota: int | None = None,
    verbose: bool = False,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the process exit code.

    This is ``repro serve``: bind, announce the URL on stdout (so wrappers
    can scrape it), block in the accept loop, and shut down cleanly —
    stop accepting, then close the scheduler (waiting for in-flight
    simulations so the store is never torn mid-write).
    """

    server = build_server(
        store, host=host, port=port, jobs=jobs, kernel=kernel, quota=quota,
        verbose=verbose,
    )

    def _request_shutdown(signum, frame) -> None:
        # shutdown() must not run on the thread blocked in serve_forever()
        # (it joins that loop), and signal handlers run on the main thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(
        f"repro serve: listening on {server.url} "
        f"(store: {store.directory if store is not None else 'disabled'}, "
        f"jobs: {jobs}"
        + (f", quota: {quota}" if quota is not None else "")
        + ")",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
        server.scheduler.close()
    print("repro serve: shut down cleanly", flush=True)
    return 0
