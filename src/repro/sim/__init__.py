"""Trace-driven simulation: system configuration, engine, timing and stats.

The paper evaluates prefetchers inside gem5 full-system simulation; this
package is the substitute substrate.  A :class:`~repro.sim.engine.Simulator`
drives a memory-access trace through a :class:`~repro.memory.hierarchy.
MemoryHierarchy`, invokes the configured prefetchers on every access, issues
the prefetch fills they request, and accounts cycles with the analytic
:class:`~repro.sim.timing.TimingModel`.  The multiprogrammed variant
(:mod:`repro.sim.multiprogram`) runs two traces on two cores that share the
L3, its Markov partition and the DRAM channel (paper section 6.3).
"""

from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.kernel import KERNELS, resolve_kernel, run_simulation
from repro.sim.multiprogram import MultiProgramResult, MultiProgramSimulator
from repro.sim.stats import SimulationStats
from repro.sim.stream import AccessColumns, AccessStream, access_columns
from repro.sim.timing import TimingModel

__all__ = [
    "SystemConfig",
    "Simulator",
    "SimulationResult",
    "MultiProgramSimulator",
    "MultiProgramResult",
    "SimulationStats",
    "TimingModel",
    "KERNELS",
    "resolve_kernel",
    "run_simulation",
    "AccessColumns",
    "AccessStream",
    "access_columns",
]
