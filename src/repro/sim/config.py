"""System configuration: the paper's table 2, and its scaled-down sim twin.

The paper's core and memory configuration (table 2) targets an Arm
Cortex-X2-class core attached to 64 KiB L1D / 512 KiB L2 / 2 MiB-per-core L3
and LPDDR5 DRAM, simulated for 20 × 5M-instruction samples.  Pure-Python
simulation cannot run that volume in reasonable time (the calibration notes
for this reproduction flag simulation speed as the binding constraint), so
:class:`SystemConfig` carries *two* parameter sets:

* :meth:`SystemConfig.paper` — the table 2 values, used for documentation,
  the table 2 benchmark, and the Triangel structure-sizing report;
* :meth:`SystemConfig.scaled` — the default simulation scale: the cache
  hierarchy, Markov capacity, LUT, and adaptation windows are all shrunk by
  the same factor, and the workload generators express their working sets
  relative to the scaled Markov capacity, so capacity-driven behaviour (who
  fits, who overflows, where the Set Dueller trades space away) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.memory.dram import DramModel
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.memory.partitioned_cache import PartitionedCache


@dataclass
class TimingParams:
    """Parameters of the analytic timing model (see :mod:`repro.sim.timing`)."""

    # Average core cycles per trace access assuming an L1 hit.  A trace
    # access stands for a handful of instructions on a 5-wide core, so this
    # covers the non-memory work between the interesting accesses.
    base_cycles_per_access: float = 16.0
    # Fraction of each level's latency that the out-of-order core fails to
    # hide.  DRAM misses on the irregular, dependent-access workloads the
    # paper studies serialise badly but still overlap somewhat thanks to
    # memory-level parallelism; nearer levels overlap well.
    stall_weight_l1: float = 0.0
    stall_weight_l2: float = 0.20
    stall_weight_l3: float = 0.30
    stall_weight_dram: float = 0.50


@dataclass
class SystemConfig:
    """Everything needed to build a hierarchy + timing model for one core."""

    name: str = "sim-scale"
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)
    timing: TimingParams = field(default_factory=TimingParams)
    markov_latency: float = 25.0
    # Scaled structure sizes used when constructing prefetchers for this
    # system; ``None`` keeps each prefetcher's own (paper-scale) default.
    lut_entries: int = 64
    lut_offset_bits: int = 8
    bloom_window: int = 8192
    dueller_window: int = 3072
    sampler_entries: int = 256
    training_entries: int = 256
    mrb_entries: int = 256
    # The paper uses 512 fills as an under-approximation of the 512 KiB L2's
    # capacity in lines; the scaled L2 holds 256 lines, so the scaled window
    # must shrink with it to remain an *under*-approximation.
    second_chance_window_fills: int = 192
    instructions_per_access: float = 3.0
    core_frequency_ghz: float = 2.0

    # -- factories -----------------------------------------------------------
    @classmethod
    def scaled(cls, scale: float = 1.0) -> "SystemConfig":
        """The default simulation-scale system (optionally rescaled).

        ``scale`` multiplies cache capacities; 1.0 gives a 4 KiB L1, 16 KiB
        L2 and 64 KiB L3 — 1/32 of the paper's sizes — with a Markov table of
        up to 4 096 entries (8 ways × 64 sets × 8 lines... see the hierarchy
        geometry), against which the workload generators size themselves.
        """

        if scale <= 0:
            raise ValueError("scale must be positive")

        def scaled_size(size: int) -> int:
            return max(1024, int(size * scale))

        hierarchy = HierarchyParams(
            l1_size=scaled_size(4 * 1024),
            l2_size=scaled_size(16 * 1024),
            l3_size=scaled_size(64 * 1024),
        )
        # Cache construction requires every size to be a multiple of
        # assoc × line; reject bad scales here, with the scale named, instead
        # of deep inside the first simulation that builds the hierarchy.
        for level, size, assoc in (
            ("L1", hierarchy.l1_size, hierarchy.l1_assoc),
            ("L2", hierarchy.l2_size, hierarchy.l2_assoc),
            ("L3", hierarchy.l3_size, hierarchy.l3_assoc),
        ):
            multiple = assoc * hierarchy.line_size
            if size % multiple != 0:
                raise ValueError(
                    f"scale {scale:g} gives an invalid {level} geometry: size "
                    f"{size} is not a multiple of assoc*line ({assoc}*"
                    f"{hierarchy.line_size}={multiple}); choose a scale that "
                    f"keeps every cache size a multiple of its assoc*line"
                )
        return cls(name=f"sim-scale-x{scale:g}", hierarchy=hierarchy)

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The paper's table 2 configuration (for documentation/reporting).

        Running full experiments at this scale is possible but slow in pure
        Python; the table 2 benchmark only instantiates it to report the
        parameters, and unit tests exercise construction.
        """

        hierarchy = HierarchyParams(
            l1_size=64 * 1024,
            l1_assoc=4,
            l2_size=512 * 1024,
            l2_assoc=8,
            l3_size=2 * 1024 * 1024,
            l3_assoc=16,
            l1_latency=4.0,
            l2_latency=9.0,
            l3_latency=20.0,
            dram_latency=160.0,
        )
        return cls(
            name="paper-scale",
            hierarchy=hierarchy,
            lut_entries=1024,
            lut_offset_bits=11,
            bloom_window=30_000_000,
            dueller_window=500_000,
            sampler_entries=512,
            training_entries=512,
            mrb_entries=256,
        )

    # -- construction helpers -----------------------------------------------------
    def build_hierarchy(
        self,
        shared_l3: PartitionedCache | None = None,
        shared_dram: DramModel | None = None,
    ) -> MemoryHierarchy:
        """Instantiate a hierarchy (optionally sharing an L3/DRAM for 2-core runs)."""

        return MemoryHierarchy(replace(self.hierarchy), l3=shared_l3, dram=shared_dram)

    def build_shared_l3(self) -> PartitionedCache:
        """Build an L3 suitable for sharing between two cores' hierarchies."""

        p = self.hierarchy
        return PartitionedCache(
            "L3-shared",
            p.l3_size,
            p.l3_assoc,
            p.line_size,
            p.l3_replacement,
            max_reserved_ways=p.max_markov_ways,
        )

    def build_shared_dram(self) -> DramModel:
        """Build a DRAM channel shared between two cores."""

        p = self.hierarchy
        return DramModel(
            latency_cycles=p.dram_latency,
            occupancy_cycles=p.dram_occupancy,
            energy_per_access=p.dram_energy_per_access,
        )

    def describe(self) -> dict[str, str]:
        """Human-readable summary of the configuration (table 2 benchmark)."""

        p = self.hierarchy
        return {
            "Core": f"Trace-driven analytic model, {self.core_frequency_ghz:.0f} GHz equivalent",
            "L1 DCache": f"{p.l1_size // 1024} KiB, {p.l1_assoc}-way, {p.l1_latency:.0f}-cycle hit, deg-8 stride pf",
            "L2 Cache": f"{p.l2_size // 1024} KiB, {p.l2_assoc}-way, {p.l2_latency:.0f}-cycle hit",
            "L3 Cache": f"{p.l3_size // 1024} KiB, {p.l3_assoc}-way, {p.l3_latency:.0f}-cycle hit, up to {p.max_markov_ways} ways of Markov metadata",
            "Markov lookup": f"{self.markov_latency:.0f} cycles per access",
            "Memory": f"LPDDR5-like, {p.dram_latency:.0f}-cycle latency, {p.dram_occupancy:.0f}-cycle occupancy",
            "Energy model": f"DRAM access = {p.dram_energy_per_access:g}, L3 access = {p.l3_energy_per_access:g}",
        }


# ---------------------------------------------------------------------------
# Named systems: the system is a first-class experiment axis
# ---------------------------------------------------------------------------
def _paper_system(scale: float = 1.0) -> SystemConfig:
    """The table 2 system; it is fixed-size, so only ``scale=1.0`` is valid."""

    if scale != 1.0:
        raise ValueError(
            "the 'paper' system is fixed at the table 2 sizes; "
            "use the 'sim-scale' system to rescale"
        )
    return SystemConfig.paper()


#: Named system factories, each accepting a ``scale`` factor.  Studies (and
#: the ``repro study`` CLI) select their system by name + scale, making the
#: simulated machine an overridable axis like workloads and configurations.
SYSTEMS: dict[str, object] = {
    "sim-scale": SystemConfig.scaled,
    "paper": _paper_system,
}


def available_systems() -> list[str]:
    """Every named system, sorted."""

    return sorted(SYSTEMS)


def system_for(name: str = "sim-scale", scale: float = 1.0) -> SystemConfig:
    """Build the named system at the given scale (the study axis resolver)."""

    factory = SYSTEMS.get(name)
    if factory is None:
        raise ValueError(f"unknown system {name!r}; available: {available_systems()}")
    return factory(scale)
