"""The single-core trace-driven simulation engine.

The engine plays a memory-access trace against a hierarchy, invoking the
configured prefetchers on every access and issuing the fills they request.
Prefetch usefulness is attributed back to the prefetcher that issued the
fill (temporal vs stride) so that figure 12's accuracy — which concerns the
temporal prefetcher only — is measured correctly even though both kinds of
prefetch live in the same caches.

:meth:`Simulator.run` is the **reference kernel**: the readable,
object-per-access implementation the fused fast kernel
(:mod:`repro.sim.kernel`) is defined against.  The two must stay
bit-identical — change behaviour here and the parity suite holds the fast
kernel to the new definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import MemoryAccess
from repro.prefetch.base import Prefetcher
from repro.sim.config import SystemConfig
from repro.sim.stats import SimulationStats
from repro.sim.timing import TimingModel


@dataclass
class SimulationResult:
    """Everything a single run produces."""

    stats: SimulationStats
    prefetcher_stats: dict = field(default_factory=dict)

    @property
    def speedup_denominator(self) -> float:
        return self.stats.cycles


class Simulator:
    """Runs one trace on one core with an arbitrary set of prefetchers."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        prefetchers: Sequence[Prefetcher],
        timing: TimingModel | None = None,
        config: SystemConfig | None = None,
        configuration_name: str = "",
    ) -> None:
        self.hierarchy = hierarchy
        self.prefetchers = list(prefetchers)
        self.config = config
        if timing is not None:
            self.timing = timing
        elif config is not None:
            self.timing = TimingModel(config.timing)
        else:
            self.timing = TimingModel()
        self.configuration_name = configuration_name
        for prefetcher in self.prefetchers:
            prefetcher.attach(hierarchy)
        # Maps an in-flight/resident prefetched L2 line to the source that
        # brought it in, so first use can be attributed.
        self._prefetch_source: dict[int, str] = {}
        self._cycles_at_sample_start = 0.0

    # -- main loop ---------------------------------------------------------------
    def run(
        self,
        trace: Iterable[MemoryAccess],
        max_accesses: int | None = None,
        workload_name: str = "",
        warmup_accesses: int = 0,
    ) -> SimulationResult:
        """Run ``trace``; optionally warm caches/prefetchers before sampling.

        The paper warms each checkpoint for 50M instructions before sampling
        5M; ``warmup_accesses`` is the scaled equivalent.  Warm-up accesses
        update every cache, table and confidence counter but are excluded
        from the reported statistics.
        """

        stats = SimulationStats(
            workload=workload_name, configuration=self.configuration_name
        )
        warmup_stats = SimulationStats(
            workload=workload_name, configuration=self.configuration_name
        )
        warmed = 0
        sampling = False
        for access in trace:
            if warmed < warmup_accesses:
                self.step(access, warmup_stats)
                warmed += 1
                continue
            if not sampling:
                self._begin_sampling()
                sampling = True
            if max_accesses is not None and stats.accesses >= max_accesses:
                break
            self.step(access, stats)
        if not sampling:
            # Warm-up consumed the whole trace: reset the counters anyway so
            # the (empty) sample reports zeros rather than warm-up activity.
            self._begin_sampling()
        self._finalise(stats)
        return SimulationResult(
            stats=stats,
            prefetcher_stats={p.name: p.stats for p in self.prefetchers},
        )

    def _begin_sampling(self) -> None:
        """Reset every statistic counter while preserving warmed-up state."""

        self._cycles_at_sample_start = self.timing.cycles
        self.hierarchy.reset_stats()
        for prefetcher in self.prefetchers:
            prefetcher.reset_stats()
        self._prefetch_source.clear()

    def step(self, access: MemoryAccess, stats: SimulationStats) -> None:
        """Simulate a single demand access (exposed for incremental tests)."""

        now = self.timing.cycles
        result = self.hierarchy.demand_access(
            access.pc, access.address, access.is_write, now
        )
        self.timing.account(result)
        stats.accesses += 1
        stats.level_hits[result.level] += 1
        if result.l2_miss:
            stats.l2_demand_misses += 1
        if result.l2_prefetch_first_use:
            self._attribute_usefulness(result.line_address, stats, late=result.late_prefetch_stall > 0)

        for prefetcher in self.prefetchers:
            decisions = prefetcher.observe(
                access.pc, result.line_address, result, self.timing.cycles
            )
            for decision in decisions:
                fill = self.hierarchy.prefetch_fill(
                    decision.address,
                    access.pc,
                    self.timing.cycles,
                    extra_latency=decision.extra_latency,
                    target_level=decision.target_level,
                )
                if fill.already_present:
                    continue
                if decision.metadata_source == "stride":
                    stats.stride_prefetches_issued += 1
                    self._prefetch_source[decision.address] = "stride"
                else:
                    stats.temporal_prefetches_issued += 1
                    self._prefetch_source[decision.address] = "temporal"

    # -- attribution and finalisation ------------------------------------------------
    def _attribute_usefulness(
        self, line_address: int, stats: SimulationStats, late: bool
    ) -> None:
        source = self._prefetch_source.pop(line_address, None)
        if source is None:
            # Prefetched during warm-up (or by a fill the engine did not
            # issue): not counted either way, so accuracy stays well-defined.
            return
        if source == "stride":
            stats.stride_prefetches_useful += 1
        else:
            stats.temporal_prefetches_useful += 1
            if late:
                stats.temporal_prefetches_late += 1

    def _finalise(self, stats: SimulationStats) -> None:
        hierarchy = self.hierarchy
        stats.cycles = self.timing.cycles - self._cycles_at_sample_start
        stats.dram_accesses = hierarchy.dram.total_accesses
        stats.dram_demand_reads = hierarchy.dram.stats.demand_reads
        stats.dram_prefetch_fills = hierarchy.dram.stats.prefetch_fills
        stats.dram_writes = hierarchy.dram.stats.writes
        stats.l3_data_accesses = hierarchy.stats.l3_data_accesses
        stats.markov_accesses = hierarchy.stats.markov_accesses
        stats.dynamic_energy = hierarchy.dynamic_energy()
        stats.markov_final_ways = hierarchy.l3.reserved_ways
        stats.late_prefetch_stall_cycles = hierarchy.stats.late_prefetch_stall_cycles
