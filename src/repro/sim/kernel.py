"""Execution kernels: the fused, allocation-free fast path and its dispatch.

Two kernels can drive a simulation:

* the **reference** kernel is :meth:`repro.sim.engine.Simulator.run` — the
  readable, layered implementation that iterates
  :class:`~repro.memory.request.MemoryAccess` objects and calls
  ``Simulator.step`` per access;
* the **fast** kernel (:func:`run_fast`, this module) runs the same
  simulation as one fused loop over the workload's packed columns (the
  :mod:`repro.sim.stream` protocol): no access objects, one scratch
  :class:`~repro.memory.hierarchy.DemandResult` and
  :class:`~repro.memory.hierarchy.PrefetchFillResult` per run, one reusable
  :class:`~repro.prefetch.base.DecisionBuffer` per run, the L1-hit path
  inlined against the cache's tag index, and every hot attribute bound to a
  local.

The two kernels must produce **bit-identical**
:class:`~repro.sim.stats.SimulationStats` (and prefetcher counters) on
every configuration — the fast kernel performs exactly the reference's
operations in exactly the reference's order, and the parity matrix in
``tests/test_kernel.py`` enforces it.  Because results are identical, a
kernel is an *execution* detail: it is not part of a spec's content hash,
and results computed by either kernel share one store entry.

Selection: the executor defaults to the fast kernel; ``repro ... --kernel
reference`` or ``REPRO_KERNEL=reference`` switches a run back to the
readable implementation (for debugging, or for the bench comparison).
"""

from __future__ import annotations

import os
from time import perf_counter

from repro import obs
from repro.memory.address import CACHE_LINE_SIZE
from repro.memory.hierarchy import DemandResult, PrefetchFillResult
from repro.prefetch.base import DecisionBuffer
from repro.sim.stats import SimulationStats
from repro.sim.stream import access_columns

#: Environment variable overriding the kernel for a whole process tree.
KERNEL_ENV = "REPRO_KERNEL"

#: The recognised kernel names.  ``fast-sharded`` is the fast kernel driven
#: window-by-window by the sharded executor (see :mod:`repro.sim.shard`);
#: on a plain single-stream call it behaves exactly like ``fast``.
KERNELS = ("reference", "fast", "fast-sharded")

#: What the executor uses when neither a call-site nor the environment says.
DEFAULT_KERNEL = "fast"


def resolve_kernel(kernel: str | None = None) -> str:
    """The kernel a run should use: explicit choice > environment > default."""

    chosen = kernel or os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if chosen not in KERNELS:
        raise ValueError(
            f"unknown kernel {chosen!r}; expected one of {', '.join(KERNELS)}"
        )
    return chosen


def run_simulation(
    simulator,
    trace,
    kernel: str | None = None,
    max_accesses: int | None = None,
    workload_name: str = "",
    warmup_accesses: int = 0,
):
    """Run ``trace`` on ``simulator`` under the chosen kernel.

    This is the single dispatch point the execution layer calls; both
    branches return the same :class:`~repro.sim.engine.SimulationResult`
    with bit-identical statistics.
    """

    if resolve_kernel(kernel) == "reference":
        return simulator.run(
            trace,
            max_accesses=max_accesses,
            workload_name=workload_name,
            warmup_accesses=warmup_accesses,
        )
    return run_fast(
        simulator,
        trace,
        max_accesses=max_accesses,
        workload_name=workload_name,
        warmup_accesses=warmup_accesses,
    )


class KernelScratch:
    """Per-core reusable buffers for the allocation-free step.

    One instance serves one simulator for an entire run (the multiprogram
    driver keeps one per core): the demand result, the prefetch-fill result
    and the decision buffer are overwritten access after access.  The two
    prefetcher views are bound on first step: ``hit_prefetchers`` holds
    only the prefetchers whose :attr:`~repro.prefetch.base.Prefetcher.
    observes_hits` contract says they can react to an access with neither
    ``l2_miss`` nor ``l2_prefetch_first_use`` set — the rest are skipped on
    that (dominant) path because calling them is a guaranteed no-op.
    """

    __slots__ = ("result", "fill", "buffer", "all_prefetchers", "hit_prefetchers")

    def __init__(self) -> None:
        self.result = DemandResult(level="l1", latency=0.0, line_address=0)
        self.fill = PrefetchFillResult(
            already_present=False, from_dram=False, ready_cycle=0.0, latency=0.0
        )
        self.buffer = DecisionBuffer()
        self.all_prefetchers: list | None = None
        self.hit_prefetchers: list | None = None

    def bind(self, simulator) -> None:
        """Capture the simulator's prefetcher stack views once per run."""

        self.all_prefetchers = list(simulator.prefetchers)
        self.hit_prefetchers = [
            prefetcher
            for prefetcher in self.all_prefetchers
            if prefetcher.observes_hits
        ]


def step_fast(simulator, pc, address, is_write, stats, scratch: KernelScratch) -> None:
    """One allocation-free access step (the multiprogram fast path).

    Operation-for-operation identical to ``Simulator.step`` — the same
    hierarchy call, the same timing arithmetic, the same attribution and
    prefetch-issue order — but writing into ``scratch`` instead of
    allocating, so the interleaved multiprogram driver gets the same
    statistics the reference engine produces.
    """

    timing = simulator.timing
    now = timing.cycles
    result = simulator.hierarchy.demand_access(
        pc, address, is_write, now, scratch.result
    )
    level = result.level
    timing.cycles = now + (
        timing.params.base_cycles_per_access + timing._weights[level] * result.latency
    )
    timing.accesses += 1
    stats.accesses += 1
    stats.level_hits[level] += 1
    line = result.line_address
    if result.l2_miss:
        stats.l2_demand_misses += 1
    if result.l2_prefetch_first_use:
        simulator._attribute_usefulness(
            line, stats, late=result.late_prefetch_stall > 0
        )

    if scratch.all_prefetchers is None:
        scratch.bind(simulator)
    buffer = scratch.buffer
    fill_scratch = scratch.fill
    source_map = simulator._prefetch_source
    actives = (
        scratch.all_prefetchers
        if (result.l2_miss or result.l2_prefetch_first_use)
        else scratch.hit_prefetchers
    )
    for prefetcher in actives:
        buffer.count = 0
        prefetcher.observe_into(pc, line, result, timing.cycles, buffer)
        if not buffer.count:
            continue
        decisions = buffer._decisions
        for index in range(buffer.count):
            decision = decisions[index]
            fill = simulator.hierarchy.prefetch_fill(
                decision.address,
                pc,
                timing.cycles,
                extra_latency=decision.extra_latency,
                target_level=decision.target_level,
                out=fill_scratch,
            )
            if fill.already_present:
                continue
            if decision.metadata_source == "stride":
                stats.stride_prefetches_issued += 1
                source_map[decision.address] = "stride"
            else:
                stats.temporal_prefetches_issued += 1
                source_map[decision.address] = "temporal"


def run_fast(
    simulator,
    trace,
    max_accesses: int | None = None,
    workload_name: str = "",
    warmup_accesses: int = 0,
):
    """The fused columnar loop (see the module docstring).

    Mirrors ``Simulator.run`` statement for statement: the warm-up phase
    updates a separate statistics object, sampling begins by resetting every
    counter while preserving warmed state, and the access cap breaks out of
    the loop before the capped access executes.
    """

    from repro.sim.engine import SimulationResult

    pcs, addresses, writes, length = access_columns(trace)

    hierarchy = simulator.hierarchy
    timing = simulator.timing
    prefetchers = list(simulator.prefetchers)
    # Prefetchers whose observes_hits contract allows skipping them when an
    # access neither missed the L2 nor first-used a prefetched L2 line (the
    # call would be a guaranteed no-op — see Prefetcher.observes_hits).
    hit_prefetchers = [p for p in prefetchers if p.observes_hits]
    source_map = simulator._prefetch_source

    stats = SimulationStats(
        workload=workload_name, configuration=simulator.configuration_name
    )
    warmup_stats = SimulationStats(
        workload=workload_name, configuration=simulator.configuration_name
    )

    scratch = KernelScratch()
    result = scratch.result
    fill_scratch = scratch.fill
    buffer = scratch.buffer

    # -- hot state bound to locals ----------------------------------------
    l1 = hierarchy.l1d
    l1_stats = l1.stats
    l1_sets = l1._sets
    l1_tag_maps = l1._tag_maps
    l1_on_hit = l1.policy.on_hit
    l1_observe = l1._policy_observe
    l1_line_bits = l1._line_bits
    l1_set_mask = l1._set_mask
    l1_set_bits = l1._set_bits
    hstats = hierarchy.stats
    demand_access = hierarchy.demand_access
    demand_after_l1_miss = hierarchy.demand_after_l1_miss
    prefetch_fill = hierarchy.prefetch_fill
    l1_latency = hierarchy.params.l1_latency
    # The reference path aligns through the global line_address() — which
    # uses CACHE_LINE_SIZE, not the hierarchy's configured line size — so
    # the kernel must use the same mask bit-for-bit, even for exotic
    # HierarchyParams.line_size values.
    line_mask = -CACHE_LINE_SIZE
    base_cycles = timing.params.base_cycles_per_access
    weights = timing.stall_weights()
    weight_l1 = weights["l1"]
    level_hits = stats.level_hits
    warmup_level_hits = warmup_stats.level_hits

    # The timing accumulators live in locals and are flushed back at every
    # point the shared objects become observable (_begin_sampling reads
    # timing.cycles; _finalise reads both): identical arithmetic, identical
    # order, no attribute traffic per access.  The hierarchy's per-access
    # stall bookkeeping is batched the same way: ``demand_count`` and
    # ``stall_cycles`` mirror ``hstats.demand_accesses`` /
    # ``hstats.late_prefetch_stall_cycles`` and are written back (then
    # reloaded) around the only operations that touch those fields on the
    # shared object — ``demand_after_l1_miss`` (L2-hit late-prefetch stall)
    # and the layered ``demand_access`` fallback — and at phase boundaries.
    cycles, timing_accesses = timing.checkpoint()
    demand_count = hstats.demand_accesses
    stall_cycles = hstats.late_prefetch_stall_cycles

    warmed = 0
    sampling = False
    target_stats = warmup_stats if warmup_accesses > 0 else stats
    target_hits = warmup_level_hits if warmup_accesses > 0 else level_hits

    # Telemetry is a coarse per-run sample: one flag read plus at most three
    # clock reads for the whole loop (start, the single sampling-boundary
    # crossing, end) — never per-access work, so the disabled path is
    # bit-and-allocation-identical and the enabled path is O(1) per run.
    telemetry = obs.enabled()
    clock_start = perf_counter() if telemetry else 0.0
    clock_sample = clock_start

    index = 0
    while index < length:
        if warmed < warmup_accesses:
            warmed += 1
        elif not sampling:
            timing.flush(cycles, timing_accesses)
            hstats.demand_accesses = demand_count
            hstats.late_prefetch_stall_cycles = stall_cycles
            simulator._begin_sampling()
            # _begin_sampling reset the hierarchy counters: reload the
            # batched locals from the (now zeroed) shared fields.
            demand_count = hstats.demand_accesses
            stall_cycles = hstats.late_prefetch_stall_cycles
            sampling = True
            target_stats = stats
            target_hits = level_hits
            if telemetry:
                clock_sample = perf_counter()
        if sampling and max_accesses is not None and stats.accesses >= max_accesses:
            break

        pc = pcs[index]
        address = addresses[index]
        is_write = writes[index]
        index += 1

        # -- demand access (L1-hit path inlined) ---------------------------
        now = cycles
        demand_count += 1
        line = address & line_mask
        hit_way = None
        if l1_set_mask is not None:
            line_number = line >> l1_line_bits
            set_index = line_number & l1_set_mask
            tag = line_number >> l1_set_bits
            l1_stats.demand_accesses += 1
            if l1_observe is not None:
                l1_observe(set_index, line, pc)
            hit_way = l1_tag_maps[set_index].get(tag)
            if hit_way is None:
                l1_stats.misses += 1
                # demand_after_l1_miss adds any L2-hit late-prefetch stall
                # straight onto the shared field: sync the batched local
                # around the call.
                hstats.late_prefetch_stall_cycles = stall_cycles
                demand_after_l1_miss(line, pc, bool(is_write), now, result)
                stall_cycles = hstats.late_prefetch_stall_cycles
            else:
                l1_stats.hits += 1
                cache_line = l1_sets[set_index][hit_way]
                first_use = False
                if cache_line.prefetched and not cache_line.used_since_prefetch:
                    cache_line.used_since_prefetch = True
                    first_use = True
                    l1_stats.prefetch_first_uses += 1
                if is_write:
                    cache_line.dirty = True
                l1_on_hit(set_index, hit_way, pc)
                stall = cache_line.ready_cycle - now
                if stall < 0.0:
                    stall = 0.0
                stall_cycles += stall
                result.level = "l1"
                result.latency = l1_latency + stall
                result.line_address = line
                result.l2_miss = False
                result.l2_prefetch_first_use = False
                result.l1_prefetch_first_use = first_use
                result.late_prefetch_stall = stall
        else:
            # Non-power-of-two geometry: take the layered path wholesale
            # (demand_access re-charges the hierarchy counter, so undo the
            # increment above, flush both batched locals, and reload them
            # after the call — demand_access touches both shared fields).
            demand_count -= 1
            hstats.demand_accesses = demand_count
            hstats.late_prefetch_stall_cycles = stall_cycles
            demand_access(pc, address, bool(is_write), now, result)
            demand_count = hstats.demand_accesses
            stall_cycles = hstats.late_prefetch_stall_cycles

        level = result.level
        if hit_way is not None:
            cost = base_cycles + weight_l1 * result.latency
        else:
            cost = base_cycles + weights[level] * result.latency
        cycles = now + cost
        timing_accesses += 1

        target_stats.accesses += 1
        target_hits[level] += 1
        if result.l2_miss:
            target_stats.l2_demand_misses += 1
        if result.l2_prefetch_first_use:
            # Rare branch: share the engine's attribution rules rather than
            # inlining a third copy of them.
            simulator._attribute_usefulness(
                line, target_stats, late=result.late_prefetch_stall > 0
            )

        # -- prefetchers ---------------------------------------------------
        actives = (
            prefetchers
            if (result.l2_miss or result.l2_prefetch_first_use)
            else hit_prefetchers
        )
        for prefetcher in actives:
            buffer.count = 0
            prefetcher.observe_into(pc, line, result, cycles, buffer)
            count = buffer.count
            if not count:
                continue
            decisions = buffer._decisions
            for decision_index in range(count):
                decision = decisions[decision_index]
                fill = prefetch_fill(
                    decision.address,
                    pc,
                    cycles,
                    extra_latency=decision.extra_latency,
                    target_level=decision.target_level,
                    out=fill_scratch,
                )
                if fill.already_present:
                    continue
                if decision.metadata_source == "stride":
                    target_stats.stride_prefetches_issued += 1
                    source_map[decision.address] = "stride"
                else:
                    target_stats.temporal_prefetches_issued += 1
                    source_map[decision.address] = "temporal"

    timing.flush(cycles, timing_accesses)
    hstats.demand_accesses = demand_count
    hstats.late_prefetch_stall_cycles = stall_cycles
    if not sampling:
        # Warm-up consumed the whole trace: reset the counters anyway so
        # the (empty) sample reports zeros rather than warm-up activity.
        simulator._begin_sampling()
    simulator._finalise(stats)
    if telemetry:
        clock_end = perf_counter()
        if not sampling:
            clock_sample = clock_end  # everything was warm-up: empty sample
        obs.record_replay(
            workload_name,
            accesses=stats.accesses,
            prefix_accesses=warmed,
            prefix_seconds=clock_sample - clock_start,
            sample_seconds=clock_end - clock_sample,
        )
    return SimulationResult(
        stats=stats,
        prefetcher_stats={p.name: p.stats for p in prefetchers},
    )


def _window_counter_base(hierarchy, prefetchers) -> tuple:
    """Snapshot of every live counter ``Simulator._finalise`` reads.

    Taken at a shard's window start so the window-local statistics can be
    recovered by subtraction after the shared ``_finalise`` runs — the
    hierarchy/DRAM/prefetcher counters keep accumulating from the sampling
    flush onward, and a shard only owns what happened inside its window.
    """

    from dataclasses import asdict

    dram_stats = hierarchy.dram.stats
    return (
        dram_stats.demand_reads,
        dram_stats.prefetch_fills,
        dram_stats.writes,
        hierarchy.stats.l3_data_accesses,
        hierarchy.stats.markov_accesses,
        tuple((p.name, asdict(p.stats)) for p in prefetchers),
    )


def run_fast_window(simulator, trace, window, workload_name: str = ""):
    """Replay one :class:`~repro.sim.shard.ShardWindow` of a trace.

    The per-shard half of the ``fast-sharded`` kernel: the same fused loop
    as :func:`run_fast`, but phase transitions are driven by absolute access
    *indices* from the window instead of a warm-up countdown:

    * ``[prefix_start, sample_begin)`` warms state (statistics discarded);
    * at ``sample_begin`` the loop performs the sequential kernel's
      sampling-boundary flush — local clock written back,
      ``Simulator._begin_sampling()`` — at exactly the index the sequential
      kernel would, which is what makes full-prefix shards bit-identical;
    * ``[sample_begin, window_start)`` is the overlap gap: simulated under
      sampling conditions, statistics discarded;
    * ``[window_start, window_stop)`` is the owned window.  Counters that
      live on shared objects (hierarchy, DRAM, prefetchers) are snapshot at
      its start and subtracted after ``_finalise``, so the returned
      statistics cover the window alone.

    Returns a :class:`~repro.sim.shard.ShardOutcome` carrying the
    window-local statistics plus the raw clock/stall endpoints the merge
    needs (see :func:`repro.sim.shard.merge_shard_outcomes`).
    """

    from dataclasses import asdict

    from repro.sim.shard import ShardOutcome

    offset = window.prefix_start
    window_getter = getattr(trace, "window_columns", None)
    if window_getter is not None:
        # Chunk-selective path: a v2 ChunkedTrace serves the replay range
        # ``[prefix_start, window_stop)`` by decoding only the chunks that
        # range covers — a shard never pays for records outside its window.
        length = len(trace)
        if window.window_stop > length:
            raise ValueError(
                f"shard window [{window.window_start}:{window.window_stop}) "
                f"exceeds the trace length {length}"
            )
        pcs, addresses, writes, _length = window_getter(
            offset, window.window_stop
        )
    else:
        columns = access_columns(trace)
        if window.window_stop > columns.length:
            raise ValueError(
                f"shard window [{window.window_start}:{window.window_stop}) "
                f"exceeds the trace length {columns.length}"
            )
        # Zero-copy view of this shard's replay range: buffer-backed columns
        # (arrays, the mmap-backed trace path) share storage, so K workers
        # slicing one trace never multiply its resident size.
        from repro.sim.stream import slice_columns

        pcs, addresses, writes, _length = slice_columns(
            columns, offset, window.window_stop
        )

    hierarchy = simulator.hierarchy
    timing = simulator.timing
    prefetchers = list(simulator.prefetchers)
    hit_prefetchers = [p for p in prefetchers if p.observes_hits]
    source_map = simulator._prefetch_source

    stats = SimulationStats(
        workload=workload_name, configuration=simulator.configuration_name
    )
    # Prefix and overlap-gap activity lands here and is dropped.
    discard_stats = SimulationStats(
        workload=workload_name, configuration=simulator.configuration_name
    )

    scratch = KernelScratch()
    result = scratch.result
    fill_scratch = scratch.fill
    buffer = scratch.buffer

    # -- hot state bound to locals (identical to run_fast) -----------------
    l1 = hierarchy.l1d
    l1_stats = l1.stats
    l1_sets = l1._sets
    l1_tag_maps = l1._tag_maps
    l1_on_hit = l1.policy.on_hit
    l1_observe = l1._policy_observe
    l1_line_bits = l1._line_bits
    l1_set_mask = l1._set_mask
    l1_set_bits = l1._set_bits
    hstats = hierarchy.stats
    demand_access = hierarchy.demand_access
    demand_after_l1_miss = hierarchy.demand_after_l1_miss
    prefetch_fill = hierarchy.prefetch_fill
    l1_latency = hierarchy.params.l1_latency
    line_mask = -CACHE_LINE_SIZE
    base_cycles = timing.params.base_cycles_per_access
    weights = timing.stall_weights()
    weight_l1 = weights["l1"]
    level_hits = stats.level_hits
    discard_hits = discard_stats.level_hits

    # Batched accumulators, same contract as run_fast: locals carry the
    # authoritative totals, the shared objects are synced at phase
    # boundaries and around the two hierarchy calls that touch them.
    cycles, timing_accesses = timing.checkpoint()
    demand_count = hstats.demand_accesses
    stall_cycles = hstats.late_prefetch_stall_cycles

    sample_begin = window.sample_begin
    window_start = window.window_start
    stop = window.window_stop
    sampling = False
    windowed = False
    clock_sample_start = cycles
    clock_window_start = cycles
    stall_window_start = stall_cycles
    counter_base = None
    target_stats = discard_stats
    target_hits = discard_hits

    # Coarse wall-clock telemetry, same contract as run_fast: at most three
    # perf_counter reads per shard (start, the single window-start crossing,
    # end) — the prefix phase is everything replayed before the owned window.
    telemetry = obs.enabled()
    wall_start = perf_counter() if telemetry else 0.0
    wall_window = wall_start

    index = offset
    while index < stop:
        if not sampling and index >= sample_begin:
            # The sampling-boundary flush, at the sequential kernel's exact
            # index: locals become observable, every counter resets.
            timing.flush(cycles, timing_accesses)
            hstats.demand_accesses = demand_count
            hstats.late_prefetch_stall_cycles = stall_cycles
            simulator._begin_sampling()
            demand_count = hstats.demand_accesses
            stall_cycles = hstats.late_prefetch_stall_cycles
            sampling = True
            clock_sample_start = simulator._cycles_at_sample_start
        if not windowed and index >= window_start:
            counter_base = _window_counter_base(hierarchy, prefetchers)
            clock_window_start = cycles
            stall_window_start = stall_cycles
            windowed = True
            target_stats = stats
            target_hits = level_hits
            if telemetry:
                wall_window = perf_counter()

        position = index - offset
        pc = pcs[position]
        address = addresses[position]
        is_write = writes[position]
        index += 1

        # -- demand access (L1-hit path inlined) ---------------------------
        now = cycles
        demand_count += 1
        line = address & line_mask
        hit_way = None
        if l1_set_mask is not None:
            line_number = line >> l1_line_bits
            set_index = line_number & l1_set_mask
            tag = line_number >> l1_set_bits
            l1_stats.demand_accesses += 1
            if l1_observe is not None:
                l1_observe(set_index, line, pc)
            hit_way = l1_tag_maps[set_index].get(tag)
            if hit_way is None:
                l1_stats.misses += 1
                hstats.late_prefetch_stall_cycles = stall_cycles
                demand_after_l1_miss(line, pc, bool(is_write), now, result)
                stall_cycles = hstats.late_prefetch_stall_cycles
            else:
                l1_stats.hits += 1
                cache_line = l1_sets[set_index][hit_way]
                first_use = False
                if cache_line.prefetched and not cache_line.used_since_prefetch:
                    cache_line.used_since_prefetch = True
                    first_use = True
                    l1_stats.prefetch_first_uses += 1
                if is_write:
                    cache_line.dirty = True
                l1_on_hit(set_index, hit_way, pc)
                stall = cache_line.ready_cycle - now
                if stall < 0.0:
                    stall = 0.0
                stall_cycles += stall
                result.level = "l1"
                result.latency = l1_latency + stall
                result.line_address = line
                result.l2_miss = False
                result.l2_prefetch_first_use = False
                result.l1_prefetch_first_use = first_use
                result.late_prefetch_stall = stall
        else:
            demand_count -= 1
            hstats.demand_accesses = demand_count
            hstats.late_prefetch_stall_cycles = stall_cycles
            demand_access(pc, address, bool(is_write), now, result)
            demand_count = hstats.demand_accesses
            stall_cycles = hstats.late_prefetch_stall_cycles

        level = result.level
        if hit_way is not None:
            cost = base_cycles + weight_l1 * result.latency
        else:
            cost = base_cycles + weights[level] * result.latency
        cycles = now + cost
        timing_accesses += 1

        target_stats.accesses += 1
        target_hits[level] += 1
        if result.l2_miss:
            target_stats.l2_demand_misses += 1
        if result.l2_prefetch_first_use:
            simulator._attribute_usefulness(
                line, target_stats, late=result.late_prefetch_stall > 0
            )

        # -- prefetchers ---------------------------------------------------
        actives = (
            prefetchers
            if (result.l2_miss or result.l2_prefetch_first_use)
            else hit_prefetchers
        )
        for prefetcher in actives:
            buffer.count = 0
            prefetcher.observe_into(pc, line, result, cycles, buffer)
            count = buffer.count
            if not count:
                continue
            decisions = buffer._decisions
            for decision_index in range(count):
                decision = decisions[decision_index]
                fill = prefetch_fill(
                    decision.address,
                    pc,
                    cycles,
                    extra_latency=decision.extra_latency,
                    target_level=decision.target_level,
                    out=fill_scratch,
                )
                if fill.already_present:
                    continue
                if decision.metadata_source == "stride":
                    target_stats.stride_prefetches_issued += 1
                    source_map[decision.address] = "stride"
                else:
                    target_stats.temporal_prefetches_issued += 1
                    source_map[decision.address] = "temporal"

    timing.flush(cycles, timing_accesses)
    hstats.demand_accesses = demand_count
    hstats.late_prefetch_stall_cycles = stall_cycles
    if not sampling:
        # Degenerate empty window at the trace tail: flush anyway so the
        # zero statistics are reported against a consistent boundary.
        simulator._begin_sampling()
        clock_sample_start = simulator._cycles_at_sample_start
    if not windowed:
        counter_base = _window_counter_base(hierarchy, prefetchers)
        clock_window_start = timing.cycles
        stall_window_start = hstats.late_prefetch_stall_cycles
    stall_end = hstats.late_prefetch_stall_cycles
    simulator._finalise(stats)

    # ``_finalise`` read the shared accumulators, which cover everything
    # since the sampling flush; subtract the window-start snapshot so the
    # statistics describe the owned window only.  The energy recompute uses
    # the hierarchy's exact expression shape over the window deltas (dyadic
    # constants times integer counters, so it is summation-exact).
    (
        base_reads,
        base_fills,
        base_writes,
        base_l3_data,
        base_markov,
        prefetcher_base,
    ) = counter_base
    stats.dram_demand_reads -= base_reads
    stats.dram_prefetch_fills -= base_fills
    stats.dram_writes -= base_writes
    stats.dram_accesses -= base_reads + base_fills + base_writes
    stats.l3_data_accesses -= base_l3_data
    stats.markov_accesses -= base_markov
    stats.late_prefetch_stall_cycles = stall_end - stall_window_start
    stats.dynamic_energy = (
        stats.dram_accesses * hierarchy.dram.energy_per_access
        + (stats.l3_data_accesses + stats.markov_accesses)
        * hierarchy.params.l3_energy_per_access
    )
    stats.cycles = timing.cycles - clock_window_start

    prefetcher_counters = {}
    for (name, base_counters), prefetcher in zip(prefetcher_base, prefetchers):
        current = asdict(prefetcher.stats)
        prefetcher_counters[name] = {
            field: current[field] - base_value
            for field, base_value in base_counters.items()
        }

    if telemetry:
        wall_end = perf_counter()
        if not windowed:
            wall_window = wall_end  # degenerate empty window: no owned time
        obs.record_replay(
            workload_name,
            accesses=stats.accesses,
            prefix_accesses=max(min(window_start, stop) - offset, 0),
            prefix_seconds=wall_window - wall_start,
            sample_seconds=wall_end - wall_window,
        )

    return ShardOutcome(
        index=window.index,
        stats=stats,
        prefetcher_counters=prefetcher_counters,
        clock_sample_start=clock_sample_start,
        clock_window_start=clock_window_start,
        clock_end=timing.cycles,
        stall_window_start=stall_window_start,
        stall_end=stall_end,
        exact=window.prefix_start == 0,
    )
