"""Two-core multiprogrammed simulation (paper section 6.3, figure 16).

The paper runs adjacent pairs of its SPEC workloads on two cores
simultaneously to expose a more bandwidth-constrained environment.  The
per-core structures of the prefetchers stay private, but the L3 (and hence
the Markov partition), the Set Dueller and the DRAM channel are shared.

This module wires that up: two :class:`~repro.memory.hierarchy.
MemoryHierarchy` instances share one :class:`~repro.memory.
partitioned_cache.PartitionedCache` and one :class:`~repro.memory.dram.
DramModel`; two prefetcher stacks are built independently and then, for
temporal prefetchers, their Markov table and partition sizer are unified so
both cores read and train the same metadata (``share_metadata=False``
keeps every core's metadata private instead).  Accesses from the two
traces are interleaved round-robin, which approximates two cores
progressing at similar rates while sharing the memory system.

Runs of this simulator are described by
:class:`~repro.experiments.jobs.MultiProgramSpec` and persist in the
result store as full :class:`MultiProgramResult` payloads (see
:meth:`MultiProgramResult.as_payload`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from repro.memory.request import MemoryAccess
from repro.prefetch.base import Prefetcher
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.stats import SimulationStats
from repro.sim.timing import TimingModel


@dataclass
class MultiProgramResult:
    """Per-core results of a multiprogrammed run."""

    core_results: list[SimulationResult] = field(default_factory=list)

    def speedups_relative_to(self, baseline: "MultiProgramResult") -> list[float]:
        """Per-core speedups against the matching cores of a baseline run."""

        return [
            mine.stats.speedup_relative_to(theirs.stats)
            for mine, theirs in zip(self.core_results, baseline.core_results)
        ]

    @property
    def total_dram_accesses(self) -> int:
        """DRAM accesses of the run (shared channel, so the per-core max)."""

        # The DRAM model is shared, so both cores report the same totals;
        # take the maximum rather than summing the duplicate counters.
        return max(result.stats.dram_accesses for result in self.core_results)

    # -- persistence ---------------------------------------------------------
    def as_payload(self) -> dict:
        """JSON-safe form for the result store (exact counter round-trip)."""

        return {
            "cores": [
                {
                    "stats": asdict(result.stats),
                    "prefetchers": {
                        name: asdict(stats)
                        for name, stats in result.prefetcher_stats.items()
                    },
                }
                for result in self.core_results
            ]
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MultiProgramResult":
        """Rebuild a result (stats and prefetcher counters) from a payload."""

        from repro.prefetch.base import PrefetcherStats

        return cls(
            core_results=[
                SimulationResult(
                    stats=SimulationStats(**core["stats"]),
                    prefetcher_stats={
                        name: PrefetcherStats(**stats)
                        for name, stats in core.get("prefetchers", {}).items()
                    },
                )
                for core in payload["cores"]
            ]
        )


def share_temporal_metadata(prefetchers_by_core: Sequence[Sequence[Prefetcher]]) -> None:
    """Make temporal prefetchers on all cores share Markov state and sizing.

    The paper shares the Markov partition and the Set Dueller between cores
    while keeping the training table, samplers and MRB core-private.  The
    first core's structures become the shared ones.
    """

    shared_markov = None
    shared_dueller = None
    shared_bloom = None
    for prefetchers in prefetchers_by_core:
        for prefetcher in prefetchers:
            if not hasattr(prefetcher, "markov") or prefetcher.markov is None:
                continue
            if shared_markov is None:
                shared_markov = prefetcher.markov
                shared_dueller = getattr(prefetcher, "dueller", None)
                shared_bloom = getattr(prefetcher, "bloom_sizer", None)
                if shared_bloom is None:
                    shared_bloom = getattr(prefetcher, "sizer", None)
            else:
                prefetcher.markov = shared_markov
                if hasattr(prefetcher, "dueller") and shared_dueller is not None:
                    prefetcher.dueller = shared_dueller
                if hasattr(prefetcher, "bloom_sizer") and shared_bloom is not None:
                    prefetcher.bloom_sizer = shared_bloom
                if hasattr(prefetcher, "sizer") and shared_bloom is not None:
                    prefetcher.sizer = shared_bloom


class MultiProgramSimulator:
    """Round-robin interleaved simulation of two (or more) traces."""

    def __init__(
        self,
        config: SystemConfig,
        prefetcher_factory: Callable[[], Sequence[Prefetcher]],
        num_cores: int = 2,
        configuration_name: str = "",
        share_metadata: bool = True,
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be at least 1")
        self.config = config
        self.configuration_name = configuration_name
        shared_l3 = config.build_shared_l3()
        shared_dram = config.build_shared_dram()
        self.simulators: list[Simulator] = []
        prefetchers_by_core: list[Sequence[Prefetcher]] = []
        for _core in range(num_cores):
            hierarchy = config.build_hierarchy(shared_l3=shared_l3, shared_dram=shared_dram)
            prefetchers = prefetcher_factory()
            simulator = Simulator(
                hierarchy,
                prefetchers,
                timing=TimingModel(config.timing),
                config=config,
                configuration_name=configuration_name,
            )
            self.simulators.append(simulator)
            prefetchers_by_core.append(prefetchers)
        if share_metadata:
            share_temporal_metadata(prefetchers_by_core)

    def run(
        self,
        traces: Sequence[Sequence[MemoryAccess]],
        workload_names: Sequence[str] | None = None,
        max_accesses_per_core: int | None = None,
        warmup_accesses_per_core: int = 0,
        kernel: str | None = None,
    ) -> MultiProgramResult:
        """Interleave the traces round-robin and return per-core results.

        ``kernel`` selects the execution kernel (:mod:`repro.sim.kernel`):
        the fast kernel steps each core from its trace's packed columns
        through reusable scratch buffers, the reference kernel materialises
        :class:`MemoryAccess` objects and calls ``Simulator.step`` — both
        produce bit-identical per-core statistics.
        """

        from repro.sim.kernel import KernelScratch, resolve_kernel, step_fast
        from repro.sim.stream import access_columns

        if len(traces) != len(self.simulators):
            raise ValueError(
                f"expected {len(self.simulators)} traces, got {len(traces)}"
            )
        # "fast-sharded" degrades to the plain fast stepping here: sharding
        # applies to single-stream replay, and the interleaved driver must
        # never silently fall back to the reference path under it.
        fast = resolve_kernel(kernel) != "reference"
        names = list(workload_names or ["" for _ in traces])
        if fast:
            columns = [access_columns(trace) for trace in traces]
            positions = [0] * len(traces)
            scratches = [KernelScratch() for _ in traces]
            iterators = None
        else:
            columns = None
            iterators = [iter(trace) for trace in traces]
        warmup_stats = [
            SimulationStats(workload=name, configuration=self.configuration_name)
            for name in names
        ]
        stats = [
            SimulationStats(workload=name, configuration=self.configuration_name)
            for name in names
        ]
        finished = [False] * len(traces)
        warmed_up = warmup_accesses_per_core <= 0
        while not all(finished):
            if not warmed_up and all(
                per_core.accesses >= warmup_accesses_per_core or finished[core]
                for core, per_core in enumerate(warmup_stats)
            ):
                for simulator in self.simulators:
                    simulator._begin_sampling()
                warmed_up = True
            active_stats = stats if warmed_up else warmup_stats
            for core in range(len(traces)):
                if finished[core]:
                    continue
                if (
                    warmed_up
                    and max_accesses_per_core is not None
                    and stats[core].accesses >= max_accesses_per_core
                ):
                    finished[core] = True
                    continue
                if fast:
                    cols = columns[core]
                    position = positions[core]
                    if position >= cols.length:
                        finished[core] = True
                        continue
                    positions[core] = position + 1
                    step_fast(
                        self.simulators[core],
                        cols.pcs[position],
                        cols.addresses[position],
                        bool(cols.writes[position]),
                        active_stats[core],
                        scratches[core],
                    )
                else:
                    try:
                        access = next(iterators[core])
                    except StopIteration:
                        finished[core] = True
                        continue
                    self.simulators[core].step(access, active_stats[core])

        results = []
        for core, simulator in enumerate(self.simulators):
            simulator._finalise(stats[core])
            results.append(
                SimulationResult(
                    stats=stats[core],
                    prefetcher_stats={
                        p.name: p.stats for p in simulator.prefetchers
                    },
                )
            )
        return MultiProgramResult(core_results=results)
