"""Trace-window sharding: split one replay into windows, merge the stats.

One simulation normally replays its whole trace on one core.  Sharding cuts
the *sampled* region of the trace into K contiguous windows that pool
workers can replay concurrently — the intra-run analogue of the batch
executor's across-spec parallelism — and merges the per-window statistics
back into one :class:`~repro.sim.stats.SimulationStats` deterministically.

The three pieces live here:

* :func:`plan_shards` builds a :class:`ShardPlan`: the warm-up boundary, the
  sampled region (warm-up fraction and access cap applied exactly as the
  sequential kernel applies them), and K near-equal contiguous
  :class:`ShardWindow` entries.  Each window i > 0 additionally replays a
  configurable *overlap prefix* of its predecessor's tail — unsampled — to
  warm caches and prefetcher state before its own sampling window opens.
* :class:`ShardOutcome` is what one window's replay returns (see
  :func:`repro.sim.kernel.run_fast_window`): the window-local statistics
  plus the raw clock/stall-accumulator endpoints the merge needs.
* :func:`merge_shard_outcomes` combines outcomes in shard order.  Integer
  counters are window partitions and sum exactly.  The float accumulators
  (cycles, late-prefetch stall) are *not* summed when every shard replayed
  from access 0 (``overlap="full"``, or a numeric overlap that covered the
  whole prefix): each such shard's clock is then bit-identical to the
  sequential kernel's clock at the same access index, so subtracting the
  first shard's sampling-start endpoint from the last shard's final
  endpoint reproduces the sequential result *bit for bit* — float addition
  is not associative, endpoint subtraction sidesteps it entirely.

Overlap spellings (``shard_overlap`` on specs, ``--shard-overlap`` on the
CLI): a non-negative access count, ``"warmup"`` (the run's warm-up length —
the default), or ``"full"`` (every shard replays its entire prefix;
bit-identical results at the cost of more replayed accesses per shard).

The parity contract, concretely:

* ``overlap="full"`` — merged statistics are byte-identical to the
  sequential fast kernel's (every field, floats included);
* any finite overlap — ``accesses`` is always exact (the windows partition
  the sampled region); the remaining counters carry a measured tolerance,
  :data:`SHARD_PARITY_TOLERANCE`, asserted by the tests and the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.sim.stats import SimulationStats, combine_stats

#: Environment variable supplying a default shard count to the CLI
#: (explicit ``--shards`` wins; unset means sequential).
SHARDS_ENV = "REPRO_SHARDS"

#: Overlap spelling: replay the run's warm-up length before each window.
OVERLAP_WARMUP = "warmup"

#: Overlap spelling: replay the entire prefix (bit-identical results).
OVERLAP_FULL = "full"

#: What specs and the CLI use when no overlap is given.
DEFAULT_OVERLAP = OVERLAP_WARMUP

#: Maximum relative deviation, per headline counter, that a finite-overlap
#: sharded run may show against the sequential fast kernel *on the
#: workloads it is gated on* — quick-training streams like the bench's
#: pointer-chase replay, where the measured deviation is 0.0 at
#: K ∈ {2, 4} (see ``tests/test_shard.py`` and ``repro bench --shards``).
#: Slow-training temporal workloads can exceed this under finite overlap
#: (each shard retrains long-range metadata from scratch); for those, use
#: ``overlap="full"``, which is bit-identical and gated across the whole
#: configuration matrix.  The ``accesses`` counter is never allowed to
#: deviate at all.  Documented in ``docs/architecture.md``.
SHARD_PARITY_TOLERANCE = 0.05

#: The counters the parity report compares (``accesses`` is checked for
#: exact equality separately).
_PARITY_FIELDS = (
    "cycles",
    "l2_demand_misses",
    "dram_accesses",
    "l3_data_accesses",
    "markov_accesses",
    "dynamic_energy",
    "temporal_prefetches_issued",
    "stride_prefetches_issued",
)


def normalize_overlap(value) -> int | str:
    """Canonicalise an overlap spelling (count, ``"warmup"``, ``"full"``).

    Accepts the CLI's string forms (``"3"``, ``"warmup"``, ``"full"``) and
    the programmatic int/keyword forms; rejects everything else loudly so a
    typo can never silently run with a different warm-up than intended.
    """

    if value is None:
        return DEFAULT_OVERLAP
    if isinstance(value, str):
        text = value.strip().lower()
        if text in (OVERLAP_WARMUP, OVERLAP_FULL):
            return text
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"invalid shard overlap {value!r}: expected a non-negative "
                f"access count, {OVERLAP_WARMUP!r} or {OVERLAP_FULL!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"invalid shard overlap {value!r}: expected a non-negative "
            f"access count, {OVERLAP_WARMUP!r} or {OVERLAP_FULL!r}"
        )
    if value < 0:
        raise ValueError(f"shard overlap must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class ShardWindow:
    """One shard's replay range and the phase boundaries inside it.

    The shard replays ``[prefix_start, window_stop)``.  Accesses before
    ``sample_begin`` warm state under the warm-up statistics object; at
    ``sample_begin`` the kernel performs the sequential kernel's sampling
    flush (counter reset, clock snapshot); accesses in
    ``[sample_begin, window_start)`` are the overlap gap — simulated under
    sampling conditions but discarded; ``[window_start, window_stop)`` is
    the window this shard owns, and the only part whose statistics survive
    the merge.  A shard with ``prefix_start == 0`` replays the sequential
    kernel's exact prefix, so ``sample_begin`` sits at the run's true
    warm-up boundary and every counter it produces is bit-identical to the
    sequential kernel's at the same index.
    """

    index: int
    prefix_start: int
    sample_begin: int
    window_start: int
    window_stop: int

    @property
    def window_accesses(self) -> int:
        """Accesses in the owned (merged) window."""

        return self.window_stop - self.window_start

    @property
    def replay_accesses(self) -> int:
        """Accesses this shard replays in total (prefix + gap + window)."""

        return self.window_stop - self.prefix_start

    @property
    def exact(self) -> bool:
        """Whether this shard replays the sequential kernel's exact prefix."""

        return self.prefix_start == 0


@dataclass(frozen=True)
class ShardPlan:
    """How one trace replay splits into contiguous sampled windows."""

    total_accesses: int
    warmup_accesses: int
    requested_shards: int
    overlap: int | str
    windows: tuple

    @property
    def shard_count(self) -> int:
        return len(self.windows)

    @property
    def sampled_accesses(self) -> int:
        """Accesses in the sampled region the windows partition."""

        if not self.windows:
            return 0
        return self.windows[-1].window_stop - self.windows[0].window_start

    @property
    def replayed_accesses(self) -> int:
        """Total accesses replayed across all shards (the overlap cost)."""

        return sum(window.replay_accesses for window in self.windows)

    @property
    def exact(self) -> bool:
        """Whether merged results are bit-identical to sequential replay."""

        return all(window.exact for window in self.windows)

    def describe(self) -> list[str]:
        """Human-readable plan summary (``repro trace info --shards``)."""

        lines = [
            f"{self.shard_count} shard(s) over {self.sampled_accesses} "
            f"sampled accesses (warm-up {self.warmup_accesses}, "
            f"overlap {self.overlap}"
            + (", bit-identical" if self.exact else "")
            + ")"
        ]
        for window in self.windows:
            warm = window.window_start - window.prefix_start
            lines.append(
                f"shard {window.index}: replay "
                f"[{window.prefix_start}:{window.window_stop}) "
                f"sample [{window.window_start}:{window.window_stop}) "
                f"({window.window_accesses} accesses, {warm} warm-up)"
            )
        return lines


def plan_shards(
    total_accesses: int,
    warmup_accesses: int,
    shards: int,
    overlap: int | str = DEFAULT_OVERLAP,
    max_accesses: int | None = None,
) -> ShardPlan:
    """Split one replay into K contiguous sampled windows.

    The sampled region is exactly what the sequential kernel samples: it
    opens at ``warmup_accesses`` and closes at the trace end or after
    ``max_accesses`` sampled accesses, whichever comes first.  It is split
    into ``shards`` near-equal contiguous windows (earlier windows take the
    remainder).  When the region is too small to give every shard at least
    one access — K greater than the sampled count included — the plan
    degenerates to a single shard, which callers run on the plain
    sequential path.
    """

    if shards < 1:
        raise ValueError(f"shard count must be at least 1, got {shards}")
    if total_accesses < 0:
        raise ValueError("total_accesses must be non-negative")
    overlap = normalize_overlap(overlap)
    warmup = min(max(warmup_accesses, 0), total_accesses)
    sampled = total_accesses - warmup
    if max_accesses is not None:
        sampled = min(sampled, max(max_accesses, 0))
    stop = warmup + sampled

    effective = shards if shards <= max(sampled, 1) else 1
    if effective == 1:
        windows = (
            ShardWindow(
                index=0,
                prefix_start=0,
                sample_begin=warmup,
                window_start=warmup,
                window_stop=stop,
            ),
        )
        return ShardPlan(
            total_accesses=total_accesses,
            warmup_accesses=warmup,
            requested_shards=shards,
            overlap=overlap,
            windows=windows,
        )

    base, remainder = divmod(sampled, effective)
    windows = []
    start = warmup
    for index in range(effective):
        size = base + (1 if index < remainder else 0)
        end = start + size
        if index == 0 or overlap == OVERLAP_FULL:
            prefix_start = 0
        elif overlap == OVERLAP_WARMUP:
            prefix_start = max(0, start - warmup)
        else:
            prefix_start = max(0, start - overlap)
        # A shard replaying from access 0 re-walks the sequential prefix,
        # so its sampling flush must land exactly where the sequential
        # kernel's does — at the true warm-up boundary — for its clock and
        # counters to be bit-identical.  A shard with a partial prefix has
        # no sequential-identical state to preserve; it opens sampling at
        # its own window so the gap stays minimal.
        sample_begin = warmup if prefix_start == 0 else start
        windows.append(
            ShardWindow(
                index=index,
                prefix_start=prefix_start,
                sample_begin=sample_begin,
                window_start=start,
                window_stop=end,
            )
        )
        start = end
    return ShardPlan(
        total_accesses=total_accesses,
        warmup_accesses=warmup,
        requested_shards=shards,
        overlap=overlap,
        windows=tuple(windows),
    )


@dataclass(frozen=True)
class ShardOutcome:
    """What replaying one :class:`ShardWindow` produces (picklable).

    ``stats`` holds the window-local statistics.  The four float endpoints
    are *raw accumulator values*, not deltas: ``clock_sample_start`` is the
    clock at the sampling flush, ``clock_end`` the clock after the window's
    last access, and the two ``stall`` fields bracket the late-prefetch
    stall accumulator the same way.  :func:`merge_shard_outcomes` uses them
    to reconstruct the sequential kernel's exact subtraction when every
    shard is ``exact``.
    """

    index: int
    stats: SimulationStats
    prefetcher_counters: dict
    clock_sample_start: float
    clock_window_start: float
    clock_end: float
    stall_window_start: float
    stall_end: float
    exact: bool


def _ordered(outcomes: Sequence[ShardOutcome]) -> list[ShardOutcome]:
    if not outcomes:
        raise ValueError("cannot merge zero shard outcomes")
    ordered = sorted(outcomes, key=lambda outcome: outcome.index)
    indices = [outcome.index for outcome in ordered]
    if indices != list(range(len(ordered))):
        raise ValueError(
            f"shard outcomes must cover indices 0..{len(ordered) - 1} "
            f"exactly once, got {indices}"
        )
    return ordered


def merge_shard_outcomes(outcomes: Sequence[ShardOutcome]) -> SimulationStats:
    """Combine per-shard statistics into one run's statistics, in order.

    Integer counters sum (the windows partition the sampled region);
    ``markov_final_ways`` is the last shard's final state.  When every
    shard replayed the full prefix, the float accumulators are rebuilt from
    the endpoint values instead of summed — see the module docstring for
    why that makes the merge bit-identical to sequential replay.
    """

    ordered = _ordered(outcomes)
    merged = combine_stats([outcome.stats for outcome in ordered])
    if all(outcome.exact for outcome in ordered):
        first, last = ordered[0], ordered[-1]
        merged.cycles = last.clock_end - first.clock_sample_start
        merged.late_prefetch_stall_cycles = (
            last.stall_end - first.stall_window_start
        )
    return merged


def merge_prefetcher_counters(
    outcomes: Sequence[ShardOutcome],
) -> dict[str, dict[str, int]]:
    """Sum each prefetcher's window-local counters across shards."""

    ordered = _ordered(outcomes)
    merged: dict[str, dict[str, int]] = {}
    for outcome in ordered:
        for name, counters in outcome.prefetcher_counters.items():
            into = merged.setdefault(name, dict.fromkeys(counters, 0))
            for field, value in counters.items():
                into[field] += value
    return merged


def shard_parity_report(
    sequential: Mapping, merged: Mapping
) -> dict[str, float]:
    """Relative deviation of merged-vs-sequential statistics, per counter.

    Both arguments are ``dataclasses.asdict`` forms of
    :class:`SimulationStats`.  ``accesses`` reports the absolute
    difference (the contract requires exactly zero); every other headline
    counter reports ``|merged - sequential| / max(|sequential|, 1)``.  The
    bench and the shard tests assert the maximum against
    :data:`SHARD_PARITY_TOLERANCE`.
    """

    report = {"accesses": float(abs(merged["accesses"] - sequential["accesses"]))}
    for field in _PARITY_FIELDS:
        expected = sequential[field]
        actual = merged[field]
        report[field] = abs(actual - expected) / max(abs(expected), 1.0)
    return report
