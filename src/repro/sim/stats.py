"""Simulation statistics and the metrics the paper reports.

The evaluation section of the paper uses five headline metrics, all of which
are derived from the counters gathered here:

* **Speedup** (figure 10) — baseline cycles / configuration cycles;
* **Normalised DRAM traffic** (figure 11) — total DRAM accesses relative to
  the baseline, including prefetch fills and write-backs;
* **Accuracy** (figure 12) — temporal prefetches used before L2 eviction,
  divided by temporal prefetches issued;
* **Coverage** (figure 13) — the fraction of the baseline's L2 demand misses
  that the configuration eliminates;
* **Normalised L3 accesses / dynamic energy** (figures 14, 15) — L3 data +
  Markov-table accesses, and the 25:1 DRAM:L3 energy model.

Normalisation against a baseline run happens in
:mod:`repro.experiments.runner`; this module only collects per-run values.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationStats:
    """Counters for a single simulated run of one trace on one core."""

    workload: str = ""
    configuration: str = ""
    accesses: int = 0
    cycles: float = 0.0
    level_hits: dict = field(
        default_factory=lambda: {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
    )
    l2_demand_misses: int = 0
    temporal_prefetches_issued: int = 0
    temporal_prefetches_useful: int = 0
    temporal_prefetches_late: int = 0
    stride_prefetches_issued: int = 0
    stride_prefetches_useful: int = 0
    dram_accesses: int = 0
    dram_demand_reads: int = 0
    dram_prefetch_fills: int = 0
    dram_writes: int = 0
    l3_data_accesses: int = 0
    markov_accesses: int = 0
    dynamic_energy: float = 0.0
    markov_final_ways: int = 0
    late_prefetch_stall_cycles: float = 0.0

    # -- derived metrics ------------------------------------------------------
    @property
    def total_l3_accesses(self) -> int:
        return self.l3_data_accesses + self.markov_accesses

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    @property
    def accuracy(self) -> float:
        """Temporal-prefetch accuracy as defined in figure 12."""

        if self.temporal_prefetches_issued == 0:
            return 1.0
        return self.temporal_prefetches_useful / self.temporal_prefetches_issued

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_demand_misses / self.accesses if self.accesses else 0.0

    def coverage_relative_to(self, baseline: "SimulationStats") -> float:
        """Fraction of baseline L2 demand misses this run eliminated (fig. 13)."""

        if baseline.l2_demand_misses == 0:
            return 0.0
        eliminated = baseline.l2_demand_misses - self.l2_demand_misses
        return max(0.0, eliminated / baseline.l2_demand_misses)

    def speedup_relative_to(self, baseline: "SimulationStats") -> float:
        """Speedup over the baseline configuration (fig. 10)."""

        if self.cycles == 0:
            return 1.0
        return baseline.cycles / self.cycles

    def dram_traffic_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised DRAM traffic (fig. 11)."""

        if baseline.dram_accesses == 0:
            return 1.0 if self.dram_accesses == 0 else float("inf")
        return self.dram_accesses / baseline.dram_accesses

    def l3_accesses_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised L3 traffic including Markov accesses (fig. 14)."""

        if baseline.total_l3_accesses == 0:
            return 1.0 if self.total_l3_accesses == 0 else float("inf")
        return self.total_l3_accesses / baseline.total_l3_accesses

    def energy_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised DRAM+L3 dynamic energy (fig. 15)."""

        if baseline.dynamic_energy == 0:
            return 1.0 if self.dynamic_energy == 0 else float("inf")
        return self.dynamic_energy / baseline.dynamic_energy

    def as_dict(self) -> dict:
        """Flat dictionary of raw counters (for reports and serialisation)."""

        return {
            "workload": self.workload,
            "configuration": self.configuration,
            "accesses": self.accesses,
            "cycles": self.cycles,
            "l2_demand_misses": self.l2_demand_misses,
            "temporal_prefetches_issued": self.temporal_prefetches_issued,
            "temporal_prefetches_useful": self.temporal_prefetches_useful,
            "accuracy": self.accuracy,
            "dram_accesses": self.dram_accesses,
            "l3_data_accesses": self.l3_data_accesses,
            "markov_accesses": self.markov_accesses,
            "dynamic_energy": self.dynamic_energy,
            "markov_final_ways": self.markov_final_ways,
        }
