"""Simulation statistics and the metrics the paper reports.

The evaluation section of the paper uses five headline metrics, all of which
are derived from the counters gathered here:

* **Speedup** (figure 10) — baseline cycles / configuration cycles;
* **Normalised DRAM traffic** (figure 11) — total DRAM accesses relative to
  the baseline, including prefetch fills and write-backs;
* **Accuracy** (figure 12) — temporal prefetches used before L2 eviction,
  divided by temporal prefetches issued;
* **Coverage** (figure 13) — the fraction of the baseline's L2 demand misses
  that the configuration eliminates;
* **Normalised L3 accesses / dynamic energy** (figures 14, 15) — L3 data +
  Markov-table accesses, and the 25:1 DRAM:L3 energy model.

Normalisation against a baseline run happens in
:mod:`repro.experiments.runner`; this module only collects per-run values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class SimulationStats:
    """Counters for a single simulated run of one trace on one core."""

    workload: str = ""
    configuration: str = ""
    accesses: int = 0
    cycles: float = 0.0
    level_hits: dict = field(
        default_factory=lambda: {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
    )
    l2_demand_misses: int = 0
    temporal_prefetches_issued: int = 0
    temporal_prefetches_useful: int = 0
    temporal_prefetches_late: int = 0
    stride_prefetches_issued: int = 0
    stride_prefetches_useful: int = 0
    dram_accesses: int = 0
    dram_demand_reads: int = 0
    dram_prefetch_fills: int = 0
    dram_writes: int = 0
    l3_data_accesses: int = 0
    markov_accesses: int = 0
    dynamic_energy: float = 0.0
    markov_final_ways: int = 0
    late_prefetch_stall_cycles: float = 0.0

    # -- derived metrics ------------------------------------------------------
    @property
    def total_l3_accesses(self) -> int:
        return self.l3_data_accesses + self.markov_accesses

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    @property
    def accuracy(self) -> float:
        """Temporal-prefetch accuracy as defined in figure 12."""

        if self.temporal_prefetches_issued == 0:
            return 1.0
        return self.temporal_prefetches_useful / self.temporal_prefetches_issued

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_demand_misses / self.accesses if self.accesses else 0.0

    def coverage_relative_to(self, baseline: "SimulationStats") -> float:
        """Fraction of baseline L2 demand misses this run eliminated (fig. 13)."""

        if baseline.l2_demand_misses == 0:
            return 0.0
        eliminated = baseline.l2_demand_misses - self.l2_demand_misses
        return max(0.0, eliminated / baseline.l2_demand_misses)

    def speedup_relative_to(self, baseline: "SimulationStats") -> float:
        """Speedup over the baseline configuration (fig. 10)."""

        if self.cycles == 0:
            return 1.0
        return baseline.cycles / self.cycles

    def dram_traffic_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised DRAM traffic (fig. 11)."""

        if baseline.dram_accesses == 0:
            return 1.0 if self.dram_accesses == 0 else float("inf")
        return self.dram_accesses / baseline.dram_accesses

    def l3_accesses_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised L3 traffic including Markov accesses (fig. 14)."""

        if baseline.total_l3_accesses == 0:
            return 1.0 if self.total_l3_accesses == 0 else float("inf")
        return self.total_l3_accesses / baseline.total_l3_accesses

    def energy_relative_to(self, baseline: "SimulationStats") -> float:
        """Normalised DRAM+L3 dynamic energy (fig. 15)."""

        if baseline.dynamic_energy == 0:
            return 1.0 if self.dynamic_energy == 0 else float("inf")
        return self.dynamic_energy / baseline.dynamic_energy

    def combine_from(self, part: "SimulationStats") -> None:
        """Accumulate another window's counters into this object.

        Every additive counter — integer event counts and the float
        accumulators alike — is summed; ``markov_final_ways`` is *state*,
        not an event count, so the caller takes the last window's value.
        Used by :func:`combine_stats`; the sharded merge
        (:mod:`repro.sim.shard`) then overrides the float accumulators
        where endpoint subtraction can reproduce sequential replay
        bit-for-bit.
        """

        self.accesses += part.accesses
        self.cycles += part.cycles
        for level, hits in part.level_hits.items():
            self.level_hits[level] = self.level_hits.get(level, 0) + hits
        self.l2_demand_misses += part.l2_demand_misses
        self.temporal_prefetches_issued += part.temporal_prefetches_issued
        self.temporal_prefetches_useful += part.temporal_prefetches_useful
        self.temporal_prefetches_late += part.temporal_prefetches_late
        self.stride_prefetches_issued += part.stride_prefetches_issued
        self.stride_prefetches_useful += part.stride_prefetches_useful
        self.dram_accesses += part.dram_accesses
        self.dram_demand_reads += part.dram_demand_reads
        self.dram_prefetch_fills += part.dram_prefetch_fills
        self.dram_writes += part.dram_writes
        self.l3_data_accesses += part.l3_data_accesses
        self.markov_accesses += part.markov_accesses
        self.dynamic_energy += part.dynamic_energy
        self.late_prefetch_stall_cycles += part.late_prefetch_stall_cycles

    def as_dict(self) -> dict:
        """Flat dictionary of raw counters (for reports and serialisation)."""

        return {
            "workload": self.workload,
            "configuration": self.configuration,
            "accesses": self.accesses,
            "cycles": self.cycles,
            "l2_demand_misses": self.l2_demand_misses,
            "temporal_prefetches_issued": self.temporal_prefetches_issued,
            "temporal_prefetches_useful": self.temporal_prefetches_useful,
            "accuracy": self.accuracy,
            "dram_accesses": self.dram_accesses,
            "l3_data_accesses": self.l3_data_accesses,
            "markov_accesses": self.markov_accesses,
            "dynamic_energy": self.dynamic_energy,
            "markov_final_ways": self.markov_final_ways,
        }


def combine_stats(parts: Sequence[SimulationStats]) -> SimulationStats:
    """Field-wise sum of per-window statistics, in window order.

    The workload/configuration labels come from the first part (every
    window of one run shares them), additive counters sum, and
    ``markov_final_ways`` — the partitioned cache's final state, not an
    event count — comes from the *last* part.  This is the deterministic
    half of the sharded merge; :func:`repro.sim.shard.merge_shard_outcomes`
    layers the endpoint-exact float handling on top.
    """

    if not parts:
        raise ValueError("cannot combine zero statistics objects")
    merged = SimulationStats(
        workload=parts[0].workload, configuration=parts[0].configuration
    )
    for part in parts:
        merged.combine_from(part)
    merged.markov_final_ways = parts[-1].markov_final_ways
    return merged
