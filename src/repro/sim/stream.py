"""The columnar access-stream protocol the fast kernel runs on.

Every simulated access used to cross the engine boundary as one
:class:`~repro.memory.request.MemoryAccess` object — even when the trace was
already stored as packed columns (:class:`~repro.traces.format.PackedTrace`),
iteration re-materialised one frozen object per access.  This module defines
the protocol that removes those objects from the hot path:

* :class:`AccessColumns` — the exchange value: a ``pcs`` column, an
  ``addresses`` column, a per-access ``writes`` flag buffer and the record
  count, all indexable by access position;
* :class:`AccessStream` — anything that can hand over its columns:
  :class:`~repro.traces.format.PackedTrace` exposes its storage directly,
  and the object-backed :class:`~repro.workloads.trace.Trace` packs once and
  memoises;
* :func:`access_columns` — the adapter the kernels call: it accepts any
  trace-like object (a stream, or a plain iterable of accesses used by
  tests) and returns its columns, packing as a last resort.

The ``writes`` buffer holds one byte per access (``0`` or ``1``) rather than
a bitset: the kernel indexes it once per access, and a single subscript is
cheaper than the shift-and-mask a bitset lookup needs.
:func:`expand_write_bitset` converts the on-disk LSB-first bitset spelling.
"""

from __future__ import annotations

from typing import NamedTuple, Protocol, Sequence, runtime_checkable


class AccessColumns(NamedTuple):
    """One access stream as parallel, position-indexed columns.

    ``pcs[i]``, ``addresses[i]`` and ``writes[i]`` describe the ``i``-th
    access; ``length`` is the record count (columns may be longer — the
    ``writes`` buffer of a bitset expansion rounds up — but never shorter).
    """

    pcs: Sequence[int]
    addresses: Sequence[int]
    writes: Sequence[int]
    length: int


@runtime_checkable
class AccessStream(Protocol):
    """A workload that can expose its accesses as columns.

    Implementations must return the *same* column identity on repeated
    calls while the stream is unchanged (the packing is done once, at build
    or first-use time), so the kernels can ask for columns without worrying
    about repeated conversion cost.
    """

    def __len__(self) -> int: ...

    def access_columns(self) -> AccessColumns: ...


def expand_write_bitset(bits: bytes, count: int) -> bytearray:
    """Expand an LSB-first write bitset into one 0/1 byte per access."""

    flags = bytearray(count)
    if count == 0:
        return flags
    position = 0
    for byte in bits[: (count + 7) // 8]:
        if byte:
            limit = min(8, count - position)
            for offset in range(limit):
                if byte >> offset & 1:
                    flags[position + offset] = 1
        position += 8
    return flags


def pack_columns(accesses) -> AccessColumns:
    """Pack any iterable of access objects into fresh columns (fallback)."""

    from array import array

    pcs = array("Q")
    addresses = array("Q")
    writes = bytearray()
    for access in accesses:
        pcs.append(access.pc)
        addresses.append(access.address)
        writes.append(1 if access.is_write else 0)
    return AccessColumns(pcs=pcs, addresses=addresses, writes=writes, length=len(pcs))


def slice_columns(columns: AccessColumns, start: int, stop: int) -> AccessColumns:
    """A zero-copy view of one contiguous window of a column set.

    Buffer-backed columns — ``array('Q')``, ``bytearray``, ``bytes``,
    ``memoryview`` (the mmap-backed trace path) — are sliced through
    :class:`memoryview`, which shares the underlying storage; slicing the
    containers directly would copy the window, and sharded replay slices
    the same multi-gigabyte columns once per shard.  Plain sequences (the
    test fallback) fall back to an ordinary copying slice.
    """

    start, stop, _ = slice(start, stop).indices(columns.length)
    stop = max(start, stop)

    def view(column):
        try:
            window = memoryview(column)
        except TypeError:
            return column[start:stop]
        return window[start:stop]

    return AccessColumns(
        pcs=view(columns.pcs),
        addresses=view(columns.addresses),
        writes=view(columns.writes),
        length=stop - start,
    )


def access_columns(trace) -> AccessColumns:
    """The columns of any trace-like object (the kernels' single entry).

    Streams that satisfy :class:`AccessStream` — :class:`PackedTrace`, the
    column-backed :class:`Trace`, anything else exposing
    ``access_columns()`` — hand over their storage without copying.  Plain
    iterables of access objects (lists in tests, ad-hoc generators) are
    packed on the spot; that path re-packs per call, so it is kept off the
    experiment layer's hot path.
    """

    getter = getattr(trace, "access_columns", None)
    if getter is not None:
        return getter()
    return pack_columns(trace)
