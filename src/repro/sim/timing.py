"""Analytic timing model.

The paper reports speedups from a detailed out-of-order gem5 core.  We
substitute an analytic model: each demand access contributes a base cost
(covering the non-memory work between accesses on a wide core) plus a
level-dependent fraction of its memory latency, reflecting how much of that
latency an out-of-order core typically fails to hide.  Late prefetches
contribute their residual latency through the access's latency itself (the
hierarchy adds the remaining wait for in-flight prefetched lines), so
timeliness effects flow straight into the cycle count.

This is deliberately simple — the reproduction's claims are about *relative*
performance between prefetcher configurations, which is dominated by how
many DRAM-latency stalls each configuration removes, not by the absolute
cycle counts.

The model's clock is one monotone float accumulator (:attr:`TimingModel.cycles`),
which is what lets sharded replay (:mod:`repro.sim.shard`) merge exactly:
each shard records the clock at its sampling and window boundaries, and the
merger reconstructs the sequential cycle count from the *endpoints*
(``last shard's end − first shard's sampling start``) rather than summing
per-shard deltas — float addition is not associative, so endpoint
subtraction is the only merge that reproduces the sequential run bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import DemandResult
from repro.sim.config import TimingParams


@dataclass
class TimingModel:
    """Accumulates cycles for a stream of demand-access results."""

    params: TimingParams = field(default_factory=TimingParams)
    cycles: float = 0.0
    accesses: int = 0

    def __post_init__(self) -> None:
        # Built once: assembling this mapping per access was a measured cost
        # on the hot path.  ``params`` is treated as immutable after
        # construction throughout the repository.
        self._weights = {
            "l1": self.params.stall_weight_l1,
            "l2": self.params.stall_weight_l2,
            "l3": self.params.stall_weight_l3,
            "dram": self.params.stall_weight_dram,
        }

    def stall_weight(self, level: str) -> float:
        """The fraction of a level's latency the core fails to hide."""

        try:
            return self._weights[level]
        except KeyError as exc:
            raise ValueError(f"unknown hierarchy level {level!r}") from exc

    def stall_weights(self) -> dict[str, float]:
        """A copy of the level → stall-weight table (kernel fast path)."""

        return dict(self._weights)

    def cost_of(self, result: DemandResult) -> float:
        """Cycle cost of one demand access."""

        try:
            weight = self._weights[result.level]
        except KeyError as exc:
            raise ValueError(f"unknown hierarchy level {result.level!r}") from exc
        return self.params.base_cycles_per_access + weight * result.latency

    def account(self, result: DemandResult) -> float:
        """Add one access's cost to the running total and return that cost."""

        cost = self.cost_of(result)
        self.cycles += cost
        self.accesses += 1
        return cost

    # -- batched accounting (the fast kernels) -----------------------------
    #
    # The fused kernels accumulate the clock and access count in plain
    # locals and make them observable only at phase boundaries (sampling
    # start, finalisation) — the same arithmetic in the same order, with the
    # per-access attribute traffic removed.  ``checkpoint`` hands a kernel
    # the current totals to continue from; ``flush`` writes the kernel's
    # totals back.  Flushing is *assignment*, not addition: the locals carry
    # the authoritative running totals between checkpoints.

    def checkpoint(self) -> tuple[float, int]:
        """The ``(cycles, accesses)`` totals a batched kernel resumes from."""

        return self.cycles, self.accesses

    def flush(self, cycles: float, accesses: int) -> None:
        """Make a batched kernel's running totals observable on the model."""

        self.cycles = cycles
        self.accesses = accesses

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    def instructions_retired(self, instructions_per_access: float) -> float:
        """Approximate instruction count for IPC reporting."""

        return self.accesses * instructions_per_access

    def reset(self) -> None:
        self.cycles = 0.0
        self.accesses = 0
