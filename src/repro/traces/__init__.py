"""Trace I/O: record, ingest and sample external memory traces.

This package makes access streams first-class on-disk workloads, sitting
between workload generation and the experiment executor:

* :mod:`repro.traces.format` — the versioned ``.rtrc`` binary container
  (optionally gzipped): v1 stores raw packed columns replayed zero-copy by
  the array-backed :class:`~repro.traces.format.PackedTrace`; v2 (the
  write default) stores delta/varint-compressed fixed-size chunks behind a
  footer index, replayed by the lazily decoding
  :class:`~repro.traces.format.ChunkedTrace` which touches only the chunks
  a window needs;
* :mod:`repro.traces.champsim` — an importer for ChampSim-style LS text
  traces, so any published trace becomes a workload;
* :mod:`repro.traces.recorder` — capture any registered generator's stream
  to disk (with provenance), enabling record→replay workflows;
* :mod:`repro.traces.samplers` — window slicing and periodic systematic
  sampling, each recording how the sample was derived.

On-disk traces resolve as workloads through the ``trace:<name>`` names of
:mod:`repro.workloads.registry`, and the experiment layer hashes them by
file *content* (see :func:`~repro.traces.format.trace_file_digest`), so the
persistent result store stays correct when a file changes.  The ``repro
trace`` CLI (``record``/``import``/``info``/``sample``) fronts all of this;
``docs/traces.md`` walks through the format and the workflows.
"""

from repro.traces.champsim import ChampSimParseError, import_champsim_trace
from repro.traces.format import (
    CHUNK_RECORDS,
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    TRACE_SUFFIXES,
    ChunkedTrace,
    PackedTrace,
    TraceFormatError,
    TraceHeader,
    load_trace,
    open_trace,
    pack_trace,
    read_header,
    save_trace,
    trace_file_digest,
)
from repro.traces.recorder import record_trace, record_workload
from repro.traces.samplers import sample_systematic, sample_window

__all__ = [
    "CHUNK_RECORDS",
    "FORMAT_VERSION",
    "MAGIC",
    "SUPPORTED_VERSIONS",
    "TRACE_SUFFIXES",
    "ChampSimParseError",
    "ChunkedTrace",
    "PackedTrace",
    "TraceFormatError",
    "TraceHeader",
    "import_champsim_trace",
    "load_trace",
    "open_trace",
    "pack_trace",
    "read_header",
    "record_trace",
    "record_workload",
    "sample_systematic",
    "sample_window",
    "save_trace",
    "trace_file_digest",
]
