"""Importer for ChampSim-style load/store (LS) text traces.

ChampSim's classic LS-trace interchange form is one access per line::

    <pc> <address> <L|S>

with hexadecimal (``0x``-prefixed or bare) or decimal integers and an
optional access-type column.  Real-world dumps vary — some write ``R``/
``W`` or ``0``/``1`` for the type, some omit it, most mix in blank lines
and ``#`` comments — so the parser is tolerant about layout: any line
whose first two whitespace-separated fields parse as integers is an
access, and anything unparsable raises with the offending line number
rather than silently producing a wrong stream.

The *radix* of bare (un-prefixed) numbers, however, is decided once per
file, never per token: guessing per token would read ``7f1a400`` as hex
but ``41000200`` — hex digits that happen to all be decimal — as decimal,
silently corrupting the stream.  By default a sniff pass checks whether
any bare field contains a hex letter (ChampSim's usual bare-hex form);
callers can force ``radix="hex"`` or ``radix="dec"``.  ``0x``-prefixed
fields are always hexadecimal.  ``.gz`` inputs are decompressed
transparently (by suffix *or* magic), since trace archives usually ship
compressed.

The importer returns a :class:`~repro.traces.format.PackedTrace` (columns,
not objects), so even multi-million-access files import in bounded memory;
:func:`~repro.traces.format.save_trace` then persists it as ``.rtrc`` —
chunked delta/varint v2 by default, many times smaller than the text dump —
after which the file is a first-class workload name (``trace:<name>``)
anywhere a generated workload is accepted.
"""

from __future__ import annotations

import gzip
import warnings
from array import array
from pathlib import Path
from typing import IO, Iterator

from repro.traces.format import _GZIP_MAGIC, PackedTrace, _pack_bits

#: Access-type tokens accepted in the optional third column.
_WRITE_TOKENS = {"s", "w", "1", "store", "write"}
_READ_TOKENS = {"l", "r", "0", "load", "read", "p"}

#: PCs and addresses must fit the packed format's uint64 columns.
_UINT64_MAX = (1 << 64) - 1


class ChampSimParseError(ValueError):
    """An input line could not be parsed as an LS-trace access."""


_HEX_LETTERS = set("abcdef")


def _parse_int(token: str, bare_base: int) -> int:
    """Parse a PC/address field; bare (un-prefixed) numbers use ``bare_base``."""

    token = token.lower()
    if token.startswith("0x"):
        return int(token, 16)
    return int(token, bare_base)


def _sniff_bare_base(path: Path) -> int:
    """The file-wide radix of bare numeric fields: 16 if any contains a
    hex letter (ChampSim's usual bare-hex form), else 10.

    One radix per file — deciding per token would interpret letter-free
    hex values as decimal and corrupt the stream.  A file that has bare
    fields but *no* letter anywhere is genuinely ambiguous (an all-digit
    hex dump would be misread as decimal), so that case emits a warning
    pointing at the explicit ``radix`` argument / ``--radix`` flag.
    """

    saw_bare = False
    with _open_text(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            for token in stripped.split()[:2]:
                token = token.lower()
                if token.startswith("0x"):
                    continue
                saw_bare = True
                if _HEX_LETTERS & set(token):
                    return 16
    if saw_bare:
        warnings.warn(
            f"{path}: bare numeric fields contain no hex letters; assuming "
            f"decimal — pass radix='hex' (--radix hex) if this is a "
            f"bare-hexadecimal dump",
            stacklevel=3,
        )
    return 10


def _open_text(path: Path) -> IO[str]:
    with path.open("rb") as probe:
        magic = probe.read(2)
    if path.suffix == ".gz" or magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return path.open("r", encoding="utf-8", errors="replace")


def _parse_lines(lines: Iterator[str], source: str, bare_base: int):
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split()
        if len(fields) < 2:
            raise ChampSimParseError(
                f"{source}:{number}: expected '<pc> <address> [L|S]', got {stripped!r}"
            )
        try:
            pc = _parse_int(fields[0], bare_base)
            address = _parse_int(fields[1], bare_base)
        except ValueError:
            raise ChampSimParseError(
                f"{source}:{number}: non-numeric pc/address in {stripped!r}"
            ) from None
        if not (0 <= pc <= _UINT64_MAX and 0 <= address <= _UINT64_MAX):
            raise ChampSimParseError(
                f"{source}:{number}: pc/address outside the uint64 range "
                f"in {stripped!r}"
            )
        is_write = False
        if len(fields) >= 3:
            token = fields[2].lower()
            if token in _WRITE_TOKENS:
                is_write = True
            elif token not in _READ_TOKENS:
                raise ChampSimParseError(
                    f"{source}:{number}: unknown access type {fields[2]!r} "
                    f"(expected one of L/S/R/W/0/1)"
                )
        yield pc, address, is_write


#: Accepted ``radix`` arguments → the base bare numbers parse under
#: (``"auto"`` sniffs the file, see :func:`_sniff_bare_base`).
_RADIX_MODES = {"hex": 16, "dec": 10}


def import_champsim_trace(
    path: str | Path, name: str | None = None, radix: str = "auto"
) -> PackedTrace:
    """Parse a ChampSim-style LS trace file into a :class:`PackedTrace`.

    ``name`` defaults to the file's stem (with ``.gz``/``.trace`` stripped).
    ``radix`` fixes how bare (un-prefixed) numbers are read — ``"hex"``,
    ``"dec"``, or ``"auto"`` to sniff the file (one radix per file either
    way).  The result records its provenance — source file, radix and
    import counts — in ``metadata["imported"]``.
    """

    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no such trace file: {path}")
    if radix == "auto":
        bare_base = _sniff_bare_base(path)
    elif radix in _RADIX_MODES:
        bare_base = _RADIX_MODES[radix]
    else:
        raise ValueError(
            f"radix must be one of 'auto', 'hex', 'dec'; got {radix!r}"
        )
    if name is None:
        name = path.name
        for suffix in (".gz", ".txt", ".trace", ".xz"):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
        name = name or path.stem
    pcs = array("Q")
    addresses = array("Q")
    write_flags: list[bool] = []
    with _open_text(path) as handle:
        for pc, address, is_write in _parse_lines(handle, str(path), bare_base):
            pcs.append(pc)
            addresses.append(address)
            write_flags.append(is_write)
    if not pcs:
        raise ChampSimParseError(f"{path}: no accesses found")
    return PackedTrace(
        name=name,
        pcs=pcs,
        addresses=addresses,
        writes=_pack_bits(write_flags, len(pcs)),
        metadata={
            "generator": "champsim-import",
            "imported": {
                "source": path.name,
                "format": "champsim-ls",
                "bare_radix": bare_base,
                "accesses": len(pcs),
                "writes": sum(write_flags),
            },
        },
    )
