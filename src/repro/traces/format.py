"""The ``.rtrc`` packed binary trace format and its array-backed container.

Every workload in the repository used to exist only as a Python generator
that rebuilt its :class:`~repro.workloads.trace.Trace` — a list of
per-access :class:`~repro.memory.request.MemoryAccess` objects — on every
cold run.  This module makes access streams first-class on-disk artefacts:

* :class:`PackedTrace` holds an access stream as three parallel columns —
  ``array('Q')`` program counters, ``array('Q')`` physical addresses and a
  write bitset — and satisfies the :class:`~repro.workloads.trace.Trace`
  iteration protocol (``__iter__``/``__len__``/``__getitem__``/``slice``/
  ``unique_lines``/``unique_pcs``) without ever materialising a list of
  per-access objects;
* :func:`save_trace` / :func:`load_trace` round-trip any trace-like object
  through the versioned ``.rtrc`` container described below, optionally
  gzip-compressed (a ``.gz`` suffix compresses on save; loads sniff the
  gzip magic, so either spelling reads either file);
* :func:`read_header` inspects a file without decoding its payload, and
  :func:`trace_file_digest` content-addresses a file for the experiment
  layer's spec hashing (see :mod:`repro.experiments.jobs`).

File layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RTRC"
    4       2     format version (currently 1)
    6       2     flags (reserved, 0)
    8       1     line shift (LINE_SHIFT at save time; readers check it)
    9       3     reserved (zero)
    12      8     record count N
    20      4     header-JSON length H
    24      H     header JSON: {"name": ..., "metadata": {...}}
    24+H    8*N   program counters, uint64 each
    ...     8*N   physical addresses, uint64 each
    ...     ⌈N/8⌉ write bitset, LSB-first within each byte

The line shift travels in the header so a stream packed under one line
geometry is never silently interpreted under another — it is the same
:data:`~repro.workloads.trace.LINE_SHIFT` constant trace statistics use.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.memory.request import MemoryAccess
from repro.sim.stream import AccessColumns, expand_write_bitset
from repro.workloads.trace import LINE_SHIFT, Trace, distinct_line_count

#: Magic bytes opening every ``.rtrc`` file.
MAGIC = b"RTRC"

#: Current format version; bumped only on incompatible layout changes.
FORMAT_VERSION = 1

#: The canonical file suffixes, in resolution-preference order.  The
#: workload registry's ``trace:`` resolution and directory scans, the
#: writers' suffix choice (:func:`trace_suffix`) and the sibling cleanup
#: (:func:`remove_stale_sibling`) all derive from this tuple, so a new
#: suffix added here is discovered everywhere.
TRACE_SUFFIXES = (".rtrc", ".rtrc.gz")


def trace_suffix(compress: bool) -> str:
    """The file suffix a writer should use (single source: TRACE_SUFFIXES)."""

    return TRACE_SUFFIXES[1] if compress else TRACE_SUFFIXES[0]

_FIXED_HEADER = struct.Struct("<4sHHB3xQI")
_GZIP_MAGIC = b"\x1f\x8b"


class TraceFormatError(ValueError):
    """A file is not a readable ``.rtrc`` trace (bad magic, version, size)."""


def _pack_bits(flags: Iterable[bool], count: int) -> bytearray:
    """Pack booleans into an LSB-first bitset of ``ceil(count / 8)`` bytes."""

    bits = bytearray((count + 7) // 8)
    for index, flag in enumerate(flags):
        if flag:
            bits[index >> 3] |= 1 << (index & 7)
    return bits


class PackedTrace:
    """An access stream stored as parallel columns instead of objects.

    Satisfies the same iteration protocol as
    :class:`~repro.workloads.trace.Trace` — the simulator, the experiment
    layer and the statistics helpers accept either interchangeably — while
    holding the stream as two ``array('Q')`` columns plus a write bitset,
    about 17 bytes per access instead of a boxed object.  Iteration yields
    :class:`~repro.memory.request.MemoryAccess` values created on the fly;
    nothing per-access is retained.
    """

    __slots__ = (
        "name",
        "metadata",
        "line_shift",
        "_pcs",
        "_addresses",
        "_writes",
        "_write_flags",
        "_write_count",
        "_buffer",
    )

    def __init__(
        self,
        name: str,
        pcs: array,
        addresses: array,
        writes: bytearray | bytes,
        metadata: dict | None = None,
        line_shift: int = LINE_SHIFT,
    ) -> None:
        if len(pcs) != len(addresses):
            raise ValueError("pc and address columns must have equal length")
        if len(writes) < (len(pcs) + 7) // 8:
            raise ValueError("write bitset shorter than the record count")
        self.name = name
        self.metadata = dict(metadata or {})
        self.line_shift = line_shift
        self._pcs = pcs
        self._addresses = addresses
        self._writes = bytes(writes)
        self._write_flags: bytearray | None = None
        self._write_count: int | None = None
        # The mmap (or other buffer) the columns are views into, when the
        # trace was opened zero-copy; holding it here pins the mapping for
        # the life of the trace.  ``None`` for materialised columns.
        self._buffer = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_accesses(
        cls,
        name: str,
        accesses: Iterable[MemoryAccess],
        metadata: dict | None = None,
    ) -> "PackedTrace":
        """Pack any iterable of accesses (e.g. a live generator's trace)."""

        pcs = array("Q")
        addresses = array("Q")
        write_flags: list[bool] = []
        for access in accesses:
            pcs.append(access.pc)
            addresses.append(access.address)
            write_flags.append(access.is_write)
        return cls(
            name=name,
            pcs=pcs,
            addresses=addresses,
            writes=_pack_bits(write_flags, len(pcs)),
            metadata=metadata,
        )

    # -- the Trace protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._pcs)

    def __iter__(self) -> Iterator[MemoryAccess]:
        writes = self._writes
        for index, (pc, address) in enumerate(zip(self._pcs, self._addresses)):
            yield MemoryAccess(
                pc=pc,
                address=address,
                is_write=bool(writes[index >> 3] >> (index & 7) & 1),
            )

    def __getitem__(self, index: int) -> MemoryAccess:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace index out of range")
        return MemoryAccess(
            pc=self._pcs[index],
            address=self._addresses[index],
            is_write=bool(self._writes[index >> 3] >> (index & 7) & 1),
        )

    # -- the columnar protocol (see repro.sim.stream) ------------------------
    def access_columns(self) -> AccessColumns:
        """The stream as position-indexed columns, sharing the storage.

        The pc/address columns are handed over as-is; the on-disk write
        bitset is expanded to one flag byte per access on first use and
        memoised (a :class:`PackedTrace` is immutable, so the expansion can
        never go stale).
        """

        flags = self._write_flags
        if flags is None:
            flags = expand_write_bitset(self._writes, len(self._pcs))
            self._write_flags = flags
        return AccessColumns(
            pcs=self._pcs,
            addresses=self._addresses,
            writes=flags,
            length=len(self._pcs),
        )

    def is_write(self, index: int) -> bool:
        """Whether the ``index``-th access is a store (bitset lookup)."""

        return bool(self._writes[index >> 3] >> (index & 7) & 1)

    def write_count(self) -> int:
        """Number of stores in the trace (bitset popcount, not a scan).

        The whole bitset pops as one big-int ``bit_count`` — no per-byte
        Python loop — and the result is memoised (the trace is immutable),
        so repeated inspection never recounts.  Bits beyond the record
        count in the final byte are masked out, so a foreign file with
        stray tail bits can never inflate the count.
        """

        cached = self._write_count
        if cached is None:
            count = len(self)
            used = (count + 7) // 8
            total = int.from_bytes(self._writes[:used], "little").bit_count()
            tail_bits = count & 7
            if tail_bits and used:
                stray = self._writes[used - 1] >> tail_bits
                total -= stray.bit_count()
            self._write_count = cached = total
        return cached

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched (the trace's footprint)."""

        return distinct_line_count(self._addresses, self.line_shift)

    def unique_pcs(self) -> int:
        """Number of distinct PCs appearing in the trace."""

        return len(set(self._pcs))

    def slice(self, start: int, stop: int) -> "PackedTrace":
        """A sub-trace covering records ``[start:stop)``, columns re-sliced."""

        start, stop, _ = slice(start, stop).indices(len(self))
        write_flags = (self.is_write(index) for index in range(start, stop))
        return PackedTrace(
            name=f"{self.name}[{start}:{stop}]",
            pcs=self._pcs[start:stop],
            addresses=self._addresses[start:stop],
            writes=_pack_bits(write_flags, max(0, stop - start)),
            metadata=dict(self.metadata),
            line_shift=self.line_shift,
        )

    def to_trace(self) -> Trace:
        """Materialise a plain object-backed :class:`Trace` (tests, tooling)."""

        return Trace(name=self.name, accesses=list(self), metadata=dict(self.metadata))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedTrace(name={self.name!r}, records={len(self)})"


@dataclass(frozen=True)
class TraceHeader:
    """The decoded fixed header + JSON header of one ``.rtrc`` file."""

    name: str
    records: int
    line_shift: int
    version: int
    compressed: bool
    metadata: dict


def _column_bytes(column) -> bytes:
    """The column's records as little-endian bytes regardless of host order."""

    if sys.byteorder == "big":  # pragma: no cover - exercised on BE hosts only
        # Zero-copy (memoryview) columns only exist on little-endian hosts,
        # so rebuilding through array('Q') here always sees plain values.
        column = array("Q", column)
        column.byteswap()
    return column.tobytes()


def _column_from_bytes(data: bytes) -> array:
    column = array("Q")
    column.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - exercised on BE hosts only
        column.byteswap()
    return column


def pack_trace(trace, name: str | None = None) -> PackedTrace:
    """Pack any trace-like object; a :class:`PackedTrace` passes through.

    Renaming an already-packed trace shares its columns and keeps its
    recorded ``line_shift`` — re-packing access by access would silently
    reset a foreign file's geometry to this build's default.
    """

    if isinstance(trace, PackedTrace):
        if name in (None, trace.name):
            return trace
        return PackedTrace(
            name=name,
            pcs=trace._pcs,
            addresses=trace._addresses,
            writes=trace._writes,
            metadata=dict(trace.metadata),
            line_shift=trace.line_shift,
        )
    return PackedTrace.from_accesses(
        name=name or getattr(trace, "name", "trace"),
        accesses=trace,
        metadata=dict(getattr(trace, "metadata", {}) or {}),
    )


def save_trace(trace, path: str | Path, name: str | None = None) -> Path:
    """Write a trace-like object to ``path`` in ``.rtrc`` form.

    A ``.gz`` suffix gzip-compresses the file (the whole container, so the
    reader sniffs the gzip magic and either spelling loads either file).
    Returns the path written.
    """

    packed = pack_trace(trace, name)
    metadata = {
        key: value
        for key, value in packed.metadata.items()
        if _json_safe(value)
    }
    header_json = json.dumps(
        {"name": packed.name, "metadata": metadata}, sort_keys=True
    ).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    container = b"".join(
        (
            _FIXED_HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                0,
                packed.line_shift,
                len(packed),
                len(header_json),
            ),
            header_json,
            _column_bytes(packed._pcs),
            _column_bytes(packed._addresses),
            packed._writes[: (len(packed) + 7) // 8],
        )
    )
    if path.suffix == ".gz":
        # gzip.compress with mtime=0 embeds neither a timestamp nor a
        # filename, so the same stream produces the same bytes whenever
        # (and wherever) it is saved — the file-content digests keying the
        # result store must not churn on a byte-identical re-record.
        container = gzip.compress(container, mtime=0)
    # Write-then-rename: re-recording a file another process is replaying
    # must never expose a torn half-written container to its readers.
    staging = path.with_name(path.name + ".tmp")
    staging.write_bytes(container)
    os.replace(staging, path)
    # This process just changed the file: drop its memoised digests, so a
    # same-size rewrite inside the filesystem's mtime granularity can never
    # serve the old digest to subsequent spec creation/verification.
    _drop_memoised_digests(path)
    return path


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def _read_container(path: Path) -> tuple[bytes, bool]:
    """The file's raw container bytes and whether it was gzip-compressed.

    Every load primes the digest memo from the bytes just read (guarded by
    a stat taken on both sides, so a concurrent rewrite can't memoise a
    digest under the wrong key): ``trace info`` and the executor's
    load-then-digest sequences touch the file once, not twice.
    """

    try:
        stat_before = path.stat()
    except OSError:
        stat_before = None
    raw = path.read_bytes()
    if stat_before is not None:
        try:
            stat_after = path.stat()
        except OSError:
            stat_after = None
        if stat_after is not None and (
            stat_before.st_size,
            stat_before.st_mtime_ns,
        ) == (stat_after.st_size, stat_after.st_mtime_ns):
            key = (str(path.resolve()), stat_after.st_size, stat_after.st_mtime_ns)
            _DIGEST_MEMO.setdefault(key, hashlib.sha256(raw).hexdigest())
    if raw[:2] == _GZIP_MAGIC:
        return gzip.decompress(raw), True
    return raw, False


def _decode_header(
    data: bytes, path: Path, compressed: bool = False
) -> tuple[TraceHeader, int]:
    """Decode the fixed + JSON header; returns it and the payload offset."""

    if len(data) < _FIXED_HEADER.size:
        raise TraceFormatError(f"{path}: truncated header")
    magic, version, _flags, line_shift, count, json_length = _FIXED_HEADER.unpack_from(
        data
    )
    if magic != MAGIC:
        raise TraceFormatError(f"{path}: not an .rtrc trace (bad magic)")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported .rtrc version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    offset = _FIXED_HEADER.size + json_length
    if len(data) < offset:
        raise TraceFormatError(f"{path}: truncated JSON header")
    try:
        # bytes() also unwraps the memoryview the mmap path passes in
        # (json.loads takes str/bytes/bytearray only).
        described = json.loads(bytes(data[_FIXED_HEADER.size : offset]))
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"{path}: corrupt JSON header ({error})") from None
    header = TraceHeader(
        name=str(described.get("name", path.stem)),
        records=count,
        line_shift=line_shift,
        version=version,
        compressed=compressed,
        metadata=dict(described.get("metadata", {})),
    )
    return header, offset


def read_header(path: str | Path) -> TraceHeader:
    """Decode a file's header (name, counts, shift, metadata) only."""

    path = Path(path)
    data, compressed = _read_container(path)
    header, _ = _decode_header(data, path, compressed)
    return header


def load_trace(path: str | Path) -> PackedTrace:
    """Load an ``.rtrc`` file (gzip sniffed) into a :class:`PackedTrace`."""

    return open_trace(path)[0]


def _mapped_container(path: Path):
    """Map an uncompressed file read-only; ``None`` when mapping can't help.

    Gzip files must be decompressed into memory anyway, empty/over-truncated
    files can't be mapped (or aren't worth it), and byteswapping on a
    big-endian host would force a copy regardless — all of those return
    ``None`` and the caller takes the plain read path.
    """

    if sys.byteorder != "little":  # pragma: no cover - BE hosts copy+swap
        return None
    import mmap

    with open(path, "rb") as handle:
        if handle.read(2) == _GZIP_MAGIC:
            return None
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file, exotic filesystem
            return None
    return memoryview(mapping)


def open_trace(path: str | Path) -> tuple[PackedTrace, TraceHeader]:
    """Load a file *and* its decoded header in a single read/decompress.

    ``repro trace info`` wants both the stream and the container facts
    (version, compressed flag); calling :func:`load_trace` plus
    :func:`read_header` would read — and for ``.gz`` files decompress — the
    container twice.

    Uncompressed files on little-endian hosts are **memory-mapped**: the
    pc/address columns become ``uint64`` views straight into the page
    cache — no copy, lazily paged — and only the (tiny) write bitset is
    materialised.  The returned trace pins the mapping for its lifetime.
    Gzip files decompress into fresh columns exactly as before.
    """

    path = Path(path)
    view = _mapped_container(path)
    if view is not None:
        data, compressed = view, False
    else:
        data, compressed = _read_container(path)
    header, offset = _decode_header(data, path, compressed)
    if header.line_shift != LINE_SHIFT:
        # The simulator's hierarchy has one fixed line geometry; replaying
        # a stream recorded under another shift would silently skew every
        # footprint and statistic.  (read_header still decodes such files
        # for inspection.)
        raise TraceFormatError(
            f"{path}: recorded under line shift {header.line_shift}, but "
            f"this build simulates {1 << LINE_SHIFT}-byte lines (shift "
            f"{LINE_SHIFT})"
        )
    count = header.records
    column_size = 8 * count
    bitset_size = (count + 7) // 8
    expected = offset + 2 * column_size + bitset_size
    if len(data) < expected:
        raise TraceFormatError(
            f"{path}: payload truncated ({len(data)} bytes, expected {expected})"
        )
    if view is not None:
        pcs = view[offset : offset + column_size].cast("Q")
        addresses = view[offset + column_size : offset + 2 * column_size].cast("Q")
        writes = bytes(view[offset + 2 * column_size : expected])
    else:
        pcs = _column_from_bytes(data[offset : offset + column_size])
        addresses = _column_from_bytes(
            data[offset + column_size : offset + 2 * column_size]
        )
        writes = data[offset + 2 * column_size : expected]
    trace = PackedTrace(
        name=header.name,
        pcs=pcs,
        addresses=addresses,
        writes=writes,
        metadata=header.metadata,
        line_shift=header.line_shift,
    )
    if view is not None:
        trace._buffer = view
    return trace, header


def remove_stale_sibling(path: str | Path) -> Path | None:
    """Delete any other-suffix spelling of a just-written trace.

    Every :data:`TRACE_SUFFIXES` spelling of ``<name>`` resolves to the
    *same* workload name (in preference order) — so re-recording a trace
    under a different suffix would otherwise leave a stale sibling
    shadowing (or shadowed by) the new file, and ``trace:<name>`` could
    silently replay old data.  Returns the first removed path, if any.
    """

    path = Path(path)
    name = path.name
    # Longest suffix first, so ".rtrc.gz" is not misread as ".rtrc".
    for suffix in sorted(TRACE_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            removed = None
            for other in TRACE_SUFFIXES:
                if other == suffix:
                    continue
                sibling = path.with_name(stem + other)
                if sibling.is_file():
                    sibling.unlink()
                    removed = removed or sibling
            return removed
    return None


# ---------------------------------------------------------------------------
# Content digests: the experiment layer's identity for trace-file workloads
# ---------------------------------------------------------------------------
# Keyed by (path, size, mtime_ns) so repeated spec hashing over a big batch
# reads each file once per version of its contents.  In-process writers
# (:func:`save_trace`) additionally evict their path outright, closing the
# stale-digest window a same-size rewrite inside the filesystem's mtime
# granularity would otherwise leave open.
_DIGEST_MEMO: dict[tuple, str] = {}


def _drop_memoised_digests(path: Path) -> None:
    """Evict every memoised digest of one file (writers call this)."""

    resolved = str(path.resolve())
    for key in [key for key in _DIGEST_MEMO if key[0] == resolved]:
        del _DIGEST_MEMO[key]


def trace_file_digest(path: str | Path) -> str:
    """SHA-256 of the file's bytes (memoised on path + size + mtime).

    This is what :mod:`repro.experiments.jobs` folds into the content hash
    of any spec whose workload resolves to a trace file, so the persistent
    result store keys on *what the file contains*, not what it is called:
    re-importing different data under the same name can never replay stale
    results, and renaming a file never invalidates them.
    """

    path = Path(path)
    stat = path.stat()
    key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    digest = _DIGEST_MEMO.get(key)
    if digest is None:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        _DIGEST_MEMO[key] = digest
    return digest


def clear_digest_memo() -> None:
    """Drop memoised file digests (tests that rewrite files in place)."""

    _DIGEST_MEMO.clear()
