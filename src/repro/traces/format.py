"""The ``.rtrc`` packed binary trace format and its array-backed container.

Every workload in the repository used to exist only as a Python generator
that rebuilt its :class:`~repro.workloads.trace.Trace` — a list of
per-access :class:`~repro.memory.request.MemoryAccess` objects — on every
cold run.  This module makes access streams first-class on-disk artefacts:

* :class:`PackedTrace` holds an access stream as three parallel columns —
  ``array('Q')`` program counters, ``array('Q')`` physical addresses and a
  write bitset — and satisfies the :class:`~repro.workloads.trace.Trace`
  iteration protocol (``__iter__``/``__len__``/``__getitem__``/``slice``/
  ``unique_lines``/``unique_pcs``) without ever materialising a list of
  per-access objects;
* :func:`save_trace` / :func:`load_trace` round-trip any trace-like object
  through the versioned ``.rtrc`` container described below, optionally
  gzip-compressed (a ``.gz`` suffix compresses on save; loads sniff the
  gzip magic, so either spelling reads either file);
* :func:`read_header` inspects a file without decoding its payload, and
  :func:`trace_file_digest` content-addresses a file for the experiment
  layer's spec hashing (see :mod:`repro.experiments.jobs`).

Version 1 layout (raw columns; all integers little-endian)::

    offset  size  field
    0       4     magic  b"RTRC"
    4       2     format version (1)
    6       2     flags (reserved, 0)
    8       1     line shift (LINE_SHIFT at save time; readers check it)
    9       3     reserved (zero)
    12      8     record count N
    20      4     header-JSON length H
    24      H     header JSON: {"name": ..., "metadata": {...}}
    24+H    8*N   program counters, uint64 each
    ...     8*N   physical addresses, uint64 each
    ...     ⌈N/8⌉ write bitset, LSB-first within each byte

Version 2 layout (chunked delta/varint; the default write format)::

    offset  size  field
    0       24    fixed header as in v1, version field = 2
    24      H     header JSON (unchanged)
    24+H    ...   C chunk bodies, back to back
    F       32*C  chunk index: per chunk <file offset, record count,
                  first pc, first address>, four uint64 each
    EOF-28  28    trailer: <footer offset F, chunk count C,
                  records per chunk, magic b"RTC2">

    chunk body:
    0       12    section lengths <pc bytes, address bytes, write bytes>,
                  three uint32
    12      ...   pc column: zig-zag deltas, LEB128 varints (the chunk's
                  first record is anchored in the chunk index)
    ...     ...   address column: same encoding
    ...     ...   write flags: run lengths as LEB128 varints, alternating
                  read/write runs (first run is reads, possibly zero),
                  summing to the chunk's record count

Every chunk holds exactly ``records per chunk`` records except the last,
so a record position maps to its chunk by one integer division and any
record range decodes by touching only the chunks that cover it — the
chunk index is what lets sharded replay and window sampling skip the rest
of a multi-gigabyte capture.  :class:`ChunkedTrace` is the lazy container
over this layout; v1 files load into :class:`PackedTrace` exactly as
before, and :func:`save_trace` still writes v1 on request.

The line shift travels in the header so a stream packed under one line
geometry is never silently interpreted under another — it is the same
:data:`~repro.workloads.trace.LINE_SHIFT` constant trace statistics use.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
import sys
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.memory.request import MemoryAccess
from repro.sim.stream import AccessColumns, expand_write_bitset, slice_columns
from repro.workloads.trace import LINE_SHIFT, Trace, distinct_line_count

#: Magic bytes opening every ``.rtrc`` file.
MAGIC = b"RTRC"

#: Current (default write) format version.
FORMAT_VERSION = 2

#: Every version this build reads.  v1 is the raw-column layout; v2 is the
#: chunked delta/varint layout (see the module docstring).
SUPPORTED_VERSIONS = (1, 2)

#: Records per chunk in a v2 file.  64Ki keeps a decoded chunk's columns
#: around 1 MiB while making the chunk index negligible (32 bytes per 64Ki
#: records); :func:`save_trace` takes an override for tests and tooling.
CHUNK_RECORDS = 65536

#: Decoded chunks a :class:`ChunkedTrace` keeps hot (LRU).  Sequential
#: window replay needs at most two (a window straddling one boundary);
#: the slack covers samplers hopping between a few regions.
CHUNK_CACHE_LIMIT = 8

#: The canonical file suffixes, in resolution-preference order.  The
#: workload registry's ``trace:`` resolution and directory scans, the
#: writers' suffix choice (:func:`trace_suffix`) and the sibling cleanup
#: (:func:`remove_stale_sibling`) all derive from this tuple, so a new
#: suffix added here is discovered everywhere.
TRACE_SUFFIXES = (".rtrc", ".rtrc.gz")


def trace_suffix(compress: bool) -> str:
    """The file suffix a writer should use (single source: TRACE_SUFFIXES)."""

    return TRACE_SUFFIXES[1] if compress else TRACE_SUFFIXES[0]

_FIXED_HEADER = struct.Struct("<4sHHB3xQI")
_GZIP_MAGIC = b"\x1f\x8b"

# -- version 2 framing -------------------------------------------------------
#: Per-chunk section lengths: pc bytes, address bytes, write-run bytes.
_V2_CHUNK_HEADER = struct.Struct("<III")
#: One chunk-index entry: file offset, record count, first pc, first address.
_V2_FOOTER_ENTRY = struct.Struct("<QQQQ")
#: End-of-file trailer: footer offset, chunk count, records per chunk, magic.
_V2_TRAILER = struct.Struct("<QQQ4s")
_V2_TRAILER_MAGIC = b"RTC2"

#: uint64 wrap mask for delta reconstruction.
_MASK64 = (1 << 64) - 1


class TraceFormatError(ValueError):
    """A file is not a readable ``.rtrc`` trace (bad magic, version, size)."""


def _pack_bits(flags: Iterable[bool], count: int) -> bytearray:
    """Pack booleans into an LSB-first bitset of ``ceil(count / 8)`` bytes."""

    bits = bytearray((count + 7) // 8)
    for index, flag in enumerate(flags):
        if flag:
            bits[index >> 3] |= 1 << (index & 7)
    return bits


# ---------------------------------------------------------------------------
# Version 2 codecs: zig-zag delta varints and write-run RLE
# ---------------------------------------------------------------------------
def _encode_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) to ``out`` as an LEB128 varint."""

    while value > 0x7F:
        out.append(value & 0x7F | 0x80)
        value >>= 7
    out.append(value)


def _encode_deltas(column, start: int, stop: int) -> bytes:
    """Records ``(start, stop)`` of a uint64 column as zig-zag delta varints.

    The first record (``column[start]``) is *not* encoded — it travels in
    the chunk index as the anchor the decoder starts from.  Deltas are
    signed differences of consecutive uint64 values, so they span
    ±(2^64−1); the zig-zag fold uses a 64-bit arithmetic shift over
    Python's arbitrary-precision ints (``delta >> 64`` is 0 for positive
    deltas and −1 for negative ones), which keeps the whole range
    reversible.
    """

    out = bytearray()
    append = out.append
    prev = column[start]
    for index in range(start + 1, stop):
        value = column[index]
        delta = value - prev
        prev = value
        z = (delta << 1) ^ (delta >> 64)
        while z > 0x7F:
            append(z & 0x7F | 0x80)
            z >>= 7
        append(z)
    return bytes(out)


def _decode_deltas(section: bytes, first: int, count: int, context: str) -> array:
    """Invert :func:`_encode_deltas` into a fresh ``array('Q')`` column."""

    column = array("Q", bytes(8 * count))
    if count:
        column[0] = first & _MASK64
    prev = first
    position = 0
    try:
        for index in range(1, count):
            byte = section[position]
            position += 1
            if byte < 0x80:
                z = byte
            else:
                z = byte & 0x7F
                shift = 7
                while True:
                    byte = section[position]
                    position += 1
                    z |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
            prev = (prev + ((z >> 1) ^ -(z & 1))) & _MASK64
            column[index] = prev
    except IndexError:
        raise TraceFormatError(f"{context}: delta section truncated") from None
    if position != len(section):
        raise TraceFormatError(
            f"{context}: {len(section) - position} stray bytes after the "
            f"last delta (torn chunk?)"
        )
    return column


def _encode_write_runs(flags, start: int, stop: int) -> bytes:
    """Write flags of ``(start, stop)`` as alternating run-length varints.

    Runs alternate read/write starting with a read run (zero when the
    window opens on a store) and sum to the window length.  Run boundaries
    are found with ``bytes.find`` over the expanded 0/1 flag bytes — a
    C-level scan, not a per-access Python loop.
    """

    window = bytes(flags[start:stop])
    out = bytearray()
    position = 0
    length = len(window)
    needle = b"\x01"
    while position < length:
        boundary = window.find(needle, position)
        if boundary < 0:
            boundary = length
        _encode_varint(out, boundary - position)
        position = boundary
        needle = b"\x00" if needle == b"\x01" else b"\x01"
    return bytes(out)


def _decode_varints(section: bytes, context: str) -> list[int]:
    """Every LEB128 varint in ``section``, in order."""

    values = []
    position = 0
    length = len(section)
    while position < length:
        value = 0
        shift = 0
        while True:
            if position >= length:
                raise TraceFormatError(f"{context}: truncated varint")
            byte = section[position]
            position += 1
            value |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        values.append(value)
    return values


def _decode_write_runs(section: bytes, count: int, context: str) -> bytearray:
    """Invert :func:`_encode_write_runs` into one 0/1 flag byte per record."""

    flags = bytearray(count)
    at = 0
    writing = False
    for run in _decode_varints(section, context):
        end = at + run
        if end > count:
            raise TraceFormatError(
                f"{context}: write runs cover {end} of {count} records "
                f"(torn chunk?)"
            )
        if writing and run:
            flags[at:end] = b"\x01" * run
        at = end
        writing = not writing
    if at != count:
        raise TraceFormatError(
            f"{context}: write runs cover {at} of {count} records (torn chunk?)"
        )
    return flags


class PackedTrace:
    """An access stream stored as parallel columns instead of objects.

    Satisfies the same iteration protocol as
    :class:`~repro.workloads.trace.Trace` — the simulator, the experiment
    layer and the statistics helpers accept either interchangeably — while
    holding the stream as two ``array('Q')`` columns plus a write bitset,
    about 17 bytes per access instead of a boxed object.  Iteration yields
    :class:`~repro.memory.request.MemoryAccess` values created on the fly;
    nothing per-access is retained.
    """

    __slots__ = (
        "name",
        "metadata",
        "line_shift",
        "_pcs",
        "_addresses",
        "_writes",
        "_write_flags",
        "_write_count",
        "_buffer",
    )

    def __init__(
        self,
        name: str,
        pcs: array,
        addresses: array,
        writes: bytearray | bytes,
        metadata: dict | None = None,
        line_shift: int = LINE_SHIFT,
    ) -> None:
        if len(pcs) != len(addresses):
            raise ValueError("pc and address columns must have equal length")
        if len(writes) < (len(pcs) + 7) // 8:
            raise ValueError("write bitset shorter than the record count")
        self.name = name
        self.metadata = dict(metadata or {})
        self.line_shift = line_shift
        self._pcs = pcs
        self._addresses = addresses
        self._writes = bytes(writes)
        self._write_flags: bytearray | None = None
        self._write_count: int | None = None
        # The mmap (or other buffer) the columns are views into, when the
        # trace was opened zero-copy; holding it here pins the mapping for
        # the life of the trace.  ``None`` for materialised columns.
        self._buffer = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_accesses(
        cls,
        name: str,
        accesses: Iterable[MemoryAccess],
        metadata: dict | None = None,
    ) -> "PackedTrace":
        """Pack any iterable of accesses (e.g. a live generator's trace)."""

        pcs = array("Q")
        addresses = array("Q")
        write_flags: list[bool] = []
        for access in accesses:
            pcs.append(access.pc)
            addresses.append(access.address)
            write_flags.append(access.is_write)
        return cls(
            name=name,
            pcs=pcs,
            addresses=addresses,
            writes=_pack_bits(write_flags, len(pcs)),
            metadata=metadata,
        )

    # -- the Trace protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._pcs)

    def __iter__(self) -> Iterator[MemoryAccess]:
        writes = self._writes
        for index, (pc, address) in enumerate(zip(self._pcs, self._addresses)):
            yield MemoryAccess(
                pc=pc,
                address=address,
                is_write=bool(writes[index >> 3] >> (index & 7) & 1),
            )

    def __getitem__(self, index: int) -> MemoryAccess:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace index out of range")
        return MemoryAccess(
            pc=self._pcs[index],
            address=self._addresses[index],
            is_write=bool(self._writes[index >> 3] >> (index & 7) & 1),
        )

    # -- the columnar protocol (see repro.sim.stream) ------------------------
    def access_columns(self) -> AccessColumns:
        """The stream as position-indexed columns, sharing the storage.

        The pc/address columns are handed over as-is; the on-disk write
        bitset is expanded to one flag byte per access on first use and
        memoised (a :class:`PackedTrace` is immutable, so the expansion can
        never go stale).
        """

        flags = self._write_flags
        if flags is None:
            flags = expand_write_bitset(self._writes, len(self._pcs))
            self._write_flags = flags
        return AccessColumns(
            pcs=self._pcs,
            addresses=self._addresses,
            writes=flags,
            length=len(self._pcs),
        )

    def is_write(self, index: int) -> bool:
        """Whether the ``index``-th access is a store (bitset lookup)."""

        return bool(self._writes[index >> 3] >> (index & 7) & 1)

    def write_count(self) -> int:
        """Number of stores in the trace (bitset popcount, not a scan).

        The whole bitset pops as one big-int ``bit_count`` — no per-byte
        Python loop — and the result is memoised (the trace is immutable),
        so repeated inspection never recounts.  Bits beyond the record
        count in the final byte are masked out, so a foreign file with
        stray tail bits can never inflate the count.
        """

        cached = self._write_count
        if cached is None:
            count = len(self)
            used = (count + 7) // 8
            total = int.from_bytes(self._writes[:used], "little").bit_count()
            tail_bits = count & 7
            if tail_bits and used:
                stray = self._writes[used - 1] >> tail_bits
                total -= stray.bit_count()
            self._write_count = cached = total
        return cached

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched (the trace's footprint)."""

        return distinct_line_count(self._addresses, self.line_shift)

    def unique_pcs(self) -> int:
        """Number of distinct PCs appearing in the trace."""

        return len(set(self._pcs))

    def slice(self, start: int, stop: int) -> "PackedTrace":
        """A sub-trace covering records ``[start:stop)``, columns re-sliced."""

        start, stop, _ = slice(start, stop).indices(len(self))
        write_flags = (self.is_write(index) for index in range(start, stop))
        return PackedTrace(
            name=f"{self.name}[{start}:{stop}]",
            pcs=self._pcs[start:stop],
            addresses=self._addresses[start:stop],
            writes=_pack_bits(write_flags, max(0, stop - start)),
            metadata=dict(self.metadata),
            line_shift=self.line_shift,
        )

    def to_trace(self) -> Trace:
        """Materialise a plain object-backed :class:`Trace` (tests, tooling)."""

        return Trace(name=self.name, accesses=list(self), metadata=dict(self.metadata))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedTrace(name={self.name!r}, records={len(self)})"


class ChunkedTrace:
    """A v2 ``.rtrc`` stream decoded chunk by chunk, on demand.

    Satisfies the same :class:`~repro.workloads.trace.Trace` iteration
    protocol and the :class:`~repro.sim.stream.AccessStream` columnar
    protocol as :class:`PackedTrace`, but holds only the *encoded* chunk
    bytes (an mmap view for uncompressed files) plus a small LRU of decoded
    chunks.  Consumers that replay one record range — sharded windows,
    samplers — call :meth:`window_columns` and decode only the chunks the
    range covers; :attr:`chunks_decoded` counts real decodes so tests can
    assert that selectivity.  A full :meth:`access_columns` materialisation
    is memoised, after which window views are zero-copy slices of it.
    """

    __slots__ = (
        "name",
        "metadata",
        "line_shift",
        "_data",
        "_entries",
        "_footer_offset",
        "_chunk_records",
        "_length",
        "_cache",
        "_cache_limit",
        "chunks_decoded",
        "_columns",
        "_write_count",
        "_packed",
        "_buffer",
    )

    def __init__(
        self,
        name: str,
        data,
        entries: list[tuple],
        footer_offset: int,
        chunk_records: int,
        records: int,
        metadata: dict | None = None,
        line_shift: int = LINE_SHIFT,
        cache_chunks: int = CHUNK_CACHE_LIMIT,
    ) -> None:
        self.name = name
        self.metadata = dict(metadata or {})
        self.line_shift = line_shift
        self._data = data
        self._entries = entries
        self._footer_offset = footer_offset
        self._chunk_records = max(1, chunk_records)
        self._length = records
        self._cache: OrderedDict = OrderedDict()
        self._cache_limit = max(1, cache_chunks)
        #: Chunks actually decoded over this trace's lifetime (cache misses
        #: only) — the observable the selective-decode tests count.
        self.chunks_decoded = 0
        self._columns: AccessColumns | None = None
        self._write_count: int | None = None
        self._packed: PackedTrace | None = None
        # Pins the mmap the encoded bytes are a view into (see PackedTrace).
        self._buffer = None

    # -- chunk plumbing ------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        """Number of chunks in the underlying file."""

        return len(self._entries)

    @property
    def chunk_records(self) -> int:
        """Nominal records per chunk (every chunk but the last is full)."""

        return self._chunk_records

    @property
    def payload_bytes(self) -> int:
        """Encoded size of the chunk payload (headers and footer excluded)."""

        if not self._entries:
            return 0
        return self._footer_offset - self._entries[0][0]

    def _chunk_bounds(self, index: int) -> tuple[int, int]:
        start = self._entries[index][0]
        if index + 1 < len(self._entries):
            end = self._entries[index + 1][0]
        else:
            end = self._footer_offset
        return start, end

    def _decode_chunk(self, index: int) -> tuple[array, array, bytearray]:
        offset, records, first_pc, first_address = self._entries[index]
        start, end = self._chunk_bounds(index)
        context = f"{self.name}: chunk {index}"
        data = self._data
        if end - start < _V2_CHUNK_HEADER.size:
            raise TraceFormatError(f"{context}: chunk header torn")
        pc_bytes, address_bytes, write_bytes = _V2_CHUNK_HEADER.unpack_from(
            data, start
        )
        body = start + _V2_CHUNK_HEADER.size
        if body + pc_bytes + address_bytes + write_bytes != end:
            raise TraceFormatError(
                f"{context}: section lengths do not match the chunk extent "
                f"(torn chunk?)"
            )
        pc_section = bytes(data[body : body + pc_bytes])
        address_section = bytes(
            data[body + pc_bytes : body + pc_bytes + address_bytes]
        )
        write_section = bytes(data[body + pc_bytes + address_bytes : end])
        pcs = _decode_deltas(pc_section, first_pc, records, f"{context} pc column")
        addresses = _decode_deltas(
            address_section, first_address, records, f"{context} address column"
        )
        flags = _decode_write_runs(write_section, records, f"{context} write runs")
        self.chunks_decoded += 1
        return pcs, addresses, flags

    def _chunk(self, index: int) -> tuple[array, array, bytearray]:
        """The decoded columns of one chunk, through the LRU cache."""

        cache = self._cache
        chunk = cache.get(index)
        if chunk is not None:
            cache.move_to_end(index)
            return chunk
        chunk = self._decode_chunk(index)
        cache[index] = chunk
        if len(cache) > self._cache_limit:
            cache.popitem(last=False)
        return chunk

    # -- the Trace protocol --------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[MemoryAccess]:
        for index in range(len(self._entries)):
            pcs, addresses, flags = self._chunk(index)
            for pc, address, flag in zip(pcs, addresses, flags):
                yield MemoryAccess(pc=pc, address=address, is_write=bool(flag))

    def __getitem__(self, index: int) -> MemoryAccess:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("trace index out of range")
        pcs, addresses, flags = self._chunk(index // self._chunk_records)
        position = index % self._chunk_records
        return MemoryAccess(
            pc=pcs[position],
            address=addresses[position],
            is_write=bool(flags[position]),
        )

    def is_write(self, index: int) -> bool:
        """Whether the ``index``-th access is a store (chunk flag lookup)."""

        flags = self._chunk(index // self._chunk_records)[2]
        return bool(flags[index % self._chunk_records])

    def write_count(self) -> int:
        """Number of stores (write-run sums alone — no column decode).

        Walks each chunk's run-length section and sums the write runs; the
        delta-encoded pc/address columns are never touched, so footprint
        inspection of a huge capture stays proportional to the *encoded*
        write sections, not the record count.  Memoised (the trace is
        immutable).
        """

        cached = self._write_count
        if cached is None:
            total = 0
            data = self._data
            for index, (offset, records, _pc, _address) in enumerate(
                self._entries
            ):
                start, _end = self._chunk_bounds(index)
                context = f"{self.name}: chunk {index} write runs"
                pc_bytes, address_bytes, write_bytes = (
                    _V2_CHUNK_HEADER.unpack_from(data, start)
                )
                begin = start + _V2_CHUNK_HEADER.size + pc_bytes + address_bytes
                runs = _decode_varints(
                    bytes(data[begin : begin + write_bytes]), context
                )
                if sum(runs) != records:
                    raise TraceFormatError(
                        f"{context}: runs cover {sum(runs)} of {records} records"
                    )
                total += sum(runs[1::2])
            self._write_count = cached = total
        return cached

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched (the trace's footprint)."""

        return distinct_line_count(self.access_columns().addresses, self.line_shift)

    def unique_pcs(self) -> int:
        """Number of distinct PCs appearing in the trace."""

        return len(set(self.access_columns().pcs))

    def slice(self, start: int, stop: int) -> PackedTrace:
        """A sub-trace over ``[start:stop)``, decoding only covering chunks."""

        start, stop, _ = slice(start, stop).indices(self._length)
        stop = max(start, stop)
        pcs, addresses, flags, length = self.window_columns(start, stop)
        if not isinstance(pcs, array):
            pcs = array("Q", pcs)
            addresses = array("Q", addresses)
        return PackedTrace(
            name=f"{self.name}[{start}:{stop}]",
            pcs=pcs,
            addresses=addresses,
            writes=_pack_bits(flags, length),
            metadata=dict(self.metadata),
            line_shift=self.line_shift,
        )

    def to_trace(self) -> Trace:
        """Materialise a plain object-backed :class:`Trace` (tests, tooling)."""

        return Trace(name=self.name, accesses=list(self), metadata=dict(self.metadata))

    def materialise(self) -> PackedTrace:
        """The whole stream as a :class:`PackedTrace` (memoised)."""

        packed = self._packed
        if packed is None:
            columns = self.access_columns()
            packed = PackedTrace(
                name=self.name,
                pcs=columns.pcs,
                addresses=columns.addresses,
                writes=_pack_bits(columns.writes, self._length),
                metadata=dict(self.metadata),
                line_shift=self.line_shift,
            )
            # The expanded flags are already in hand; seed the memo so the
            # packed view never re-expands its bitset.
            packed._write_flags = columns.writes
            self._packed = packed
        return packed

    # -- the columnar protocol (see repro.sim.stream) ------------------------
    def access_columns(self) -> AccessColumns:
        """The full stream as columns (all chunks decoded once, memoised)."""

        columns = self._columns
        if columns is None:
            pcs = array("Q")
            addresses = array("Q")
            flags = bytearray()
            for index in range(len(self._entries)):
                chunk_pcs, chunk_addresses, chunk_flags = self._chunk(index)
                pcs.extend(chunk_pcs)
                addresses.extend(chunk_addresses)
                flags.extend(chunk_flags)
            columns = AccessColumns(
                pcs=pcs, addresses=addresses, writes=flags, length=self._length
            )
            self._columns = columns
            # The per-chunk copies are now redundant with the materialised
            # columns every later consumer slices from.
            self._cache.clear()
        return columns

    def window_columns(self, start: int, stop: int) -> AccessColumns:
        """Columns for records ``[start:stop)``, touching only their chunks.

        The chunk-selective counterpart of ``access_columns() +
        slice_columns(...)``: the fast kernel's window replay and the
        samplers call this so a shard of a huge capture decodes a handful
        of chunks instead of the whole payload.  Once the trace has been
        fully materialised the window is a zero-copy view of those columns.
        """

        start, stop, _ = slice(start, stop).indices(self._length)
        stop = max(start, stop)
        columns = self._columns
        if columns is not None:
            return slice_columns(columns, start, stop)
        if start >= stop:
            return AccessColumns(
                pcs=array("Q"), addresses=array("Q"), writes=bytearray(), length=0
            )
        size = self._chunk_records
        first = start // size
        last = (stop - 1) // size
        if first == last:
            pcs, addresses, flags = self._chunk(first)
            low = start - first * size
            high = stop - first * size
            return AccessColumns(
                pcs=pcs[low:high],
                addresses=addresses[low:high],
                writes=flags[low:high],
                length=stop - start,
            )
        pcs = array("Q")
        addresses = array("Q")
        flags = bytearray()
        for index in range(first, last + 1):
            chunk_pcs, chunk_addresses, chunk_flags = self._chunk(index)
            low = max(start - index * size, 0)
            high = min(stop - index * size, len(chunk_pcs))
            pcs.extend(chunk_pcs[low:high])
            addresses.extend(chunk_addresses[low:high])
            flags.extend(chunk_flags[low:high])
        return AccessColumns(
            pcs=pcs, addresses=addresses, writes=flags, length=stop - start
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedTrace(name={self.name!r}, records={len(self)}, "
            f"chunks={self.chunk_count})"
        )


@dataclass(frozen=True)
class TraceHeader:
    """The decoded fixed header + JSON header of one ``.rtrc`` file."""

    name: str
    records: int
    line_shift: int
    version: int
    compressed: bool
    metadata: dict


def _column_bytes(column) -> bytes:
    """The column's records as little-endian bytes regardless of host order."""

    if sys.byteorder == "big":  # pragma: no cover - exercised on BE hosts only
        # Zero-copy (memoryview) columns only exist on little-endian hosts,
        # so rebuilding through array('Q') here always sees plain values.
        column = array("Q", column)
        column.byteswap()
    return column.tobytes()


def _column_from_bytes(data: bytes) -> array:
    column = array("Q")
    column.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - exercised on BE hosts only
        column.byteswap()
    return column


def pack_trace(trace, name: str | None = None) -> PackedTrace:
    """Pack any trace-like object; a :class:`PackedTrace` passes through.

    Renaming an already-packed trace shares its columns and keeps its
    recorded ``line_shift`` — re-packing access by access would silently
    reset a foreign file's geometry to this build's default.  A
    :class:`ChunkedTrace` materialises (all chunks decoded, memoised on the
    trace) and then follows the same sharing rules.
    """

    if isinstance(trace, ChunkedTrace):
        trace = trace.materialise()
    if isinstance(trace, PackedTrace):
        if name in (None, trace.name):
            return trace
        return PackedTrace(
            name=name,
            pcs=trace._pcs,
            addresses=trace._addresses,
            writes=trace._writes,
            metadata=dict(trace.metadata),
            line_shift=trace.line_shift,
        )
    return PackedTrace.from_accesses(
        name=name or getattr(trace, "name", "trace"),
        accesses=trace,
        metadata=dict(getattr(trace, "metadata", {}) or {}),
    )


def _encode_v2_container(
    packed: PackedTrace, header_json: bytes, chunk_records: int
) -> bytes:
    """Assemble the whole v2 container (chunks, index, trailer) as bytes."""

    if chunk_records < 1:
        raise ValueError("chunk_records must be at least 1")
    count = len(packed)
    columns = packed.access_columns()
    pcs = columns.pcs
    addresses = columns.addresses
    flags = columns.writes
    parts = [
        _FIXED_HEADER.pack(
            MAGIC, 2, 0, packed.line_shift, count, len(header_json)
        ),
        header_json,
    ]
    offset = _FIXED_HEADER.size + len(header_json)
    footer = bytearray()
    chunk_count = 0
    for start in range(0, count, chunk_records):
        stop = min(start + chunk_records, count)
        pc_section = _encode_deltas(pcs, start, stop)
        address_section = _encode_deltas(addresses, start, stop)
        write_section = _encode_write_runs(flags, start, stop)
        body = b"".join(
            (
                _V2_CHUNK_HEADER.pack(
                    len(pc_section), len(address_section), len(write_section)
                ),
                pc_section,
                address_section,
                write_section,
            )
        )
        footer += _V2_FOOTER_ENTRY.pack(
            offset, stop - start, pcs[start], addresses[start]
        )
        parts.append(body)
        offset += len(body)
        chunk_count += 1
    parts.append(bytes(footer))
    parts.append(
        _V2_TRAILER.pack(offset, chunk_count, chunk_records, _V2_TRAILER_MAGIC)
    )
    return b"".join(parts)


def save_trace(
    trace,
    path: str | Path,
    name: str | None = None,
    version: int | None = None,
    chunk_records: int | None = None,
) -> Path:
    """Write a trace-like object to ``path`` in ``.rtrc`` form.

    ``version`` selects the layout — ``2`` (chunked delta/varint, the
    default) or ``1`` (raw columns, for interchange with older readers).
    ``chunk_records`` overrides the v2 chunk size (tests and tooling; the
    default :data:`CHUNK_RECORDS` is right for real captures).  A ``.gz``
    suffix gzip-compresses the file (the whole container, so the reader
    sniffs the gzip magic and either spelling loads either file).  Returns
    the path written.
    """

    if version is None:
        version = FORMAT_VERSION
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported .rtrc version {version}; this build writes "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
    packed = pack_trace(trace, name)
    metadata = {
        key: value
        for key, value in packed.metadata.items()
        if _json_safe(value)
    }
    header_json = json.dumps(
        {"name": packed.name, "metadata": metadata}, sort_keys=True
    ).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if version == 1:
        container = b"".join(
            (
                _FIXED_HEADER.pack(
                    MAGIC,
                    1,
                    0,
                    packed.line_shift,
                    len(packed),
                    len(header_json),
                ),
                header_json,
                _column_bytes(packed._pcs),
                _column_bytes(packed._addresses),
                packed._writes[: (len(packed) + 7) // 8],
            )
        )
    else:
        container = _encode_v2_container(
            packed, header_json, chunk_records or CHUNK_RECORDS
        )
    if path.suffix == ".gz":
        # gzip.compress with mtime=0 embeds neither a timestamp nor a
        # filename, so the same stream produces the same bytes whenever
        # (and wherever) it is saved — the file-content digests keying the
        # result store must not churn on a byte-identical re-record.
        container = gzip.compress(container, mtime=0)
    # Write-then-rename: re-recording a file another process is replaying
    # must never expose a torn half-written container to its readers.
    staging = path.with_name(path.name + ".tmp")
    staging.write_bytes(container)
    os.replace(staging, path)
    # This process just changed the file: drop its memoised digests, so a
    # same-size rewrite inside the filesystem's mtime granularity can never
    # serve the old digest to subsequent spec creation/verification.
    _drop_memoised_digests(path)
    return path


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def _read_container(path: Path) -> tuple[bytes, bool]:
    """The file's raw container bytes and whether it was gzip-compressed.

    Every load primes the digest memo from the bytes just read (guarded by
    a stat taken on both sides, so a concurrent rewrite can't memoise a
    digest under the wrong key): ``trace info`` and the executor's
    load-then-digest sequences touch the file once, not twice.
    """

    try:
        stat_before = path.stat()
    except OSError:
        stat_before = None
    raw = path.read_bytes()
    if stat_before is not None:
        try:
            stat_after = path.stat()
        except OSError:
            stat_after = None
        if stat_after is not None and (
            stat_before.st_size,
            stat_before.st_mtime_ns,
        ) == (stat_after.st_size, stat_after.st_mtime_ns):
            key = (str(path.resolve()), stat_after.st_size, stat_after.st_mtime_ns)
            _DIGEST_MEMO.setdefault(key, hashlib.sha256(raw).hexdigest())
    if raw[:2] == _GZIP_MAGIC:
        return gzip.decompress(raw), True
    return raw, False


def _decode_header(
    data: bytes, path: Path, compressed: bool = False
) -> tuple[TraceHeader, int]:
    """Decode the fixed + JSON header; returns it and the payload offset."""

    if len(data) < _FIXED_HEADER.size:
        raise TraceFormatError(f"{path}: truncated header")
    magic, version, _flags, line_shift, count, json_length = _FIXED_HEADER.unpack_from(
        data
    )
    if magic != MAGIC:
        raise TraceFormatError(f"{path}: not an .rtrc trace (bad magic)")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"{path}: unsupported .rtrc version {version} (this build reads "
            f"versions {', '.join(str(v) for v in SUPPORTED_VERSIONS)})"
        )
    offset = _FIXED_HEADER.size + json_length
    if len(data) < offset:
        raise TraceFormatError(f"{path}: truncated JSON header")
    try:
        # bytes() also unwraps the memoryview the mmap path passes in
        # (json.loads takes str/bytes/bytearray only).
        described = json.loads(bytes(data[_FIXED_HEADER.size : offset]))
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"{path}: corrupt JSON header ({error})") from None
    header = TraceHeader(
        name=str(described.get("name", path.stem)),
        records=count,
        line_shift=line_shift,
        version=version,
        compressed=compressed,
        metadata=dict(described.get("metadata", {})),
    )
    return header, offset


#: Bytes read per step while probing for a file's header.
_HEADER_PROBE = 1 << 16


def _header_prefix(path: Path) -> tuple[bytes, bool]:
    """At least the fixed + JSON header bytes, without reading the payload.

    Plain files are read in 64 KiB steps until the header is complete;
    gzip files are *stream*-decompressed just as far — ``repro trace info
    --shards`` on a multi-gigabyte ``.rtrc.gz`` must not inflate the whole
    payload to report twenty header bytes and a shard plan.
    """

    with open(path, "rb") as handle:
        probe = handle.read(_HEADER_PROBE)
        if probe[:2] == _GZIP_MAGIC:
            import zlib

            decompressor = zlib.decompressobj(wbits=31)
            data = bytearray(decompressor.decompress(probe))
            compressed = True

            def more() -> bool:
                chunk = handle.read(_HEADER_PROBE)
                if not chunk:
                    return False
                data.extend(decompressor.decompress(chunk))
                return True

        else:
            data = bytearray(probe)
            compressed = False

            def more() -> bool:
                chunk = handle.read(_HEADER_PROBE)
                if not chunk:
                    return False
                data.extend(chunk)
                return True

        while len(data) < _FIXED_HEADER.size:
            if not more():
                return bytes(data), compressed
        json_length = _FIXED_HEADER.unpack_from(data)[5]
        needed = _FIXED_HEADER.size + json_length
        while len(data) < needed:
            if not more():
                break
        return bytes(data), compressed


def read_header(path: str | Path) -> TraceHeader:
    """Decode a file's header (name, counts, shift, metadata) only.

    Reads — and for gzip files decompresses — just enough of the file to
    cover the header, never the payload, so inspecting a huge capture is
    O(header) regardless of encoding.
    """

    path = Path(path)
    data, compressed = _header_prefix(path)
    header, _ = _decode_header(data, path, compressed)
    return header


def load_trace(path: str | Path):
    """Load an ``.rtrc`` file (gzip sniffed) into its natural container.

    v1 files load into a :class:`PackedTrace`; v2 files into a lazy
    :class:`ChunkedTrace`.  Both satisfy the same trace and columnar
    protocols, so callers need not care which they get.
    """

    return open_trace(path)[0]


def _mapped_container(path: Path):
    """Map an uncompressed file read-only; ``None`` when mapping can't help.

    Gzip files must be decompressed into memory anyway, empty/over-truncated
    files can't be mapped (or aren't worth it), and byteswapping on a
    big-endian host would force a copy regardless — all of those return
    ``None`` and the caller takes the plain read path.
    """

    if sys.byteorder != "little":  # pragma: no cover - BE hosts copy+swap
        return None
    import mmap

    with open(path, "rb") as handle:
        if handle.read(2) == _GZIP_MAGIC:
            return None
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file, exotic filesystem
            return None
    return memoryview(mapping)


def _open_chunked(data, path: Path, header: TraceHeader, offset: int) -> ChunkedTrace:
    """Validate a v2 container's framing and build its lazy trace.

    ``data`` is the whole container (an mmap view or bytes); only the
    trailer and the chunk index are decoded here — chunk bodies stay
    encoded until a consumer asks for their records.
    """

    total = len(data)
    count = header.records
    if total < offset + _V2_TRAILER.size:
        raise TraceFormatError(f"{path}: truncated v2 container (no trailer)")
    footer_offset, chunk_count, chunk_records, trailer_magic = _V2_TRAILER.unpack_from(
        data, total - _V2_TRAILER.size
    )
    if trailer_magic != _V2_TRAILER_MAGIC:
        raise TraceFormatError(
            f"{path}: v2 trailer magic missing (file truncated or torn?)"
        )
    footer_size = chunk_count * _V2_FOOTER_ENTRY.size
    if (
        footer_offset < offset
        or footer_offset + footer_size + _V2_TRAILER.size != total
    ):
        raise TraceFormatError(
            f"{path}: chunk index does not fit the file (truncated footer?)"
        )
    if count and chunk_records < 1:
        raise TraceFormatError(f"{path}: invalid chunk size {chunk_records}")
    expected_chunks = (
        (count + chunk_records - 1) // chunk_records if count else 0
    )
    if chunk_count != expected_chunks:
        raise TraceFormatError(
            f"{path}: chunk index lists {chunk_count} chunks, expected "
            f"{expected_chunks} for {count} records of {chunk_records}"
        )
    entries = list(
        _V2_FOOTER_ENTRY.iter_unpack(
            bytes(data[footer_offset : footer_offset + footer_size])
        )
    )
    remaining = count
    previous = offset
    for index, (chunk_offset, records, _pc, _address) in enumerate(entries):
        expected_records = min(chunk_records, remaining)
        if records != expected_records:
            raise TraceFormatError(
                f"{path}: chunk {index} claims {records} records, expected "
                f"{expected_records}"
            )
        if chunk_offset < previous or chunk_offset >= footer_offset:
            raise TraceFormatError(
                f"{path}: chunk {index} offset {chunk_offset} outside the "
                f"payload (torn chunk index?)"
            )
        previous = chunk_offset + _V2_CHUNK_HEADER.size
        remaining -= records
    return ChunkedTrace(
        name=header.name,
        data=data,
        entries=entries,
        footer_offset=footer_offset,
        chunk_records=chunk_records,
        records=count,
        metadata=header.metadata,
        line_shift=header.line_shift,
    )


def open_trace(path: str | Path):
    """Load a file *and* its decoded header in a single read/decompress.

    ``repro trace info`` wants both the stream and the container facts
    (version, compressed flag); calling :func:`load_trace` plus
    :func:`read_header` would read — and for ``.gz`` files decompress — the
    container twice.

    Uncompressed files on little-endian hosts are **memory-mapped**: a v1
    file's pc/address columns become ``uint64`` views straight into the
    page cache, and a v2 file's *encoded* chunks stay on disk until a
    record range asks for them — either way nothing is copied up front and
    the returned trace pins the mapping for its lifetime.  Gzip files
    decompress into memory; a gzipped v2 file still decodes chunks
    selectively from the in-memory container.
    """

    path = Path(path)
    view = _mapped_container(path)
    if view is not None:
        data, compressed = view, False
    else:
        data, compressed = _read_container(path)
    header, offset = _decode_header(data, path, compressed)
    if header.line_shift != LINE_SHIFT:
        # The simulator's hierarchy has one fixed line geometry; replaying
        # a stream recorded under another shift would silently skew every
        # footprint and statistic.  (read_header still decodes such files
        # for inspection.)
        raise TraceFormatError(
            f"{path}: recorded under line shift {header.line_shift}, but "
            f"this build simulates {1 << LINE_SHIFT}-byte lines (shift "
            f"{LINE_SHIFT})"
        )
    if header.version == 2:
        trace = _open_chunked(data, path, header, offset)
        if view is not None:
            trace._buffer = view
        return trace, header
    count = header.records
    column_size = 8 * count
    bitset_size = (count + 7) // 8
    expected = offset + 2 * column_size + bitset_size
    if len(data) < expected:
        raise TraceFormatError(
            f"{path}: payload truncated ({len(data)} bytes, expected {expected})"
        )
    if view is not None:
        pcs = view[offset : offset + column_size].cast("Q")
        addresses = view[offset + column_size : offset + 2 * column_size].cast("Q")
        writes = bytes(view[offset + 2 * column_size : expected])
    else:
        pcs = _column_from_bytes(data[offset : offset + column_size])
        addresses = _column_from_bytes(
            data[offset + column_size : offset + 2 * column_size]
        )
        writes = data[offset + 2 * column_size : expected]
    trace = PackedTrace(
        name=header.name,
        pcs=pcs,
        addresses=addresses,
        writes=writes,
        metadata=header.metadata,
        line_shift=header.line_shift,
    )
    if view is not None:
        trace._buffer = view
    return trace, header


def remove_stale_sibling(path: str | Path) -> Path | None:
    """Delete any other-suffix spelling of a just-written trace.

    Every :data:`TRACE_SUFFIXES` spelling of ``<name>`` resolves to the
    *same* workload name (in preference order) — so re-recording a trace
    under a different suffix would otherwise leave a stale sibling
    shadowing (or shadowed by) the new file, and ``trace:<name>`` could
    silently replay old data.  Returns the first removed path, if any.
    """

    path = Path(path)
    name = path.name
    # Longest suffix first, so ".rtrc.gz" is not misread as ".rtrc".
    for suffix in sorted(TRACE_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            removed = None
            for other in TRACE_SUFFIXES:
                if other == suffix:
                    continue
                sibling = path.with_name(stem + other)
                if sibling.is_file():
                    sibling.unlink()
                    removed = removed or sibling
            return removed
    return None


# ---------------------------------------------------------------------------
# Content digests: the experiment layer's identity for trace-file workloads
# ---------------------------------------------------------------------------
# Keyed by (path, size, mtime_ns) so repeated spec hashing over a big batch
# reads each file once per version of its contents.  In-process writers
# (:func:`save_trace`) additionally evict their path outright, closing the
# stale-digest window a same-size rewrite inside the filesystem's mtime
# granularity would otherwise leave open.
_DIGEST_MEMO: dict[tuple, str] = {}


def _drop_memoised_digests(path: Path) -> None:
    """Evict every memoised digest of one file (writers call this)."""

    resolved = str(path.resolve())
    for key in [key for key in _DIGEST_MEMO if key[0] == resolved]:
        del _DIGEST_MEMO[key]


def trace_file_digest(path: str | Path) -> str:
    """SHA-256 of the file's bytes (memoised on path + size + mtime).

    This is what :mod:`repro.experiments.jobs` folds into the content hash
    of any spec whose workload resolves to a trace file, so the persistent
    result store keys on *what the file contains*, not what it is called:
    re-importing different data under the same name can never replay stale
    results, and renaming a file never invalidates them.
    """

    path = Path(path)
    stat = path.stat()
    key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    digest = _DIGEST_MEMO.get(key)
    if digest is None:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        _DIGEST_MEMO[key] = digest
    return digest


def clear_digest_memo() -> None:
    """Drop memoised file digests (tests that rewrite files in place)."""

    _DIGEST_MEMO.clear()
