"""Record registered workload generators' streams to ``.rtrc`` files.

Recording turns a synthetic generator into an on-disk artefact: the access
stream a generator produces (under given overrides) is packed and saved, and
from then on loading the file — the ``trace:<name>`` workload path — yields
the *identical* stream without re-running any generation code.  The
record→replay parity tests in ``tests/test_traces.py`` assert this down to
bit-identical simulation statistics.

Provenance travels in the file header: ``metadata["recorded"]`` names the
source workload and the overrides it was generated with, on top of whatever
metadata the generator itself attached, so a recorded file is always
self-describing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.traces.format import (
    PackedTrace,
    pack_trace,
    remove_stale_sibling,
    save_trace,
    trace_suffix,
)


def record_trace(
    trace,
    path: str | Path,
    name: str | None = None,
    version: int | None = None,
) -> Path:
    """Capture any live trace-like object to ``path`` (thin save wrapper).

    ``version`` selects the on-disk ``.rtrc`` format (``None`` means the
    library default — chunked delta/varint v2).
    """

    return save_trace(trace, path, name=name, version=version)


def record_workload(
    workload: str,
    directory: str | Path,
    name: str | None = None,
    compress: bool = False,
    overrides: Mapping | None = None,
    version: int | None = None,
) -> Path:
    """Generate a registered workload and save its stream under ``directory``.

    ``name`` defaults to the workload name (so ``record_workload("mcf", d)``
    writes ``d/mcf.rtrc`` and ``trace:mcf`` resolves to it when ``d`` is on
    the trace search path).  ``overrides`` are forwarded to the generator
    exactly as :func:`~repro.workloads.registry.generate_workload` would
    (``length``, ``seed``, ...), and are recorded as provenance.
    ``version`` picks the container format (default: v2 chunked
    delta/varint).  Returns the path written.
    """

    from repro.workloads.registry import TRACE_PREFIX, generate_workload

    overrides = dict(overrides or {})
    try:
        trace = generate_workload(workload, **overrides)
    except TypeError as error:
        # A generator rejecting an override is caller input, not a bug:
        # surface it as the validation error the CLI knows how to render.
        # With no overrides given, a TypeError can only be a real defect
        # inside the generator — let it propagate untouched.
        if not overrides:
            raise
        raise ValueError(
            f"workload {workload!r} does not accept override(s) "
            f"{sorted(overrides)} ({error})"
        ) from None
    # The file stem IS the workload name, so the trace: prefix must never
    # leak into it — whether from re-recording an on-disk trace (`record
    # trace:<name>`) or from a caller passing a prefixed name.  A prefixed
    # stem would shadow nothing (sibling cleanup keys on the stem) and
    # advertise a double-prefixed workload.
    stem = name or workload
    if stem.startswith(TRACE_PREFIX):
        stem = stem[len(TRACE_PREFIX):]
    if not stem:
        raise ValueError("empty trace name")
    packed = pack_trace(trace, name=stem)
    packed.metadata["recorded"] = {
        "workload": workload,
        "overrides": overrides,
        "accesses": len(packed),
    }
    path = Path(directory) / f"{packed.name}{trace_suffix(compress)}"
    save_trace(packed, path, version=version)
    # A leftover opposite-compression spelling would shadow (or be
    # shadowed by) the file just written under the same workload name.
    remove_stale_sibling(path)
    return path
