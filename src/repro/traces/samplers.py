"""Trace samplers: carve representative sub-streams out of long traces.

Real captured traces are orders of magnitude longer than what a Python
simulator wants to replay, so the classic trace-driven methodology samples
them.  Two samplers cover the common cases:

* :func:`sample_window` — one contiguous region (SimPoint-style: simulate
  the region the full run identified as representative);
* :func:`sample_prefix` — the leading window (the design-space screen of
  :mod:`repro.experiments.explore`: a cheap first look whose verdict the
  full trace later confirms);
* :func:`sample_systematic` — periodic systematic sampling (every
  ``period`` accesses keep a block of ``block`` accesses), which preserves
  long-range temporal structure at a fixed 1-in-N cost.

Both return a new :class:`~repro.traces.format.PackedTrace` whose
``metadata["sampled"]`` records exactly how it was derived — sampler name,
parameters, source name and source length — so a sampled file saved to disk
stays self-describing, and the experiment layer's file-content hashing keys
results on the sampled stream itself.
"""

from __future__ import annotations

from array import array

from repro.traces.format import ChunkedTrace, PackedTrace, _pack_bits, pack_trace


def _provenance(packed: PackedTrace, source, description: dict) -> PackedTrace:
    """Attach sampling provenance (and the source's provenance) to a sample."""

    packed.metadata["sampled"] = dict(
        description,
        source=getattr(source, "name", "trace"),
        source_accesses=len(source),
    )
    return packed


def sample_window(trace, start: int, length: int, name: str | None = None) -> PackedTrace:
    """The contiguous window ``[start, start + length)`` of a trace.

    ``start`` must lie inside the trace and ``length`` be positive; a window
    extending past the end is clipped (and the clipped length recorded).
    """

    if length <= 0:
        raise ValueError("window length must be positive")
    if not 0 <= start < len(trace):
        raise ValueError(
            f"window start {start} outside trace of {len(trace)} accesses"
        )
    if isinstance(trace, ChunkedTrace):
        # Chunk-selective path: ``ChunkedTrace.slice`` decodes only the
        # chunks the window covers, so sampling a narrow region of a large
        # v2 capture never materialises the full columns.
        source_name = trace.name
        window = trace.slice(start, start + length)
    else:
        packed = pack_trace(trace)
        source_name = packed.name
        window = packed.slice(start, start + length)
    window.name = name or f"{source_name}@{start}+{len(window)}"
    return _provenance(
        window,
        trace,
        {"sampler": "window", "start": start, "length": len(window)},
    )


def sample_prefix(trace, length: int, name: str | None = None) -> PackedTrace:
    """The leading ``length`` accesses of a trace (clipped at the end).

    Equivalent to :func:`sample_window` at ``start=0``; the separate entry
    point exists because prefix screens are the common successive-halving
    case and deserve their own provenance-carrying idiom.
    """

    return sample_window(trace, 0, length, name=name)


def sample_systematic(
    trace,
    period: int,
    block: int = 1,
    offset: int = 0,
    name: str | None = None,
) -> PackedTrace:
    """Keep ``block`` accesses out of every ``period``, starting at ``offset``.

    ``block=1`` is plain 1-in-N systematic sampling; larger blocks keep
    short runs intact so temporal correlations inside a block survive.
    """

    if period <= 0:
        raise ValueError("period must be positive")
    if not 0 < block <= period:
        raise ValueError("block must be in [1, period]")
    if not 0 <= offset < period:
        raise ValueError("offset must be in [0, period)")
    packed = pack_trace(trace)
    pcs = array("Q")
    addresses = array("Q")
    write_flags: list[bool] = []
    # Block-wise column slicing, not a per-index Python loop: on the
    # multi-million-access captures this subsystem targets, per-access
    # method calls would cost minutes for identical output.
    for start in range(offset, len(packed), period):
        stop = min(start + block, len(packed))
        pcs.extend(packed._pcs[start:stop])
        addresses.extend(packed._addresses[start:stop])
        write_flags.extend(
            packed.is_write(index) for index in range(start, stop)
        )
    sampled = PackedTrace(
        name=name or f"{packed.name}%{period}x{block}",
        pcs=pcs,
        addresses=addresses,
        writes=_pack_bits(write_flags, len(pcs)),
        metadata=dict(packed.metadata),
        line_shift=packed.line_shift,
    )
    return _provenance(
        sampled,
        trace,
        {"sampler": "systematic", "period": period, "block": block, "offset": offset},
    )
