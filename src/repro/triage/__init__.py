"""The fixed Triage baseline (paper sections 2 and 3).

Triage (Wu et al., MICRO 2019) is the state-of-the-art on-chip temporal
prefetcher that Triangel builds on.  The paper's section 3 documents the
inconsistencies in the original Triage/Triage-ISR descriptions and chooses
implementable fixes; this package implements that *fixed* baseline:

* :mod:`repro.triage.lookup_table` — the 1024-entry upper-bits lookup table
  used by the 32-bit metadata format (section 3.1, figure 2).
* :mod:`repro.triage.metadata` — the Markov-entry target formats studied in
  section 6.5: 32-bit with LUT (16-way or fully associative), 32-bit ideal,
  42-bit full address, and the fragmented 10-bit-offset variant.
* :mod:`repro.triage.markov_table` — the Markov table stored in the L3
  partition with sub-set indexing and re-indexing on resize (section 3.2)
  and the single confidence bit (section 3.4).
* :mod:`repro.triage.training_table` — the PC-indexed training table.
* :mod:`repro.triage.bloom` — the Bloom-filter partition sizer (section 3.5).
* :mod:`repro.triage.triage` — the Triage prefetcher itself, with the
  degree-1/degree-4 and lookahead-2 configurations used in the evaluation.
"""

from repro.triage.bloom import BloomFilter, BloomPartitionSizer
from repro.triage.lookup_table import LookupTable
from repro.triage.markov_table import MarkovTable
from repro.triage.metadata import (
    Full42Format,
    Ideal32Format,
    Lut32Format,
    MetadataFormat,
    make_metadata_format,
)
from repro.triage.training_table import TriageTrainingTable
from repro.triage.triage import TriageConfig, TriagePrefetcher

__all__ = [
    "BloomFilter",
    "BloomPartitionSizer",
    "LookupTable",
    "MarkovTable",
    "MetadataFormat",
    "Lut32Format",
    "Ideal32Format",
    "Full42Format",
    "make_metadata_format",
    "TriageTrainingTable",
    "TriageConfig",
    "TriagePrefetcher",
]
