"""Bloom-filter-based Markov-partition sizing (paper section 3.5).

Triage-ISR sizes the L3 partition holding the Markov table with a Bloom
filter trained on every prefetcher access within a 30-million-instruction
window: an address that misses in the filter has not been seen before, so
the target partition size grows to make room for its entry.  The paper keeps
this mechanism for its Triage baseline (and for the Triangel-Bloom variant,
with an experimentally chosen bias factor of 1.5) and criticises it for its
persistent bias towards metadata regardless of whether the displaced L3 data
capacity would have been more valuable — the shortcoming Triangel's Set
Dueller (:mod:`repro.core.set_dueller`) exists to fix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.hashing import mix64


class BloomFilter:
    """A plain counting-free Bloom filter with ``k`` independent hashes."""

    def __init__(self, bits: int = 1 << 14, hashes: int = 4) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray(bits)
        self.inserted = 0

    def _positions(self, value: int) -> list[int]:
        return [mix64(value ^ (salt * 0x9E3779B97F4A7C15)) % self.bits for salt in range(1, self.hashes + 1)]

    def contains(self, value: int) -> bool:
        return all(self._array[position] for position in self._positions(value))

    def insert(self, value: int) -> bool:
        """Insert ``value``; return ``True`` if it was (probably) new."""

        positions = self._positions(value)
        new = not all(self._array[position] for position in positions)
        for position in positions:
            self._array[position] = 1
        if new:
            self.inserted += 1
        return new

    def clear(self) -> None:
        self._array = bytearray(self.bits)
        self.inserted = 0

    def false_positive_rate(self) -> float:
        """Theoretical false-positive probability at the current load."""

        if self.inserted == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.hashes * self.inserted / self.bits)
        return fill**self.hashes


@dataclass
class BloomSizerStats:
    observations: int = 0
    unique_addresses: int = 0
    windows: int = 0
    grow_decisions: int = 0
    shrink_decisions: int = 0


class BloomPartitionSizer:
    """Chooses how many L3 ways to reserve for the Markov table.

    Parameters
    ----------
    entries_per_way:
        Markov entries that fit in one reserved way (sets × entries/line).
    max_ways:
        Upper bound on the partition (8 of 16 ways in the paper).
    window:
        Number of prefetcher training accesses per sizing window (the paper
        uses a 30M-instruction window; scaled runs use a few thousand).
    bias:
        Multiplier applied to the unique-address estimate before converting
        it to ways; 1.0 for the Triage baseline, 1.5 for Triangel-Bloom
        (section 4.7).
    bloom_bits / bloom_hashes:
        Filter dimensions.
    """

    def __init__(
        self,
        entries_per_way: int,
        max_ways: int = 8,
        window: int = 4096,
        bias: float = 1.0,
        bloom_bits: int = 1 << 14,
        bloom_hashes: int = 4,
    ) -> None:
        if entries_per_way <= 0:
            raise ValueError("entries_per_way must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.entries_per_way = entries_per_way
        self.max_ways = max_ways
        self.window = window
        self.bias = bias
        self.filter = BloomFilter(bloom_bits, bloom_hashes)
        self.stats = BloomSizerStats()
        self._accesses_in_window = 0
        self._unique_in_window = 0
        self._current_ways = 0

    @property
    def current_ways(self) -> int:
        return self._current_ways

    def required_ways(self) -> int:
        """Ways needed to hold the unique addresses seen this window."""

        target_entries = self._unique_in_window * self.bias
        return min(self.max_ways, math.ceil(target_entries / self.entries_per_way))

    def observe(self, line_address: int) -> int | None:
        """Feed one training access; return a new way count when it changes.

        Growth happens immediately when the estimate requires more ways
        (matching "the target size of the partition is increased to fit it");
        shrinking only happens at window boundaries, when the filter resets.
        """

        self.stats.observations += 1
        self._accesses_in_window += 1
        if self.filter.insert(line_address):
            self._unique_in_window += 1
            self.stats.unique_addresses += 1

        decision: int | None = None
        required = self.required_ways()
        if required > self._current_ways:
            self._current_ways = required
            self.stats.grow_decisions += 1
            decision = required

        if self._accesses_in_window >= self.window:
            self.stats.windows += 1
            if required < self._current_ways:
                self._current_ways = required
                self.stats.shrink_decisions += 1
                decision = required
            self.filter.clear()
            self._accesses_in_window = 0
            self._unique_in_window = 0
        return decision
