"""The upper-bits lookup table used by Triage's 32-bit metadata format.

To squeeze two addresses into 32 bits, Triage stores the prefetch target as
an 11-bit offset plus a 10-bit index into a (presumably) 1024-entry lookup
table holding the remaining upper address bits (paper section 3.1,
figure 2b).  Finding the index for a given upper-bits value requires a
*reverse* lookup, so the structure must support cache-like indexing; the
paper finds a 16-way set-associative organisation performs the same as fully
associative (section 6.5, figure 18).

The crucial — and problematic — property is that a Markov-table entry only
stores the *index*.  If the lookup-table slot is later re-used for a
different upper-bits value, every Markov entry still pointing at that slot
silently reconstructs a wrong address: "the lookup table (accessed only via
index) returns addresses the program may never have accessed" (section 6.5).
This class reproduces that behaviour exactly, which is what drives the
accuracy collapse in figures 18/19.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.hashing import mix64


@dataclass
class LookupTableStats:
    lookups: int = 0
    reverse_hits: int = 0
    inserts: int = 0
    replacements: int = 0
    stale_decodes: int = 0


@dataclass(slots=True)
class _LutEntry:
    valid: bool = False
    value: int = 0
    generation: int = 0
    last_use: int = 0


class LookupTable:
    """Set-associative table mapping small indices to upper address bits.

    Parameters
    ----------
    entries:
        Total number of slots (1024 in the paper; scaled configurations use
        fewer so that the same capacity pressure appears on short traces).
    assoc:
        Associativity of the reverse lookup.  ``assoc == entries`` gives the
        fully-associative variant studied in figure 18.
    """

    def __init__(self, entries: int = 1024, assoc: int = 16) -> None:
        if entries <= 0 or assoc <= 0:
            raise ValueError("entries and assoc must be positive")
        if entries % assoc != 0:
            raise ValueError(f"entries ({entries}) must be a multiple of assoc ({assoc})")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._slots = [_LutEntry() for _ in range(entries)]
        self._clock = 0
        self.stats = LookupTableStats()

    # -- indexing helpers ----------------------------------------------------
    def _set_for_value(self, value: int) -> int:
        return mix64(value) % self.num_sets

    def _ways_of_set(self, set_index: int) -> range:
        base = set_index * self.assoc
        return range(base, base + self.assoc)

    # -- operations ------------------------------------------------------------
    def find_index(self, value: int) -> int | None:
        """Reverse lookup: return the slot currently mapping to ``value``."""

        self.stats.lookups += 1
        self._clock += 1
        for slot_index in self._ways_of_set(self._set_for_value(value)):
            slot = self._slots[slot_index]
            if slot.valid and slot.value == value:
                slot.last_use = self._clock
                self.stats.reverse_hits += 1
                return slot_index
        return None

    def insert(self, value: int) -> tuple[int, int]:
        """Map ``value`` to a slot, reusing an existing mapping when present.

        Returns ``(slot_index, generation)``.  The generation increments every
        time a slot's value changes, which lets callers (and tests) detect
        stale decodes explicitly; hardware has no such tag, which is exactly
        why stale decodes turn into wrong prefetches.
        """

        existing = self.find_index(value)
        if existing is not None:
            return existing, self._slots[existing].generation
        set_index = self._set_for_value(value)
        ways = list(self._ways_of_set(set_index))
        victim_index = None
        for slot_index in ways:
            if not self._slots[slot_index].valid:
                victim_index = slot_index
                break
        if victim_index is None:
            victim_index = min(ways, key=lambda idx: self._slots[idx].last_use)
            self.stats.replacements += 1
        slot = self._slots[victim_index]
        slot.valid = True
        slot.value = value
        slot.generation += 1
        slot.last_use = self._clock
        self.stats.inserts += 1
        return victim_index, slot.generation

    def value_at(self, slot_index: int, expected_generation: int | None = None) -> int | None:
        """Return the value currently stored at ``slot_index``.

        This is what the hardware does when reconstructing a prefetch target:
        it has no way to know the slot was re-used.  When
        ``expected_generation`` is provided and no longer matches, the decode
        is counted as stale (for figure 19's accuracy accounting) but the
        *current* — wrong — value is still returned, as in hardware.
        """

        if not 0 <= slot_index < self.entries:
            raise IndexError(f"slot index {slot_index} outside [0, {self.entries})")
        slot = self._slots[slot_index]
        if not slot.valid:
            return None
        if expected_generation is not None and slot.generation != expected_generation:
            self.stats.stale_decodes += 1
        return slot.value

    def occupancy(self) -> int:
        """Number of valid slots (test/diagnostic helper)."""

        return sum(1 for slot in self._slots if slot.valid)
