"""The Markov history table stored in the L3's metadata partition.

Both Triage and Triangel record temporally correlated (lookup address →
prefetch target) pairs in a Markov table [Joseph & Grunwald, ISCA'97] packed
into cache lines of a reserved partition of the L3 (paper sections 2, 3.2,
4.3).  This module models that table at the organisation the paper settles
on after fixing Triage's inconsistencies:

* the *cache set* is chosen by the lookup address's index bits, exactly as a
  normal L3 lookup would;
* the *sub-set* (which of the partition's ways holds the entry) is the
  10-bit hashed tag modulo the current number of partition ways
  (section 3.2), so only a single cache line needs to be read per lookup;
* each line holds ``entries_per_line`` independent entries (16 for the
  32-bit formats, 12 for Triangel's 42-bit format), replaced by a
  configurable policy (HawkEye for Triage, SRRIP for Triangel, LRU for the
  replacement study);
* when the partition is resized the sub-set mapping changes, so a set is
  *rearranged* the first time it is touched under the new indexing policy —
  entries that no longer fit are dropped (section 3.2);
* one confidence bit per entry controls same-index replacement: an existing
  target is only replaced when its confidence bit is clear, and the bit is
  set when training confirms the existing target (section 3.4).

Every lookup or update of this table costs an L3 access (25 cycles in the
paper's setup); that charging is done by the owning prefetcher so that the
Metadata Reuse Buffer can elide it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address import CACHE_LINE_BITS
from repro.memory.replacement import ReplacementPolicy, make_replacement_policy
from repro.triage.metadata import EncodedTarget, MetadataFormat
from repro.utils.hashing import fold_hash


@dataclass
class MarkovStats:
    lookups: int = 0
    hits: int = 0
    trains: int = 0
    inserts: int = 0
    target_replacements: int = 0
    replacements_blocked_by_confidence: int = 0
    confidence_promotions: int = 0
    evictions: int = 0
    rearrangements: int = 0
    entries_dropped_on_rearrange: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(slots=True)
class MarkovEntry:
    valid: bool = False
    tag: int = 0
    target: EncodedTarget | None = None
    confidence: bool = False
    pc: int | None = None


@dataclass(slots=True)
class TrainOutcome:
    """What a single training event did to the table."""

    action: str  # "inserted" | "replaced" | "confirmed" | "blocked" | "unchanged" | "dropped"
    evicted_tag: int | None = None


class MarkovTable:
    """The partition-resident Markov table shared by Triage and Triangel."""

    def __init__(
        self,
        l3_sets: int,
        max_ways: int,
        metadata_format: MetadataFormat,
        tag_bits: int = 10,
        replacement: str = "lru",
        initial_ways: int = 0,
    ) -> None:
        if l3_sets <= 0 or max_ways <= 0:
            raise ValueError("l3_sets and max_ways must be positive")
        self.l3_sets = l3_sets
        self.max_ways = max_ways
        self.format = metadata_format
        self.tag_bits = tag_bits
        self.entries_per_line = metadata_format.entries_per_line
        self._lines: list[list[list[MarkovEntry]]] = [
            [
                [MarkovEntry() for _ in range(self.entries_per_line)]
                for _ in range(max_ways)
            ]
            for _ in range(l3_sets)
        ]
        # One replacement-policy "set" per (cache set, way) line.
        self._policy: ReplacementPolicy = make_replacement_policy(
            replacement, l3_sets * max_ways, self.entries_per_line
        )
        self._indexing_ways = [initial_ways] * l3_sets
        self._ways = initial_ways
        self.stats = MarkovStats()

    # -- geometry -------------------------------------------------------------
    @property
    def ways(self) -> int:
        """Number of L3 ways currently reserved for the table."""

        return self._ways

    @property
    def capacity(self) -> int:
        """Entries storable at the current partition size."""

        return self.l3_sets * self._ways * self.entries_per_line

    @property
    def max_capacity(self) -> int:
        """Entries storable at the maximum partition size (the paper's MaxSize)."""

        return self.l3_sets * self.max_ways * self.entries_per_line

    def entries_per_way(self) -> int:
        return self.l3_sets * self.entries_per_line

    def set_ways(self, ways: int) -> None:
        """Resize the partition; sets are rearranged lazily on next touch."""

        if not 0 <= ways <= self.max_ways:
            raise ValueError(f"ways {ways} outside [0, {self.max_ways}]")
        self._ways = ways

    # -- address decomposition --------------------------------------------------
    def locate(self, line_address: int) -> tuple[int, int]:
        """Return ``(set_index, hashed_tag)`` for a line-aligned address."""

        line_number = line_address >> CACHE_LINE_BITS
        set_index = line_number % self.l3_sets
        tag = fold_hash(line_number // self.l3_sets, self.tag_bits)
        return set_index, tag

    def _sub_set(self, tag: int) -> int:
        return tag % self._ways

    def _policy_set(self, set_index: int, way: int) -> int:
        return set_index * self.max_ways + way

    # -- rearrangement on resize ----------------------------------------------
    def _maybe_rearrange(self, set_index: int) -> None:
        if self._indexing_ways[set_index] == self._ways:
            return
        if not any(
            entry.valid for line in self._lines[set_index] for entry in line
        ):
            # Nothing to move: adopt the new indexing policy silently.
            self._indexing_ways[set_index] = self._ways
            return
        self.stats.rearrangements += 1
        survivors: list[MarkovEntry] = []
        for way in range(self.max_ways):
            for entry in self._lines[set_index][way]:
                if entry.valid:
                    survivors.append(
                        MarkovEntry(
                            valid=True,
                            tag=entry.tag,
                            target=entry.target,
                            confidence=entry.confidence,
                            pc=entry.pc,
                        )
                    )
                entry.valid = False
                entry.target = None
                entry.confidence = False
                entry.pc = None
        self._indexing_ways[set_index] = self._ways
        if self._ways == 0:
            self.stats.entries_dropped_on_rearrange += len(survivors)
            return
        for entry in survivors:
            placed = self._place_rearranged(set_index, entry)
            if not placed:
                self.stats.entries_dropped_on_rearrange += 1

    def _place_rearranged(self, set_index: int, entry: MarkovEntry) -> bool:
        way = self._sub_set(entry.tag)
        line = self._lines[set_index][way]
        for slot, existing in enumerate(line):
            if not existing.valid:
                line[slot] = entry
                self._policy.on_fill(self._policy_set(set_index, way), slot, entry.pc)
                return True
        return False

    # -- lookup -------------------------------------------------------------------
    def lookup(self, line_address: int) -> int | None:
        """Return the decoded prefetch target trained for ``line_address``."""

        self.stats.lookups += 1
        if self._ways == 0:
            return None
        set_index, tag = self.locate(line_address)
        self._maybe_rearrange(set_index)
        way = self._sub_set(tag)
        line = self._lines[set_index][way]
        policy_set = self._policy_set(set_index, way)
        for slot, entry in enumerate(line):
            if entry.valid and entry.tag == tag:
                self.stats.hits += 1
                self._policy.on_hit(policy_set, slot, entry.pc)
                if entry.target is None:
                    return None
                return self.format.decode(entry.target)
        return None

    def peek(self, line_address: int) -> MarkovEntry | None:
        """Return the entry for ``line_address`` without touching any state."""

        if self._ways == 0:
            return None
        set_index, tag = self.locate(line_address)
        if self._indexing_ways[set_index] != self._ways:
            return None
        line = self._lines[set_index][self._sub_set(tag)]
        for entry in line:
            if entry.valid and entry.tag == tag:
                return entry
        return None

    # -- training -------------------------------------------------------------------
    def train(
        self, index_line_address: int, target_line_address: int, pc: int | None = None
    ) -> TrainOutcome:
        """Record that ``target`` followed ``index`` in the miss stream.

        Implements the confidence-bit behaviour of section 3.4: a stored
        target is only replaced when its confidence bit is clear; re-training
        with the same target sets the bit.
        """

        self.stats.trains += 1
        if self._ways == 0:
            return TrainOutcome(action="dropped")
        set_index, tag = self.locate(index_line_address)
        self._maybe_rearrange(set_index)
        way = self._sub_set(tag)
        line = self._lines[set_index][way]
        policy_set = self._policy_set(set_index, way)

        for slot, entry in enumerate(line):
            if entry.valid and entry.tag == tag:
                existing_target = (
                    self.format.decode(entry.target) if entry.target is not None else None
                )
                self._policy.on_hit(policy_set, slot, pc)
                if existing_target == target_line_address:
                    if not entry.confidence:
                        entry.confidence = True
                        self.stats.confidence_promotions += 1
                        return TrainOutcome(action="confirmed")
                    return TrainOutcome(action="unchanged")
                if entry.confidence:
                    # Keep the confident target, but a contradiction clears
                    # the bit so persistent change eventually wins.
                    entry.confidence = False
                    self.stats.replacements_blocked_by_confidence += 1
                    return TrainOutcome(action="blocked")
                entry.target = self.format.encode(target_line_address)
                entry.pc = pc
                self.stats.target_replacements += 1
                return TrainOutcome(action="replaced")

        # No entry for this index yet: insert, evicting if the line is full.
        victim_slot = None
        for slot, entry in enumerate(line):
            if not entry.valid:
                victim_slot = slot
                break
        evicted_tag = None
        if victim_slot is None:
            victim_slot = self._policy.victim(
                policy_set, list(range(self.entries_per_line))
            )
            evicted_tag = line[victim_slot].tag
            self.stats.evictions += 1
        entry = line[victim_slot]
        entry.valid = True
        entry.tag = tag
        entry.target = self.format.encode(target_line_address)
        entry.confidence = False
        entry.pc = pc
        self._policy.on_fill(policy_set, victim_slot, pc)
        self.stats.inserts += 1
        return TrainOutcome(action="inserted", evicted_tag=evicted_tag)

    # -- diagnostics ----------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid entries currently stored."""

        count = 0
        for per_set in self._lines:
            for line in per_set:
                for entry in line:
                    if entry.valid:
                        count += 1
        return count
