"""Markov-table target-encoding formats (paper sections 3.1, 4.3 and 6.5).

A Markov-table entry stores a (lookup address, prefetch target) pair inside
the L3's metadata partition.  The lookup address is always represented the
same way — implicitly by the set it indexes plus a 10-bit hashed tag — but
the paper studies several encodings for the *prefetch target*:

``32-bit-LUT-16-way`` (Triage's default)
    An 11-bit offset plus a 10-bit index into the upper-bits lookup table,
    so the whole entry fits in 32 bits and 16 entries pack into a 64-byte
    cache line.  Reconstructed targets go wrong when the LUT slot is reused.
``32-bit-LUT-1024-way``
    The same, but with a fully-associative LUT (figure 18 shows no benefit).
``32-bit-ideal``
    A hypothetical perfect lookup table: same density, never a wrong
    reconstruction.  Not implementable in hardware; included as the upper
    bound the paper plots in figure 18.
``42-bit``
    Triangel's format (section 4.3): the full 31-bit line address is stored
    directly, 12 entries per cache line, no LUT, 128 GB range.
``32-bit-LUT-16-way-10b-offset``
    The default format with one fewer offset bit, modelling doubled physical
    page fragmentation (section 6.5); LUT pressure doubles and accuracy
    collapses (figure 19).

Each format exposes the same ``encode``/``decode`` pair plus the number of
entries that fit per 64-byte line, which sets the Markov table's capacity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.memory.address import CACHE_LINE_BITS
from repro.triage.lookup_table import LookupTable


@dataclass(slots=True)
class EncodedTarget:
    """Opaque encoded form of a prefetch target, stored in a Markov entry."""

    payload: int
    generation: int = 0


class MetadataFormat(ABC):
    """Interface for Markov-table target encodings."""

    #: short name used in configuration and reports
    name: str = "abstract"
    #: number of Markov entries that fit in one 64-byte cache line
    entries_per_line: int = 16
    #: nominal storage per entry, in bits (for sizing reports)
    bits_per_entry: int = 32

    @abstractmethod
    def encode(self, target_line_address: int) -> EncodedTarget:
        """Encode a line-aligned byte address into the stored payload."""

    @abstractmethod
    def decode(self, encoded: EncodedTarget) -> int | None:
        """Reconstruct a line-aligned byte address from the stored payload.

        May return a *different* address than was encoded (LUT staleness) or
        ``None`` when no address can be reconstructed at all.
        """

    def describe(self) -> str:
        return f"{self.name} ({self.bits_per_entry}b/entry, {self.entries_per_line}/line)"


class Lut32Format(MetadataFormat):
    """32-bit entries with an offset + lookup-table-index target encoding.

    Parameters
    ----------
    lookup_table:
        The shared :class:`LookupTable` holding upper address bits.
    offset_bits:
        Number of line-address bits stored explicitly (11 in the paper's
        default, 10 for the fragmentation study).  Everything above them goes
        through the lookup table.
    """

    def __init__(
        self,
        lookup_table: LookupTable | None = None,
        offset_bits: int = 11,
        name: str | None = None,
    ) -> None:
        if offset_bits <= 0:
            raise ValueError("offset_bits must be positive")
        self.lookup_table = lookup_table or LookupTable()
        self.offset_bits = offset_bits
        self.entries_per_line = 16
        self.bits_per_entry = 32
        if name is not None:
            self.name = name
        elif self.lookup_table.assoc >= self.lookup_table.entries:
            self.name = "32-bit-LUT-1024-way"
        elif offset_bits == 11:
            self.name = "32-bit-LUT-16-way"
        else:
            self.name = f"32-bit-LUT-16-way-{offset_bits}b-offset"

    def _split(self, target_line_address: int) -> tuple[int, int]:
        line_number = target_line_address >> CACHE_LINE_BITS
        offset = line_number & ((1 << self.offset_bits) - 1)
        upper = line_number >> self.offset_bits
        return upper, offset

    def encode(self, target_line_address: int) -> EncodedTarget:
        upper, offset = self._split(target_line_address)
        index, generation = self.lookup_table.insert(upper)
        payload = (index << self.offset_bits) | offset
        return EncodedTarget(payload=payload, generation=generation)

    def decode(self, encoded: EncodedTarget) -> int | None:
        offset = encoded.payload & ((1 << self.offset_bits) - 1)
        index = encoded.payload >> self.offset_bits
        upper = self.lookup_table.value_at(index, encoded.generation)
        if upper is None:
            return None
        line_number = (upper << self.offset_bits) | offset
        return line_number << CACHE_LINE_BITS


class Ideal32Format(MetadataFormat):
    """Hypothetical perfect lookup table (figure 18's ``32-bit ideal``).

    Keeps the 32-bit density (16 entries per line) but always reconstructs
    the exact address that was encoded.  The paper includes it purely as an
    upper bound on what LUT compression could achieve.
    """

    name = "32-bit-ideal"
    entries_per_line = 16
    bits_per_entry = 32

    def encode(self, target_line_address: int) -> EncodedTarget:
        return EncodedTarget(payload=target_line_address)

    def decode(self, encoded: EncodedTarget) -> int | None:
        return encoded.payload


class Full42Format(MetadataFormat):
    """Triangel's 42-bit entries: the full line address, no lookup table.

    Section 4.3 / figure 6: the target is the 31-bit line address shifted by
    the 6 cache-line zero bits (128 GB range); together with the 10-bit
    lookup hash and confidence bit an entry is ~42 bits, so 12 entries fit in
    a 64-byte line — 3/4 of the 32-bit format's density, in exchange for
    immunity to physical-frame-locality assumptions.
    """

    name = "42-bit"
    entries_per_line = 12
    bits_per_entry = 42

    def encode(self, target_line_address: int) -> EncodedTarget:
        return EncodedTarget(payload=target_line_address)

    def decode(self, encoded: EncodedTarget) -> int | None:
        return encoded.payload


def make_metadata_format(
    name: str,
    lut_entries: int = 1024,
    lut_assoc: int = 16,
    offset_bits: int = 11,
) -> MetadataFormat:
    """Build one of the named formats from figure 18.

    ``lut_entries``/``lut_assoc``/``offset_bits`` only matter for the LUT
    variants; scaled-down experiments shrink them in proportion to the rest
    of the system so that the same capacity pressure appears on short traces.
    """

    key = name.lower()
    if key in ("42-bit", "42bit", "full", "triangel"):
        return Full42Format()
    if key in ("32-bit-ideal", "ideal"):
        return Ideal32Format()
    if key in ("32-bit-lut-16-way", "lut", "lut-16"):
        return Lut32Format(LookupTable(lut_entries, lut_assoc), offset_bits)
    if key in ("32-bit-lut-1024-way", "lut-full", "lut-fully-associative"):
        return Lut32Format(
            LookupTable(lut_entries, lut_entries), offset_bits, name="32-bit-LUT-1024-way"
        )
    if key in ("32-bit-lut-16-way-10b-offset", "lut-10b"):
        return Lut32Format(LookupTable(lut_entries, lut_assoc), offset_bits - 1)
    raise ValueError(
        f"unknown metadata format {name!r}; expected one of: 42-bit, 32-bit-ideal, "
        "32-bit-LUT-16-way, 32-bit-LUT-1024-way, 32-bit-LUT-16-way-10b-offset"
    )
