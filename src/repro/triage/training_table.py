"""Triage's PC-indexed training table (paper section 2, figure 1).

The training table remembers, for each PC, the previous L2 miss or tagged
prefetch hit observed at that PC.  When the next one arrives, the pair
(previous, current) is written into the Markov table.  Triage's table stores
a single previous address; Triangel extends the entry with a second history
slot and several confidence counters (:mod:`repro.core.training_table`),
which is why this class keeps its shift register length configurable.

The table is set-associative and identifies entries with a hashed PC tag,
like Triage-ISR's hashed tags (paper section 4.2's PC-Tag-# field).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.hashing import fold_hash, mix64


@dataclass
class TrainingTableStats:
    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    evictions: int = 0


@dataclass(slots=True)
class TriageTrainingEntry:
    """Per-PC training state: a short shift register of previous addresses."""

    valid: bool = False
    pc_tag: int = 0
    last_addresses: list = field(default_factory=list)
    last_use: int = 0

    def push(self, line_address: int, depth: int) -> None:
        """Shift ``line_address`` into the history, keeping ``depth`` entries."""

        self.last_addresses.insert(0, line_address)
        del self.last_addresses[depth:]

    def history(self, lookahead: int) -> int | None:
        """Return the address ``lookahead`` positions back, if recorded.

        ``lookahead=1`` is the previous miss (Triage's behaviour);
        ``lookahead=2`` is the one before that (Triangel's aggressive mode).
        """

        index = lookahead - 1
        if index < len(self.last_addresses):
            return self.last_addresses[index]
        return None


class TriageTrainingTable:
    """Set-associative, PC-indexed table of per-PC miss history."""

    def __init__(
        self,
        entries: int = 512,
        assoc: int = 4,
        pc_tag_bits: int = 10,
        history_depth: int = 1,
    ) -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc != 0:
            raise ValueError("entries must be a positive multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.pc_tag_bits = pc_tag_bits
        self.history_depth = history_depth
        self._sets = [
            [TriageTrainingEntry() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.stats = TrainingTableStats()

    def _locate(self, pc: int) -> tuple[int, int]:
        return mix64(pc) % self.num_sets, fold_hash(pc, self.pc_tag_bits)

    def find(self, pc: int) -> TriageTrainingEntry | None:
        """Return the entry for ``pc`` if present (updates recency)."""

        self.stats.lookups += 1
        self._clock += 1
        set_index, tag = self._locate(pc)
        for entry in self._sets[set_index]:
            if entry.valid and entry.pc_tag == tag:
                entry.last_use = self._clock
                self.stats.hits += 1
                return entry
        return None

    def find_or_allocate(self, pc: int) -> tuple[TriageTrainingEntry, bool]:
        """Return ``(entry, allocated)``; evicts the LRU entry when needed."""

        entry = self.find(pc)
        if entry is not None:
            return entry, False
        set_index, tag = self._locate(pc)
        ways = self._sets[set_index]
        victim = None
        for candidate in ways:
            if not candidate.valid:
                victim = candidate
                break
        if victim is None:
            victim = min(ways, key=lambda candidate: candidate.last_use)
            self.stats.evictions += 1
        victim.valid = True
        victim.pc_tag = tag
        victim.last_addresses = []
        victim.last_use = self._clock
        self.stats.allocations += 1
        return victim, True
