"""The Triage temporal prefetcher (fixed baseline, paper sections 2-3).

Operation on every L2 demand miss or tagged prefetch hit (figure 1):

1. the PC indexes the training table to retrieve the previous miss seen at
   that PC;
2. the (previous, current) pair trains the Markov table held in the L3
   partition;
3. the current address is looked up in the Markov table and, if a target is
   found, a prefetch into the L2 is issued; with degree > 1 the lookup is
   chained through successive targets, each chained step costing another
   Markov (L3) access and another 25 cycles of lookup latency;
4. the Bloom-filter sizer decides how many L3 ways the partition should
   occupy.

The evaluation uses three Triage configurations: the default degree-1
``Triage``, the aggressive ``Triage-Deg4``, and ``Triage-Deg4-Look2`` which
additionally borrows Triangel's lookahead-2 training (section 6.1) to
isolate the benefit of aggression control from the other improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import DemandResult, MemoryHierarchy
from repro.prefetch.base import DecisionBuffer, Prefetcher
from repro.triage.bloom import BloomPartitionSizer
from repro.triage.markov_table import MarkovTable
from repro.triage.metadata import make_metadata_format
from repro.triage.training_table import TriageTrainingTable


@dataclass
class TriageConfig:
    """Configuration of the Triage baseline.

    The defaults correspond to the paper's ``Triage`` bars (degree 1,
    lookahead 1, 32-bit LUT metadata, HawkEye Markov replacement, Bloom
    sizing); the evaluation's other bars are produced by overriding
    ``degree``, ``lookahead`` and ``metadata_format``.
    """

    degree: int = 1
    lookahead: int = 1
    metadata_format: str = "32-bit-LUT-16-way"
    markov_replacement: str = "hawkeye"
    max_markov_ways: int = 8
    markov_tag_bits: int = 10
    training_entries: int = 512
    training_assoc: int = 4
    markov_latency: float = 25.0
    # Lookup-table dimensions for the 32-bit formats; scaled experiments
    # shrink these together with everything else.
    lut_entries: int = 1024
    lut_assoc: int = 16
    lut_offset_bits: int = 11
    # Bloom-filter sizer parameters.
    bloom_window: int = 4096
    bloom_bias: float = 1.0
    bloom_bits: int = 1 << 14
    bloom_hashes: int = 4
    # Cap on the Markov capacity expressed in entries; ``None`` means the
    # partition geometry is the only limit.  Used by the replacement study
    # (section 3.3's artificially limited 256 KiB experiment).
    max_entries_override: int | None = None

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise ValueError("degree must be positive")
        if self.lookahead not in (1, 2):
            raise ValueError("lookahead must be 1 or 2")


class TriagePrefetcher(Prefetcher):
    """The fixed Triage baseline prefetcher."""

    # observe_into's first statement returns, touching nothing, unless the
    # access missed the L2 or first-used a prefetched L2 line.
    observes_hits = False

    def __init__(self, config: TriageConfig | None = None, name: str | None = None) -> None:
        self.config = config or TriageConfig()
        if name is None:
            name = f"triage-deg{self.config.degree}"
            if self.config.lookahead > 1:
                name += f"-look{self.config.lookahead}"
        super().__init__(name)
        self.training_table = TriageTrainingTable(
            entries=self.config.training_entries,
            assoc=self.config.training_assoc,
            history_depth=self.config.lookahead,
        )
        self.markov: MarkovTable | None = None
        self.sizer: BloomPartitionSizer | None = None

    # -- wiring ---------------------------------------------------------------
    def attach(self, hierarchy: MemoryHierarchy) -> None:
        super().attach(hierarchy)
        metadata = make_metadata_format(
            self.config.metadata_format,
            lut_entries=self.config.lut_entries,
            lut_assoc=self.config.lut_assoc,
            offset_bits=self.config.lut_offset_bits,
        )
        l3 = hierarchy.l3
        self.markov = MarkovTable(
            l3_sets=l3.num_sets,
            max_ways=min(self.config.max_markov_ways, l3.max_reserved_ways),
            metadata_format=metadata,
            tag_bits=self.config.markov_tag_bits,
            replacement=self.config.markov_replacement,
        )
        self.sizer = BloomPartitionSizer(
            entries_per_way=self.markov.entries_per_way(),
            max_ways=self.markov.max_ways,
            window=self.config.bloom_window,
            bias=self.config.bloom_bias,
            bloom_bits=self.config.bloom_bits,
            bloom_hashes=self.config.bloom_hashes,
        )

    # -- main entry point --------------------------------------------------------
    def observe_into(
        self,
        pc: int,
        line_addr: int,
        result: DemandResult,
        now: float,
        sink: DecisionBuffer,
    ) -> None:
        if not (result.l2_miss or result.l2_prefetch_first_use):
            return
        if self.markov is None or self.sizer is None or self.hierarchy is None:
            raise RuntimeError("TriagePrefetcher must be attached to a hierarchy first")

        self.stats.triggers += 1
        self._resize_partition(line_addr)
        self._train(pc, line_addr)
        self._generate_prefetches(line_addr, sink)

    # -- internals ------------------------------------------------------------------
    def _resize_partition(self, line_addr: int) -> None:
        decision = self.sizer.observe(line_addr)
        if decision is not None and decision != self.markov.ways:
            self.markov.set_ways(decision)
            self.hierarchy.set_markov_ways(decision)

    def _train(self, pc: int, line_addr: int) -> None:
        entry, _allocated = self.training_table.find_or_allocate(pc)
        index_address = entry.history(self.config.lookahead)
        if index_address is not None and index_address != line_addr:
            if not self._capacity_exhausted():
                self.markov.train(index_address, line_addr, pc)
                self.hierarchy.record_markov_access()
                self.stats.markov_updates += 1
        entry.push(line_addr, self.config.lookahead)
        self.stats.training_events += 1

    def _capacity_exhausted(self) -> bool:
        limit = self.config.max_entries_override
        if limit is None:
            return False
        return self.markov.occupancy() >= limit

    def _generate_prefetches(self, line_addr: int, sink: DecisionBuffer) -> None:
        current = line_addr
        accumulated_latency = 0.0
        for _step in range(self.config.degree):
            accumulated_latency += self.config.markov_latency
            target = self.markov.lookup(current)
            self.hierarchy.record_markov_access()
            self.stats.markov_lookups += 1
            if target is None:
                break
            if target != current and not self._target_resident(target):
                sink.emit(target, "l2", accumulated_latency, "markov")
                self.stats.prefetches_issued += 1
            else:
                self.stats.prefetches_dropped_resident += 1
            current = target
