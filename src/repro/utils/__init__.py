"""Shared low-level utilities used across the reproduction.

The prefetchers described in the Triangel paper rely on a handful of small
hardware-friendly primitives: XOR-folded tag hashes, linear-congruential
pseudo-random sampling (section 4.4.3 of the paper explicitly notes that
"simple methods such as linear congruential are fine"), and saturating
counters of various widths.  This package provides software models of those
primitives so that every structure in :mod:`repro.core` and
:mod:`repro.triage` is built from the same vocabulary the paper uses.
"""

from repro.utils.counters import SaturatingCounter
from repro.utils.hashing import (
    LinearCongruentialSampler,
    fold_hash,
    mix64,
    tag_hash,
)

__all__ = [
    "SaturatingCounter",
    "LinearCongruentialSampler",
    "fold_hash",
    "mix64",
    "tag_hash",
]
