"""Saturating counters.

Nearly every adaptive decision in Triage and Triangel is made with small
saturating counters: the Markov-table confidence bit (1 bit), Triangel's
ReuseConf (4 bits), BasePatternConf / HighPatternConf (4 bits each, with
asymmetric increment/decrement factors — section 4.4.2), and the per-PC
SampleRate (4 bits, section 4.4.3).  :class:`SaturatingCounter` models all of
them.
"""

from __future__ import annotations


class SaturatingCounter:
    """A bounded counter that saturates at both ends.

    Parameters
    ----------
    bits:
        Width of the counter; the maximum value is ``2**bits - 1``.
    initial:
        Starting value (also used by :meth:`reset`).  Triangel initialises
        its 4-bit confidence counters to 8, i.e. the mid-point.
    increment:
        Amount added by :meth:`increase`.  BasePatternConf uses +1.
    decrement:
        Amount subtracted by :meth:`decrease`.  BasePatternConf uses -2 so it
        only stays high when prefetches are accurate more than 2/3 of the
        time; HighPatternConf uses -5 for a 5/6 threshold (section 4.4.2).
    """

    __slots__ = ("bits", "maximum", "initial", "increment", "decrement", "_value")

    def __init__(
        self,
        bits: int = 4,
        initial: int = 8,
        increment: int = 1,
        decrement: int = 1,
    ) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} outside [0, {self.maximum}] for {bits}-bit counter"
            )
        if increment <= 0 or decrement <= 0:
            raise ValueError("increment and decrement must be positive")
        self.initial = initial
        self.increment = increment
        self.decrement = decrement
        self._value = initial

    @property
    def value(self) -> int:
        """Current counter value."""

        return self._value

    @property
    def is_saturated(self) -> bool:
        """True when the counter has reached its maximum value."""

        return self._value == self.maximum

    def increase(self, amount: int | None = None) -> int:
        """Add ``amount`` (default: the configured increment), saturating."""

        step = self.increment if amount is None else amount
        self._value = min(self.maximum, self._value + step)
        return self._value

    def decrease(self, amount: int | None = None) -> int:
        """Subtract ``amount`` (default: the configured decrement), saturating at zero."""

        step = self.decrement if amount is None else amount
        self._value = max(0, self._value - step)
        return self._value

    def reset(self) -> None:
        """Return the counter to its initial value."""

        self._value = self.initial

    def set(self, value: int) -> None:
        """Force the counter to ``value`` (clamped to the representable range)."""

        self._value = max(0, min(self.maximum, value))

    def above_initial(self) -> bool:
        """True when strictly above the initial (mid-point) value.

        Triangel gates both metadata storage and prefetch issue on counters
        being *above* their initial value (section 4.5): "When ReuseConf or
        BasePatternConf are at their initial value (8, or half way) or below,
        we neither issue prefetches nor store entries in the Markov table".
        """

        return self._value > self.initial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SaturatingCounter(value={self._value}, bits={self.bits}, "
            f"+{self.increment}/-{self.decrement})"
        )
