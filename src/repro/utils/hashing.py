"""Hardware-style hashing and sampling primitives.

The Markov table and the training table in both Triage and Triangel identify
entries by *hashed tags* rather than full addresses (paper sections 3.1 and
4.2): the upper bits of an address (or PC) are XOR-folded down to a small
number of bits.  The History Sampler inserts entries probabilistically using
a cheap pseudo-random source; the paper notes a linear congruential generator
is sufficient (section 4.4.3, footnote 6).

These helpers are deliberately dependency-free and deterministic so that
every simulation run is exactly reproducible.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """Mix the bits of ``value`` with a splitmix64-style finalizer.

    This is used wherever the model needs a well-distributed hash of an
    address (Bloom filters, sampled-set selection).  It is *not* meant to
    model a specific hardware circuit; hardware would use a simpler XOR tree,
    but the statistical behaviour (uniform spread of indices) is what matters
    for the simulation.
    """

    value &= _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def fold_hash(value: int, bits: int) -> int:
    """XOR-fold ``value`` down to ``bits`` bits.

    This mirrors the tag-hash generation used by Triage-ISR and Triangel:
    the address is split into ``bits``-wide chunks which are XORed together.
    Folding (rather than truncating) means that high-order address bits still
    influence the tag, which is what lets a 10-bit hashed tag distinguish
    most addresses that share a cache index (paper section 3.1, footnote 3).

    Parameters
    ----------
    value:
        Non-negative integer to fold.
    bits:
        Width of the result in bits; must be positive.
    """

    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


def tag_hash(address: int, bits: int = 10) -> int:
    """Return the hashed tag used to identify Markov/training entries.

    The paper increases the hashed-tag size to 10 bits (from Triage-ISR's 7)
    because the collision probability of a 7-bit tag over the 128 candidate
    entries of a set is ~0.63 (section 3.1, footnote 3).  The default here is
    therefore 10 bits.
    """

    return fold_hash(address, bits)


class LinearCongruentialSampler:
    """Deterministic pseudo-random source for sampling decisions.

    Models the cheap LCG the paper says is good enough for the History
    Sampler's probabilistic insertion (section 4.4.3).  The generator
    produces values in ``[0, 1)`` via :meth:`uniform` and supports the
    "sample with probability p" idiom through :meth:`sample`.
    """

    _A = 6364136223846793005
    _C = 1442695040888963407

    def __init__(self, seed: int = 0x5EED) -> None:
        self._state = mix64(seed)

    def next_raw(self) -> int:
        """Advance the generator and return the raw 64-bit state."""

        self._state = (self._state * self._A + self._C) & _MASK64
        return self._state

    def uniform(self) -> float:
        """Return a deterministic pseudo-uniform value in ``[0, 1)``."""

        return (self.next_raw() >> 11) / float(1 << 53)

    def sample(self, probability: float) -> bool:
        """Return ``True`` with the given probability.

        Probabilities outside ``[0, 1]`` are clamped, matching the hardware
        behaviour where a probability register simply saturates.
        """

        if probability <= 0.0:
            # Still advance the generator so call sites remain in lock-step
            # regardless of the probability value; this keeps experiments
            # comparable when only thresholds change.
            self.next_raw()
            return False
        if probability >= 1.0:
            self.next_raw()
            return True
        return self.uniform() < probability

    def randint(self, upper: int) -> int:
        """Return a deterministic pseudo-random integer in ``[0, upper)``."""

        if upper <= 0:
            raise ValueError(f"upper must be positive, got {upper}")
        return self.next_raw() % upper
