"""Workload generators: the traces every experiment runs on.

The paper evaluates on the seven most irregular, memory-intensive SPEC
CPU2006 workloads (Xalancbmk, Omnetpp, Mcf, GCC-166, Astar, Soplex-3500 and
Sphinx3), multiprogrammed pairs of them, and Graph500 search as an
adversarial workload.  SPEC binaries and gem5 checkpoints are not available
to this reproduction, so :mod:`repro.workloads.spec` generates synthetic
traces that recreate each workload's *temporal-prefetching-relevant*
characteristics (working-set size relative to the Markov capacity, exactness
of repetition, footprint fragmentation, stride content), and
:mod:`repro.workloads.graph500` generates a real breadth-first search over a
synthetic scale-free graph.  Micro-workloads used by tests and examples live
in :mod:`repro.workloads.micro`.
"""

from repro.workloads.graph500 import generate_graph500_trace
from repro.workloads.micro import (
    generate_pointer_chase_trace,
    generate_random_trace,
    generate_sequential_trace,
)
from repro.workloads.registry import (
    SPEC_WORKLOADS,
    available_workloads,
    generate_workload,
)
from repro.workloads.spec import SPEC_SPECS, generate_spec_trace
from repro.workloads.synthetic import (
    StreamSpec,
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "Trace",
    "StreamSpec",
    "SyntheticWorkloadSpec",
    "generate_synthetic_trace",
    "SPEC_SPECS",
    "generate_spec_trace",
    "generate_graph500_trace",
    "generate_pointer_chase_trace",
    "generate_sequential_trace",
    "generate_random_trace",
    "SPEC_WORKLOADS",
    "available_workloads",
    "generate_workload",
]
