"""Graph500-search-like adversarial workload (paper section 6.4).

The paper stresses the prefetchers with Graph500 breadth-first search on two
inputs: ``s16 e10`` (a ~7 MiB graph that *fits* the Markov table's maximum
capacity but shows too little repetition for temporal prefetching to pay
off) and ``s21 e10`` (a ~700 MiB graph whose footprint dwarfs it).  Neither
has useful temporal correlation, so a well-behaved prefetcher should decline
to grow its metadata partition — which Triage cannot do, costing it both L3
hits and DRAM traffic (figure 17).

This module builds a synthetic scale-free graph in CSR (compressed sparse
row) form and emits the memory-access stream of an actual BFS over it:
reads of the row-offset array, sequential reads of each vertex's edge list,
and scattered reads/writes of the visited array.  Because BFS visits every
edge once per traversal and traversal order depends on the root, the stream
has exactly the "cache- and memory-intensive but not temporally correlated"
character the paper relies on.  Graph sizes are expressed relative to the
scaled system: the ``s16``-like input fits the scaled Markov capacity, the
``s21``-like input exceeds it several times over.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.workloads.trace import Trace

#: Byte sizes of the graph's arrays (per element).
_OFFSET_BYTES = 8
_EDGE_BYTES = 8
_VISITED_BYTES = 4

#: Virtual base addresses of the three arrays.
_OFFSETS_BASE = 0x4000_0000
_EDGES_BASE = 0x5000_0000
_VISITED_BASE = 0x6000_0000

#: PCs of the BFS loop's three access sites.
_PC_OFFSETS = 0x400900
_PC_EDGES = 0x400910
_PC_VISITED = 0x400920


@dataclass
class GraphSpec:
    """Parameters of the synthetic scale-free graph."""

    name: str
    vertices: int
    edge_factor: int = 8
    roots: int = 2
    skew: float = 2.0
    seed: int = 0x6789


#: The two inputs used in figure 17, scaled to the simulation system.
GRAPH500_SPECS: dict[str, GraphSpec] = {
    "graph500_s16": GraphSpec(name="graph500_s16", vertices=3_000, edge_factor=8, roots=3),
    "graph500_s21": GraphSpec(name="graph500_s21", vertices=16_000, edge_factor=8, roots=2),
}


def _build_graph(spec: GraphSpec) -> tuple[list[int], list[int]]:
    """Build a CSR adjacency structure with a power-law degree distribution."""

    rng = random.Random(spec.seed)
    edges_per_vertex: list[list[int]] = [[] for _ in range(spec.vertices)]
    total_edges = spec.vertices * spec.edge_factor
    for _ in range(total_edges):
        # Skewed endpoint selection gives a scale-free-like degree spread,
        # as the Kronecker generator used by Graph500 does.
        source = int(spec.vertices * rng.random() ** spec.skew)
        destination = rng.randrange(spec.vertices)
        edges_per_vertex[min(source, spec.vertices - 1)].append(destination)
    offsets = [0]
    edges: list[int] = []
    for adjacency in edges_per_vertex:
        edges.extend(adjacency)
        offsets.append(len(edges))
    return offsets, edges


def generate_graph500_trace(
    name: str = "graph500_s16",
    max_accesses: int | None = 45_000,
    seed: int | None = None,
) -> Trace:
    """Emit the memory-access trace of BFS over the named graph input."""

    key = name.lower()
    if key not in GRAPH500_SPECS:
        raise ValueError(
            f"unknown Graph500 input {name!r}; expected one of {sorted(GRAPH500_SPECS)}"
        )
    spec = GRAPH500_SPECS[key]
    if seed is not None:
        spec = GraphSpec(
            name=spec.name,
            vertices=spec.vertices,
            edge_factor=spec.edge_factor,
            roots=spec.roots,
            skew=spec.skew,
            seed=seed,
        )
    offsets, edges = _build_graph(spec)
    rng = random.Random(spec.seed ^ 0x5EAF)

    trace = Trace(name=spec.name)

    def emit(pc: int, address: int, is_write: bool = False) -> bool:
        """Append one access; return False once the trace is full."""

        trace.append_access(pc, address, is_write)
        return max_accesses is None or len(trace) < max_accesses

    done = False
    for _root_index in range(spec.roots):
        if done:
            break
        root = rng.randrange(spec.vertices)
        visited = [False] * spec.vertices
        visited[root] = True
        queue: deque[int] = deque([root])
        while queue and not done:
            vertex = queue.popleft()
            if not emit(_PC_OFFSETS, _OFFSETS_BASE + vertex * _OFFSET_BYTES):
                done = True
                break
            start, stop = offsets[vertex], offsets[vertex + 1]
            for edge_index in range(start, stop):
                if not emit(_PC_EDGES, _EDGES_BASE + edge_index * _EDGE_BYTES):
                    done = True
                    break
                neighbour = edges[edge_index]
                if not emit(
                    _PC_VISITED,
                    _VISITED_BASE + neighbour * _VISITED_BYTES,
                    is_write=not visited[neighbour],
                ):
                    done = True
                    break
                if not visited[neighbour]:
                    visited[neighbour] = True
                    queue.append(neighbour)

    trace.metadata = {
        "generator": "graph500",
        "vertices": spec.vertices,
        "edge_factor": spec.edge_factor,
        "edges": len(edges),
        "roots": spec.roots,
        "seed": spec.seed,
        "footprint_lines": trace.unique_lines(),
    }
    return trace
