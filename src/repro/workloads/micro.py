"""Micro-workloads used by tests, examples and targeted studies.

These are small, fully controlled traces whose behaviour under a temporal
prefetcher is analytically obvious, which makes them ideal for unit and
integration tests:

* :func:`generate_pointer_chase_trace` — a single repeating pointer chain,
  the canonical pattern temporal prefetching exists for (and the pattern the
  paper's lookahead discussion uses: a linked-list walk cannot be
  accelerated by a lookahead-1 prefetcher once the list is L3-resident,
  section 4.5 footnote 8);
* :func:`generate_sequential_trace` — a stride-1 stream, covered entirely by
  the baseline stride prefetcher;
* :func:`generate_random_trace` — uniformly random accesses with no reuse,
  which no prefetcher should cover and on which an accurate prefetcher
  should stay quiet.
"""

from __future__ import annotations

import random

from repro.memory.address import CACHE_LINE_SIZE
from repro.workloads.trace import Trace


def generate_pointer_chase_trace(
    nodes: int = 1024,
    repeats: int = 8,
    pc: int = 0x400400,
    base_address: int = 0x7000_0000,
    seed: int = 7,
    name: str = "pointer_chase",
) -> Trace:
    """A repeating pointer chain over ``nodes`` distinct cache lines.

    The chain visits every node exactly once per traversal in a fixed
    pseudo-random order, so every (x, y) pair repeats perfectly on every
    traversal — a temporal prefetcher that has seen one traversal can cover
    all subsequent ones.
    """

    if nodes <= 1 or repeats <= 0:
        raise ValueError("nodes must be > 1 and repeats positive")
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    trace = Trace(name=name)
    for _repeat in range(repeats):
        for node in order:
            trace.append_access(pc, base_address + node * CACHE_LINE_SIZE)
    trace.metadata = {
        "generator": "pointer_chase",
        "nodes": nodes,
        "repeats": repeats,
        "seed": seed,
    }
    return trace


def generate_sequential_trace(
    lines: int = 4096,
    pc: int = 0x400500,
    base_address: int = 0x7800_0000,
    name: str = "sequential",
) -> Trace:
    """A stride-1 walk over ``lines`` consecutive cache lines."""

    if lines <= 0:
        raise ValueError("lines must be positive")
    trace = Trace(name=name)
    for line in range(lines):
        trace.append_access(pc, base_address + line * CACHE_LINE_SIZE)
    trace.metadata = {"generator": "sequential", "lines": lines}
    return trace


def generate_random_trace(
    accesses: int = 4096,
    footprint_lines: int = 1 << 16,
    pc: int = 0x400600,
    base_address: int = 0x8000_0000,
    seed: int = 11,
    name: str = "random",
) -> Trace:
    """Uniformly random accesses over a large footprint (no usable pattern)."""

    if accesses <= 0 or footprint_lines <= 0:
        raise ValueError("accesses and footprint_lines must be positive")
    rng = random.Random(seed)
    trace = Trace(name=name)
    for _ in range(accesses):
        line = rng.randrange(footprint_lines)
        trace.append_access(pc, base_address + line * CACHE_LINE_SIZE)
    trace.metadata = {
        "generator": "random",
        "accesses": accesses,
        "footprint_lines": footprint_lines,
        "seed": seed,
    }
    return trace
