"""Workload registry: name → trace generator or on-disk trace file.

The experiment harness refers to workloads by name (the same names the
paper's figures use on their x axes); this registry maps those names onto
the generators in :mod:`repro.workloads.spec`, :mod:`repro.workloads.
graph500` and :mod:`repro.workloads.micro` — and, with the ``trace:``
prefix, onto packed ``.rtrc`` trace files on the trace search path (see
:mod:`repro.traces`).  A recorded or imported file is thereby a first-class
workload: ``generate_workload("trace:foo")`` loads ``foo.rtrc`` (or
``foo.rtrc.gz``) from the search path, and every study/CLI surface that
accepts workload names accepts it.

The search path is the ``REPRO_TRACE_DIR`` environment variable (one or
more directories separated by the platform path separator), falling back to
``./traces``; directories registered at runtime through
:func:`add_trace_directory` take precedence.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from repro.workloads.graph500 import GRAPH500_SPECS, generate_graph500_trace
from repro.workloads.micro import (
    generate_pointer_chase_trace,
    generate_random_trace,
    generate_sequential_trace,
)
from repro.workloads.spec import SPEC_SPECS, generate_spec_trace
from repro.workloads.trace import Trace

#: The seven SPEC-like workloads, in the order the paper's figures use.
SPEC_WORKLOADS: tuple[str, ...] = (
    "xalan",
    "omnet",
    "mcf",
    "gcc_166",
    "astar",
    "soplex_3500",
    "sphinx3",
)

#: The multiprogrammed pairs of figure 16 (Xalan doubled to make an even set).
MULTIPROGRAM_PAIRS: tuple[tuple[str, str], ...] = (
    ("xalan", "omnet"),
    ("mcf", "gcc_166"),
    ("astar", "soplex_3500"),
    ("sphinx3", "xalan"),
)

#: The Graph500 inputs of figure 17.
GRAPH500_WORKLOADS: tuple[str, ...] = ("graph500_s16", "graph500_s21")

_MICRO_GENERATORS: dict[str, Callable[..., Trace]] = {
    "pointer_chase": generate_pointer_chase_trace,
    "sequential": generate_sequential_trace,
    "random": generate_random_trace,
}

# ---------------------------------------------------------------------------
# On-disk trace workloads (the ``trace:`` namespace)
# ---------------------------------------------------------------------------
#: Prefix marking a workload name as an on-disk trace file.
TRACE_PREFIX = "trace:"

#: Environment variable holding the trace search path (path-separator list).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Directory searched when the environment variable is unset.
DEFAULT_TRACE_DIR = "traces"

def _trace_suffixes() -> tuple[str, ...]:
    """The format layer's canonical suffix list (imported lazily: the
    registry must stay importable without dragging the trace layer in)."""

    from repro.traces.format import TRACE_SUFFIXES

    return TRACE_SUFFIXES


def trace_search_path() -> list[Path]:
    """The directories ``trace:`` workloads resolve against, in order.

    Never empty: an environment value that contains no usable entries
    (e.g. only path separators) falls back to the default directory, so
    callers can rely on ``trace_search_path()[0]`` as the write target.
    """

    raw = os.environ.get(TRACE_DIR_ENV)
    entries = [Path(entry) for entry in raw.split(os.pathsep) if entry] if raw else []
    return entries or [Path(DEFAULT_TRACE_DIR)]


def add_trace_directory(directory: str | Path) -> Path:
    """Prepend a directory to the trace search path; returns it.

    The registration is written into the ``REPRO_TRACE_DIR`` environment
    variable (preserving the existing path, or the default directory when
    unset) rather than module state, so worker processes spawned later —
    which re-import this module — inherit it and resolve the same
    ``trace:`` workloads as the parent.
    """

    path = Path(directory)
    current = os.environ.get(TRACE_DIR_ENV)
    entries = [str(path)]
    if current:
        entries += [
            entry
            for entry in current.split(os.pathsep)
            if entry and Path(entry) != path
        ]
    else:
        entries.append(DEFAULT_TRACE_DIR)
    os.environ[TRACE_DIR_ENV] = os.pathsep.join(entries)
    return path


def remove_trace_directory(directory: str | Path) -> bool:
    """Drop a registered directory from the search path (see ``add``).

    Returns whether it was present.  Removing the last entry restores the
    default search path.
    """

    current = os.environ.get(TRACE_DIR_ENV)
    if not current:
        return False
    path = Path(directory)
    entries = [entry for entry in current.split(os.pathsep) if entry]
    kept = [entry for entry in entries if Path(entry) != path]
    if len(kept) == len(entries):
        return False
    os.environ[TRACE_DIR_ENV] = os.pathsep.join(kept)
    return True


def resolve_trace_path(name: str) -> Path:
    """The file a trace workload name refers to (``trace:`` prefix optional).

    Searches every directory on :func:`trace_search_path` for
    ``<name>.rtrc`` then ``<name>.rtrc.gz``; the first hit wins.
    """

    stem = name[len(TRACE_PREFIX):] if name.startswith(TRACE_PREFIX) else name
    if not stem:
        raise ValueError("empty trace workload name")
    for directory in trace_search_path():
        for suffix in _trace_suffixes():
            candidate = directory / f"{stem}{suffix}"
            if candidate.is_file():
                return candidate
    searched = ", ".join(str(directory) for directory in trace_search_path())
    raise ValueError(
        f"no trace file for workload {TRACE_PREFIX}{stem} "
        f"(searched {searched} for {stem}.rtrc[.gz]; record or import one "
        f"with `repro trace record|import`)"
    )


def available_trace_workloads() -> list[str]:
    """Every ``trace:<name>`` workload discoverable on the search path."""

    names = set()
    for directory in trace_search_path():
        if not directory.is_dir():
            continue
        for suffix in _trace_suffixes():
            for path in directory.glob(f"*{suffix}"):
                stem = path.name[: -len(suffix)]
                if stem:
                    names.add(f"{TRACE_PREFIX}{stem}")
    return sorted(names)


def _load_trace_workload(name: str, **overrides) -> Trace:
    """Load a ``trace:`` workload, applying the overrides traces support.

    On-disk traces are fixed streams, so the only generation override that
    has a meaning is ``length`` (truncate to the first N accesses — the
    replay analogue of generating a shorter trace); anything else would be
    silently ignored and is rejected instead.
    """

    from repro.traces.format import load_trace

    length = overrides.pop("length", None)
    if overrides:
        raise ValueError(
            f"trace workloads accept only the 'length' override "
            f"(got {sorted(overrides)}); resample the file instead "
            f"(`repro trace sample`)"
        )
    trace = load_trace(resolve_trace_path(name))
    if length is not None:
        if length <= 0:
            raise ValueError("length override must be positive")
        if length < len(trace):
            truncated = trace.slice(0, length)
            truncated.name = name
            return truncated
    trace.name = name
    return trace


def available_workloads() -> list[str]:
    """All workload names the registry can produce (on-disk traces included)."""

    generated = sorted(set(SPEC_SPECS) | set(GRAPH500_SPECS) | set(_MICRO_GENERATORS))
    return generated + available_trace_workloads()


def generate_workload(name: str, **overrides) -> Trace:
    """Generate (or load) the named workload's trace.

    ``overrides`` are forwarded to the underlying generator (``length`` and
    ``seed`` for the SPEC-like workloads, ``max_accesses``/``seed`` for
    Graph500, and the micro generators' own parameters).  Names with the
    ``trace:`` prefix load packed trace files from the search path instead
    of generating; they accept only the ``length`` override.
    """

    if name.startswith(TRACE_PREFIX):
        return _load_trace_workload(name, **overrides)
    key = name.lower()
    if key in SPEC_SPECS:
        return generate_spec_trace(key, **overrides)
    if key in GRAPH500_SPECS:
        return generate_graph500_trace(key, **overrides)
    if key in _MICRO_GENERATORS:
        return _MICRO_GENERATORS[key](**overrides)
    raise ValueError(
        f"unknown workload {name!r}; available: {available_workloads()}"
    )
