"""Workload registry: name → trace generator.

The experiment harness refers to workloads by name (the same names the
paper's figures use on their x axes); this registry maps those names onto
the generators in :mod:`repro.workloads.spec`, :mod:`repro.workloads.
graph500` and :mod:`repro.workloads.micro`.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.graph500 import GRAPH500_SPECS, generate_graph500_trace
from repro.workloads.micro import (
    generate_pointer_chase_trace,
    generate_random_trace,
    generate_sequential_trace,
)
from repro.workloads.spec import SPEC_SPECS, generate_spec_trace
from repro.workloads.trace import Trace

#: The seven SPEC-like workloads, in the order the paper's figures use.
SPEC_WORKLOADS: tuple[str, ...] = (
    "xalan",
    "omnet",
    "mcf",
    "gcc_166",
    "astar",
    "soplex_3500",
    "sphinx3",
)

#: The multiprogrammed pairs of figure 16 (Xalan doubled to make an even set).
MULTIPROGRAM_PAIRS: tuple[tuple[str, str], ...] = (
    ("xalan", "omnet"),
    ("mcf", "gcc_166"),
    ("astar", "soplex_3500"),
    ("sphinx3", "xalan"),
)

#: The Graph500 inputs of figure 17.
GRAPH500_WORKLOADS: tuple[str, ...] = ("graph500_s16", "graph500_s21")

_MICRO_GENERATORS: dict[str, Callable[..., Trace]] = {
    "pointer_chase": generate_pointer_chase_trace,
    "sequential": generate_sequential_trace,
    "random": generate_random_trace,
}


def available_workloads() -> list[str]:
    """All workload names the registry can generate."""

    return sorted(set(SPEC_SPECS) | set(GRAPH500_SPECS) | set(_MICRO_GENERATORS))


def generate_workload(name: str, **overrides) -> Trace:
    """Generate the named workload's trace.

    ``overrides`` are forwarded to the underlying generator (``length`` and
    ``seed`` for the SPEC-like workloads, ``max_accesses``/``seed`` for
    Graph500, and the micro generators' own parameters).
    """

    key = name.lower()
    if key in SPEC_SPECS:
        return generate_spec_trace(key, **overrides)
    if key in GRAPH500_SPECS:
        return generate_graph500_trace(key, **overrides)
    if key in _MICRO_GENERATORS:
        return _MICRO_GENERATORS[key](**overrides)
    raise ValueError(
        f"unknown workload {name!r}; available: {available_workloads()}"
    )
