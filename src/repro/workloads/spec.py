"""SPEC-CPU2006-like synthetic workloads (paper section 5).

The paper evaluates on the seven most irregular, memory-intensive SPEC
CPU2006 workloads.  SPEC binaries, inputs and gem5 checkpoints are not
available to this reproduction, so each workload is replaced by a named
parameterisation of :func:`repro.workloads.synthetic.generate_synthetic_trace`
chosen to land the workload in the same *regime* the paper reports for it:

========== ==================================================================
Workload   Regime reproduced (and the paper observation it comes from)
========== ==================================================================
xalan      Strong, strict temporal repetition; working set well inside the
           Markov capacity → both Triage and Triangel do well, Triangel best
           (fig. 10).
omnet      Strong temporal reuse but *not* in strict sequence → the
           Second-Chance Sampler recovers the accuracy BasePatternConf alone
           would throw away (fig. 20 discussion).
mcf        One coverable stream plus one whose reuse distance exceeds the
           Markov capacity → ReuseConf stops Triangel wasting storage on it;
           heavy footprint fragmentation punishes Triage's LUT (fig. 19).
gcc_166    Moderate temporal stream plus stride traffic; working set close
           to the L3's data capacity so the Set Dueller's traffic trade-off
           matters (fig. 20 discussion); low fragmentation → LUT works.
astar      Poor-quality, barely repeating streams → Triangel mostly declines
           to prefetch (low coverage, low traffic in figs. 11/13).
soplex     Poor-quality streams mixed with stride traffic → similar to
           astar, with somewhat more coverable structure.
sphinx3    Smaller, loosely ordered temporal reuse; low fragmentation → the
           LUT stays accurate for it (fig. 19), Second-Chance helps.
========== ==================================================================

Sequence sizes are expressed against the *scaled* system of
:meth:`repro.sim.config.SystemConfig.scaled`, whose Markov table holds about
6 144 entries at maximum partition and whose L3 holds 1 024 data lines.
"""

from __future__ import annotations

from repro.workloads.synthetic import (
    StreamSpec,
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)
from repro.workloads.trace import Trace

#: Named specifications for the seven SPEC-like workloads.
SPEC_SPECS: dict[str, SyntheticWorkloadSpec] = {
    "xalan": SyntheticWorkloadSpec(
        name="xalan",
        streams=[
            StreamSpec(sequence_lines=1400, repetition=0.97, jitter=0.05),
            StreamSpec(sequence_lines=500, repetition=0.95, jitter=0.1, weight=0.6),
        ],
        length=44_000,
        hot_fraction=0.62,
        fragmentation=0.30,
        seed=0xA11,
    ),
    "omnet": SyntheticWorkloadSpec(
        name="omnet",
        streams=[
            StreamSpec(sequence_lines=1200, repetition=0.95, jitter=0.45, jitter_block=6),
            StreamSpec(sequence_lines=700, repetition=0.92, jitter=0.35, weight=0.7),
        ],
        length=44_000,
        hot_fraction=0.60,
        fragmentation=0.50,
        seed=0xB22,
    ),
    "mcf": SyntheticWorkloadSpec(
        name="mcf",
        streams=[
            StreamSpec(sequence_lines=2000, repetition=0.95, jitter=0.10, weight=2.0),
            StreamSpec(sequence_lines=9000, repetition=0.90, jitter=0.05, weight=1.5),
        ],
        length=50_000,
        hot_fraction=0.50,
        fragmentation=0.70,
        seed=0xC33,
    ),
    "gcc_166": SyntheticWorkloadSpec(
        name="gcc_166",
        streams=[
            StreamSpec(sequence_lines=700, repetition=0.96, jitter=0.15),
            StreamSpec(sequence_lines=3000, stride=True, weight=0.8),
        ],
        length=40_000,
        hot_fraction=0.68,
        fragmentation=0.10,
        seed=0xD44,
    ),
    "astar": SyntheticWorkloadSpec(
        name="astar",
        streams=[
            StreamSpec(sequence_lines=3500, repetition=0.45, jitter=0.50),
            StreamSpec(sequence_lines=1800, repetition=0.50, jitter=0.40, weight=0.8),
        ],
        length=44_000,
        hot_fraction=0.60,
        fragmentation=0.60,
        seed=0xE55,
    ),
    "soplex_3500": SyntheticWorkloadSpec(
        name="soplex_3500",
        streams=[
            StreamSpec(sequence_lines=2500, repetition=0.55, jitter=0.30),
            StreamSpec(sequence_lines=2000, stride=True, weight=0.6),
        ],
        length=44_000,
        hot_fraction=0.58,
        fragmentation=0.50,
        seed=0xF66,
    ),
    "sphinx3": SyntheticWorkloadSpec(
        name="sphinx3",
        streams=[
            StreamSpec(sequence_lines=900, repetition=0.95, jitter=0.50, jitter_block=8),
            StreamSpec(sequence_lines=1500, stride=True, weight=0.5),
        ],
        length=40_000,
        hot_fraction=0.66,
        fragmentation=0.10,
        seed=0x177,
    ),
}


def generate_spec_trace(name: str, length: int | None = None, seed: int | None = None) -> Trace:
    """Generate one of the seven SPEC-like traces by name.

    ``length`` and ``seed`` override the canonical spec, which is useful for
    quick tests (shorter traces) and for generating independent samples.
    """

    key = name.lower()
    if key not in SPEC_SPECS:
        raise ValueError(
            f"unknown SPEC-like workload {name!r}; expected one of {sorted(SPEC_SPECS)}"
        )
    spec = SPEC_SPECS[key]
    if length is not None or seed is not None:
        spec = SyntheticWorkloadSpec(
            name=spec.name,
            streams=list(spec.streams),
            length=length if length is not None else spec.length,
            hot_fraction=spec.hot_fraction,
            hot_lines=spec.hot_lines,
            hot_pcs=spec.hot_pcs,
            fragmentation=spec.fragmentation,
            seed=seed if seed is not None else spec.seed,
        )
    return generate_synthetic_trace(spec)
