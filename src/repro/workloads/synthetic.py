"""Parametric synthetic trace generation.

Temporal prefetchers only ever see the L2 miss / tagged-prefetch-hit stream,
so what determines their behaviour on a workload is a small set of stream
properties:

* how large the per-PC repeating sequences are, relative to the Markov
  table's maximum capacity (drives ReuseConf and the Graph500 blow-ups);
* how *exactly* the sequences repeat — strict order (Xalan-like), loosely
  shuffled order (Omnet/Sphinx-like, where the Second-Chance Sampler
  matters), or barely at all (Astar/Soplex-like poor-quality streams);
* how much of the footprint is spread over fragmented physical pages, which
  is what breaks Triage's lookup-table compression (figures 18/19);
* how much easy, stride-predictable or cache-resident traffic surrounds the
  irregular stream, which sets the baseline's miss rate.

:class:`SyntheticWorkloadSpec` exposes exactly these knobs and
:func:`generate_synthetic_trace` turns a spec into a concrete
:class:`~repro.workloads.trace.Trace`.  The seven SPEC-like workloads in
:mod:`repro.workloads.spec` are nothing more than named parameterisations of
this generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.memory.address import CACHE_LINE_SIZE, PageMapper
from repro.workloads.trace import Trace


@dataclass
class StreamSpec:
    """One PC-localised access stream within a workload.

    Parameters
    ----------
    sequence_lines:
        Number of distinct cache lines in the repeating sequence.  Relative
        to the (scaled) Markov capacity this decides whether temporal
        prefetching can cover the stream at all.
    repetition:
        Fraction of the stream's accesses that follow the recorded sequence;
        the remainder are fresh, never-repeated lines (noise), which is what
        makes a stream "poor quality" for temporal prefetching.
    jitter:
        Probability that each small block of the sequence is shuffled on a
        repeat.  Zero gives strict sequences; moderate values give the
        "temporally close but out of order" behaviour where the
        Second-Chance Sampler earns its keep.
    jitter_block:
        Size of the locally shuffled blocks.
    stride:
        If true, the stream is a sequential (stride-1) walk instead of a
        shuffled temporal sequence — covered by the baseline stride
        prefetcher, not the temporal one.
    weight:
        Relative share of the workload's irregular accesses this stream gets.
    span_factor:
        The virtual region the sequence's lines are scattered over, as a
        multiple of the sequence size (larger values spread the footprint
        over more pages, increasing LUT pressure under fragmentation).
    """

    sequence_lines: int
    repetition: float = 1.0
    jitter: float = 0.0
    jitter_block: int = 4
    stride: bool = False
    weight: float = 1.0
    span_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.sequence_lines <= 0:
            raise ValueError("sequence_lines must be positive")
        if not 0.0 <= self.repetition <= 1.0:
            raise ValueError("repetition must be in [0, 1]")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class SyntheticWorkloadSpec:
    """A complete synthetic workload: hot data plus irregular streams."""

    name: str
    streams: list[StreamSpec] = field(default_factory=list)
    length: int = 40_000
    #: fraction of accesses that go to a small, cache-resident hot set
    hot_fraction: float = 0.65
    hot_lines: int = 48
    hot_pcs: int = 4
    fragmentation: float = 0.3
    seed: int = 1234

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError(f"workload {self.name!r} needs at least one stream")
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in [0, 1)")
        if self.length <= 0:
            raise ValueError("length must be positive")


class _StreamState:
    """Iteration state for one stream while a trace is being generated."""

    def __init__(self, spec: StreamSpec, pc: int, region_base: int, rng: random.Random) -> None:
        self.spec = spec
        self.pc = pc
        self.region_base = region_base
        self.rng = rng
        span_lines = max(spec.sequence_lines + 1, int(spec.sequence_lines * spec.span_factor))
        self.span_lines = span_lines
        if spec.stride:
            self.sequence = list(range(spec.sequence_lines))
        else:
            self.sequence = rng.sample(range(span_lines), spec.sequence_lines)
        self.position = 0
        self.current = self._permuted()

    def _permuted(self) -> list[int]:
        spec = self.spec
        if spec.stride or spec.jitter <= 0.0:
            return list(self.sequence)
        permuted = list(self.sequence)
        block = max(2, spec.jitter_block)
        for start in range(0, len(permuted), block):
            if self.rng.random() < spec.jitter:
                chunk = permuted[start : start + block]
                self.rng.shuffle(chunk)
                permuted[start : start + block] = chunk
        return permuted

    def next_virtual_address(self) -> int:
        spec = self.spec
        if spec.repetition < 1.0 and self.rng.random() > spec.repetition:
            # Noise access: a line in the region that is not part of the
            # repeating sequence (so it never trains a useful correlation).
            line = self.rng.randrange(self.span_lines, 2 * self.span_lines)
        else:
            line = self.current[self.position]
            self.position += 1
            if self.position >= len(self.current):
                self.position = 0
                self.current = self._permuted()
        return self.region_base + line * CACHE_LINE_SIZE


def generate_synthetic_trace(spec: SyntheticWorkloadSpec) -> Trace:
    """Generate a deterministic trace from a workload specification."""

    rng = random.Random(spec.seed)
    mapper = PageMapper(fragmentation=spec.fragmentation, seed=spec.seed ^ 0xFEED)

    # Hot set: a small, frequently re-touched region that mostly hits the L1,
    # standing in for stack/locals/loop-carried data.
    hot_region_base = 0x1000_0000
    hot_addresses = [
        hot_region_base + line * CACHE_LINE_SIZE for line in range(spec.hot_lines)
    ]
    hot_pcs = [0x400100 + 8 * index for index in range(spec.hot_pcs)]

    # Each irregular stream gets its own PC and a disjoint virtual region.
    streams: list[_StreamState] = []
    cumulative_weights: list[float] = []
    total_weight = 0.0
    for index, stream_spec in enumerate(spec.streams):
        pc = 0x400800 + 16 * index
        region_base = 0x2000_0000 + index * 0x0400_0000
        streams.append(_StreamState(stream_spec, pc, region_base, rng))
        total_weight += stream_spec.weight
        cumulative_weights.append(total_weight)

    trace = Trace(name=spec.name)
    hot_position = 0
    for _access_index in range(spec.length):
        if rng.random() < spec.hot_fraction:
            hot_position = (hot_position + 1) % len(hot_addresses)
            virtual = hot_addresses[hot_position]
            pc = hot_pcs[hot_position % len(hot_pcs)]
            physical = virtual  # hot region is contiguous and never remapped
        else:
            pick = rng.random() * total_weight
            chosen = streams[-1]
            for stream, bound in zip(streams, cumulative_weights):
                if pick <= bound:
                    chosen = stream
                    break
            virtual = chosen.next_virtual_address()
            pc = chosen.pc
            physical = mapper.translate(virtual)
        trace.append_access(pc, physical, False)

    trace.metadata = {
        "generator": "synthetic",
        "length": spec.length,
        "hot_fraction": spec.hot_fraction,
        "fragmentation": spec.fragmentation,
        "streams": [
            {
                "sequence_lines": stream.sequence_lines,
                "repetition": stream.repetition,
                "jitter": stream.jitter,
                "stride": stream.stride,
                "weight": stream.weight,
            }
            for stream in spec.streams
        ],
        "seed": spec.seed,
        "mapped_pages": mapper.mapped_pages,
    }
    return trace
