"""The trace container shared by all workload generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.memory.address import CACHE_LINE_BITS
from repro.memory.request import MemoryAccess

#: Address bits below the cache-line number.  Trace statistics and the
#: packed on-disk trace format (:mod:`repro.traces.format`, which records
#: the shift in every ``.rtrc`` header) both derive line footprints from
#: this one constant, so they can never disagree with the hierarchy's
#: 64-byte line geometry.
LINE_SHIFT = CACHE_LINE_BITS


@dataclass
class Trace:
    """An ordered sequence of demand memory accesses plus provenance metadata.

    Attributes
    ----------
    name:
        Workload name used in reports (e.g. ``"xalan"``).
    accesses:
        The access stream, in program order.
    metadata:
        Generator parameters and derived properties (working-set size,
        number of streams, fragmentation, ...), recorded so experiments are
        self-describing.
    """

    name: str
    accesses: list[MemoryAccess] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def __getitem__(self, index: int) -> MemoryAccess:
        return self.accesses[index]

    def append(self, access: MemoryAccess) -> None:
        self.accesses.append(access)

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched (the trace's footprint)."""

        return len({access.address >> LINE_SHIFT for access in self.accesses})

    def unique_pcs(self) -> int:
        """Number of distinct PCs appearing in the trace."""

        return len({access.pc for access in self.accesses})

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace covering ``accesses[start:stop]``."""

        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            accesses=self.accesses[start:stop],
            metadata=dict(self.metadata),
        )
