"""The trace container shared by all workload generators.

A :class:`Trace` stores its access stream as parallel columns — an
``array('Q')`` of program counters, an ``array('Q')`` of physical addresses
and a ``bytearray`` of write flags — rather than a list of per-access
objects.  Generators append with :meth:`Trace.append_access` (three ints, no
object construction), the fast kernel reads the columns directly through the
:class:`~repro.sim.stream.AccessStream` protocol, and the object API
(:attr:`Trace.accesses`, iteration, indexing) materialises
:class:`~repro.memory.request.MemoryAccess` values lazily for tests,
tooling and the reference engine.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator

from repro.memory.address import CACHE_LINE_BITS
from repro.memory.request import MemoryAccess
from repro.sim.stream import AccessColumns

#: Address bits below the cache-line number.  Trace statistics and the
#: packed on-disk trace format (:mod:`repro.traces.format`, which records
#: the shift in every ``.rtrc`` header) both derive line footprints from
#: this one constant, so they can never disagree with the hierarchy's
#: 64-byte line geometry.
LINE_SHIFT = CACHE_LINE_BITS


def distinct_line_count(addresses, shift: int = LINE_SHIFT) -> int:
    """Number of distinct cache lines an address column touches.

    Two addresses share a line exactly when they agree above ``shift``
    bits, so for the common geometries (``0 < shift < 8``) the line number
    is the address with its low ``shift`` bits cleared — computed here by
    masking those bits *in the raw column bytes* (one ``translate`` over
    the little-endian low byte of every record) and deduplicating the
    8-byte records through a ``memoryview`` cast, instead of shifting one
    Python int per access.  Columns that don't expose a uint64-shaped
    buffer (and exotic shifts, and big-endian hosts) fall back to the
    per-element set.
    """

    if 0 < shift < 8 and sys.byteorder == "little":
        try:
            raw = memoryview(addresses).cast("B")
        except TypeError:
            raw = None
        if raw is not None and len(raw) % 8 == 0:
            mask = ~((1 << shift) - 1) & 0xFF
            masked = bytearray(raw)
            masked[0::8] = masked[0::8].translate(
                bytes(byte & mask for byte in range(256))
            )
            return len(set(memoryview(masked).cast("Q")))
    return len({address >> shift for address in addresses})


class Trace:
    """An ordered sequence of demand memory accesses plus provenance metadata.

    Attributes
    ----------
    name:
        Workload name used in reports (e.g. ``"xalan"``).
    metadata:
        Generator parameters and derived properties (working-set size,
        number of streams, fragmentation, ...), recorded so experiments are
        self-describing.

    The stream itself lives in packed columns; :attr:`accesses` exposes it
    as a list of :class:`MemoryAccess` objects, built on first use and kept
    in sync by :meth:`append`/:meth:`append_access`.
    """

    __slots__ = ("name", "metadata", "_pcs", "_addresses", "_writes", "_objects")

    def __init__(
        self,
        name: str,
        accesses: list[MemoryAccess] | None = None,
        metadata: dict | None = None,
    ) -> None:
        self.name = name
        self.metadata = dict(metadata) if metadata else {}
        self._pcs = array("Q")
        self._addresses = array("Q")
        self._writes = bytearray()
        self._objects: list[MemoryAccess] | None = None
        for access in accesses or ():
            self.append(access)

    # -- building ------------------------------------------------------------
    def append(self, access: MemoryAccess) -> None:
        """Append one access object (columns and object cache stay in sync)."""

        self._pcs.append(access.pc)
        self._addresses.append(access.address)
        self._writes.append(1 if access.is_write else 0)
        if self._objects is not None:
            self._objects.append(access)

    def append_access(self, pc: int, address: int, is_write: bool = False) -> None:
        """Append one access from its fields (the generators' fast path)."""

        self._pcs.append(pc)
        self._addresses.append(address)
        self._writes.append(1 if is_write else 0)
        self._objects = None

    # -- the object facade ---------------------------------------------------
    @property
    def accesses(self) -> list[MemoryAccess]:
        """The stream as access objects (materialised once, then cached).

        Read-only view: extend the trace through :meth:`append` /
        :meth:`append_access`, never by mutating the returned list — the
        columns are the source of truth, and a mutated view would silently
        diverge from them (detected and rejected below).
        """

        objects = self._objects
        if objects is None:
            objects = [
                MemoryAccess(pc, address, bool(write))
                for pc, address, write in zip(self._pcs, self._addresses, self._writes)
            ]
            self._objects = objects
        elif len(objects) != len(self._pcs):
            raise RuntimeError(
                "Trace.accesses was mutated directly; the packed columns are "
                "the source of truth — use Trace.append()/append_access()"
            )
        return objects

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self._pcs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # The old list-backed container supported slice indexing by
            # delegating to the list; keep that (a list of access objects).
            return self.accesses[index]
        if index < 0:
            index += len(self._pcs)
        if not 0 <= index < len(self._pcs):
            raise IndexError("trace index out of range")
        return MemoryAccess(
            self._pcs[index], self._addresses[index], bool(self._writes[index])
        )

    # -- the columnar protocol (see repro.sim.stream) ------------------------
    def access_columns(self) -> AccessColumns:
        """The stream's packed columns, shared with the trace (no copy)."""

        return AccessColumns(
            pcs=self._pcs,
            addresses=self._addresses,
            writes=self._writes,
            length=len(self._pcs),
        )

    # -- statistics ----------------------------------------------------------
    def unique_lines(self) -> int:
        """Number of distinct cache lines touched (the trace's footprint)."""

        return distinct_line_count(self._addresses, LINE_SHIFT)

    def unique_pcs(self) -> int:
        """Number of distinct PCs appearing in the trace."""

        return len(set(self._pcs))

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace covering ``accesses[start:stop]``."""

        start, stop, _ = slice(start, stop).indices(len(self._pcs))
        stop = max(start, stop)
        sub = Trace(name=f"{self.name}[{start}:{stop}]", metadata=dict(self.metadata))
        sub._pcs = self._pcs[start:stop]
        sub._addresses = self._addresses[start:stop]
        sub._writes = self._writes[start:stop]
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, accesses={len(self._pcs)})"
