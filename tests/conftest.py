"""Shared fixtures for the test suite.

Tests run against deliberately tiny structures so that capacity effects
(evictions, partition resizes, sampler displacement) can be triggered with a
few hundred accesses instead of tens of thousands.
"""

from __future__ import annotations

import pytest

from repro.experiments import store as store_module
from repro.memory.dram import DramModel
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.memory.partitioned_cache import PartitionedCache
from repro.sim.config import SystemConfig


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Point the default persistent store at a per-test temporary directory.

    Tests must never read results persisted by earlier runs (or by the
    benchmark harness), and ``clear_caches()`` — which clears the default
    store — must never wipe a store the user cares about.
    """

    monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "repro_cache"))
    previous = store_module.set_default_store(None)
    yield
    store_module.set_default_store(previous)


@pytest.fixture
def tiny_params() -> HierarchyParams:
    """A very small hierarchy: 1 KiB L1, 2 KiB L2, 8 KiB L3."""

    return HierarchyParams(
        l1_size=1024,
        l1_assoc=2,
        l2_size=2048,
        l2_assoc=4,
        l3_size=8192,
        l3_assoc=8,
        max_markov_ways=4,
        dram_latency=100.0,
    )


@pytest.fixture
def tiny_hierarchy(tiny_params) -> MemoryHierarchy:
    return MemoryHierarchy(tiny_params)


@pytest.fixture
def small_system() -> SystemConfig:
    """A scaled system with short adaptation windows for fast tests."""

    system = SystemConfig.scaled()
    system.bloom_window = 512
    system.dueller_window = 512
    system.sampler_entries = 128
    system.training_entries = 128
    return system


def line(index: int, base: int = 0) -> int:
    """Byte address of the ``index``-th cache line above ``base``."""

    return base + index * 64
