"""Unit tests for address arithmetic and the page mapper."""

import pytest

from repro.memory.address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    PageMapper,
    line_address,
    line_number,
    page_number,
    page_offset,
)


class TestLineArithmetic:
    def test_line_address_aligns_down(self):
        assert line_address(0x1234) == 0x1200
        assert line_address(0x1200) == 0x1200

    def test_line_number(self):
        assert line_number(0) == 0
        assert line_number(CACHE_LINE_SIZE) == 1
        assert line_number(CACHE_LINE_SIZE * 10 + 3) == 10

    def test_page_number_and_offset(self):
        address = 5 * PAGE_SIZE + 123
        assert page_number(address) == 5
        assert page_offset(address) == 123


class TestPageMapper:
    def test_sequential_mapping_without_fragmentation(self):
        mapper = PageMapper(fragmentation=0.0, base_frame=0x10)
        first = mapper.translate(0)
        second = mapper.translate(PAGE_SIZE)
        assert page_number(second) == page_number(first) + 1

    def test_mapping_is_stable(self):
        mapper = PageMapper(fragmentation=0.5)
        address = 7 * PAGE_SIZE + 100
        assert mapper.translate(address) == mapper.translate(address)

    def test_page_offset_preserved(self):
        mapper = PageMapper(fragmentation=1.0)
        address = 3 * PAGE_SIZE + 777
        assert page_offset(mapper.translate(address)) == 777

    def test_fragmentation_scatters_frames(self):
        sequential = PageMapper(fragmentation=0.0, seed=1)
        fragmented = PageMapper(fragmentation=1.0, seed=1)
        seq_frames = [page_number(sequential.translate(i * PAGE_SIZE)) for i in range(50)]
        frag_frames = [page_number(fragmented.translate(i * PAGE_SIZE)) for i in range(50)]
        seq_gaps = [b - a for a, b in zip(seq_frames, seq_frames[1:])]
        frag_gaps = [b - a for a, b in zip(frag_frames, frag_frames[1:])]
        assert all(gap == 1 for gap in seq_gaps)
        assert any(abs(gap) > 1 for gap in frag_gaps)

    def test_mapped_pages_counts_unique_pages(self):
        mapper = PageMapper()
        for index in range(10):
            mapper.translate(index * PAGE_SIZE)
            mapper.translate(index * PAGE_SIZE + 64)
        assert mapper.mapped_pages == 10

    def test_deterministic_under_seed(self):
        a = PageMapper(fragmentation=0.7, seed=99)
        b = PageMapper(fragmentation=0.7, seed=99)
        addresses = [i * PAGE_SIZE for i in range(100)]
        assert [a.translate(x) for x in addresses] == [b.translate(x) for x in addresses]

    def test_rejects_bad_fragmentation(self):
        with pytest.raises(ValueError):
            PageMapper(fragmentation=1.5)

    def test_rejects_non_positive_pool(self):
        with pytest.raises(ValueError):
            PageMapper(physical_pages=0)
