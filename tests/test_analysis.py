"""Tests for metric math and report rendering."""

import math

import pytest

from repro.analysis.metrics import (
    add_geomean_row,
    geomean,
    normalize_against_baseline,
    summarize_ratio,
)
from repro.analysis.report import format_results_table, render_figure
from repro.sim.stats import SimulationStats


def stats(cycles=1000.0, dram=100, misses=50, issued=0, useful=0, l3=200, energy=500.0):
    s = SimulationStats()
    s.cycles = cycles
    s.dram_accesses = dram
    s.l2_demand_misses = misses
    s.temporal_prefetches_issued = issued
    s.temporal_prefetches_useful = useful
    s.l3_data_accesses = l3
    s.dynamic_energy = energy
    return s


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_is_one(self):
        assert geomean([]) == 1.0

    def test_single_value(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_matches_log_definition(self):
        values = [1.2, 0.9, 2.4, 1.7]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geomean(values) == pytest.approx(expected)


class TestNormalisation:
    def make_results(self):
        return {
            "wl": {
                "baseline": stats(cycles=2000.0, dram=100, misses=100),
                "better": stats(cycles=1000.0, dram=110, misses=40, issued=10, useful=9),
            }
        }

    def test_speedup(self):
        table = normalize_against_baseline(self.make_results(), "speedup")
        assert table["wl"]["better"] == pytest.approx(2.0)

    def test_dram_traffic(self):
        table = normalize_against_baseline(self.make_results(), "dram_traffic")
        assert table["wl"]["better"] == pytest.approx(1.1)

    def test_coverage(self):
        table = normalize_against_baseline(self.make_results(), "coverage")
        assert table["wl"]["better"] == pytest.approx(0.6)

    def test_accuracy_is_absolute(self):
        table = normalize_against_baseline(self.make_results(), "accuracy")
        assert table["wl"]["better"] == pytest.approx(0.9)

    def test_missing_baseline_raises(self):
        results = {"wl": {"better": stats()}}
        with pytest.raises(KeyError):
            normalize_against_baseline(results, "speedup")

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            normalize_against_baseline(self.make_results(), "latency")


class TestSummaries:
    def test_summarize_ratio_geomean(self):
        assert summarize_ratio({"a": 2.0, "b": 8.0}) == pytest.approx(4.0)

    def test_summarize_ratio_with_zero_uses_mean(self):
        assert summarize_ratio({"a": 0.0, "b": 1.0}) == pytest.approx(0.5)

    def test_summarize_empty(self):
        assert summarize_ratio({}) == 1.0

    def test_add_geomean_row(self):
        table = {"w1": {"cfg": 2.0}, "w2": {"cfg": 8.0}}
        extended = add_geomean_row(table)
        assert extended["geomean"]["cfg"] == pytest.approx(4.0)
        # The original table is not mutated.
        assert "geomean" not in table


class TestReportRendering:
    def test_table_contains_all_cells(self):
        table = {"xalan": {"triage": 1.25, "triangel": 1.61}}
        text = format_results_table(table, ["triage", "triangel"])
        assert "xalan" in text
        assert "1.250" in text and "1.610" in text

    def test_missing_cell_rendered_as_dash(self):
        table = {"xalan": {"triage": 1.25}}
        text = format_results_table(table, ["triage", "triangel"])
        assert "-" in text

    def test_row_order_respected(self):
        table = {"b": {"c": 1.0}, "a": {"c": 2.0}}
        text = format_results_table(table, ["c"], row_order=["a", "b"])
        assert text.index("a") < text.index("b")

    def test_render_figure_includes_title_and_note(self):
        table = {"w": {"c": 1.0}}
        text = render_figure("Figure 99: test", table, ["c"], note="shape note")
        assert text.startswith("Figure 99: test")
        assert "shape note" in text
