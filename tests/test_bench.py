"""Tests for the ``repro bench`` kernel microbenchmark and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import bench
from repro.experiments.bench import (
    BenchParityError,
    render_bench,
    run_bench,
    write_bench,
)


def small_record() -> dict:
    return run_bench(length=600, repeats=1)


class TestRunBench:
    def test_record_shape_and_parity(self):
        record = small_record()
        assert record["bench"] == "engine-kernels"
        assert record["kernels"] == ["reference", "fast"]
        names = [case["name"] for case in record["cases"]]
        assert names == [
            "synthetic-xalan",
            "replay-hot",
            "replay-hot-sharded-k2",
            "replay-hot-sharded-k4",
        ]
        for case in record["cases"][:2]:
            assert case["parity"] is True
            assert case["accesses"] > 0
            assert case["reference_accesses_per_second"] > 0
            assert case["fast_accesses_per_second"] > 0
            assert case["speedup"] == pytest.approx(
                case["fast_accesses_per_second"]
                / case["reference_accesses_per_second"],
                rel=0.01,
            )
        assert record["packed_trace_speedup"] == record["cases"][1]["speedup"]

    def test_sharded_cases_shape(self):
        record = small_record()
        sharded = [case for case in record["cases"] if "shards" in case]
        assert [case["shards"] for case in sharded] == [2, 4]
        hot = next(case for case in record["cases"] if case["name"] == "replay-hot")
        for case in sharded:
            assert case["parity"] is True
            assert case["shard_overlap"] == "warmup"
            assert case["accesses"] == hot["accesses"]
            assert case["critical_path_accesses_per_second"] > 0
            assert case["speedup"] > 0
            assert 0.0 <= case["max_parity_deviation"] <= 0.05

    def test_shard_counts_can_be_skipped(self):
        record = run_bench(length=600, repeats=1, shard_counts=())
        assert [case["name"] for case in record["cases"]] == [
            "synthetic-xalan",
            "replay-hot",
        ]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_bench(length=0)
        with pytest.raises(ValueError):
            run_bench(repeats=0)

    def test_parity_mismatch_fails_loudly(self, monkeypatch):
        """The bench must refuse to report rates for diverging kernels."""

        real = bench.run_simulation

        def skewed(simulator, trace, kernel=None, **kwargs):
            result = real(simulator, trace, kernel=kernel, **kwargs)
            if kernel == "fast":
                result.stats.accesses += 1
            return result

        monkeypatch.setattr(bench, "run_simulation", skewed)
        with pytest.raises(BenchParityError, match="accesses"):
            run_bench(length=400, repeats=1)

    def test_render_mentions_every_case(self):
        record = small_record()
        rendered = render_bench(record)
        assert "synthetic-xalan" in rendered
        assert "replay-hot" in rendered
        assert "speedup" in rendered

    def test_write_bench_stable_json(self, tmp_path):
        record = small_record()
        path = write_bench(record, tmp_path / "BENCH_engine.json")
        loaded = json.loads(path.read_text())
        assert loaded == record
        # Deterministic serialisation: writing the same record twice is
        # byte-identical (the perf trajectory file must diff cleanly).
        first = path.read_bytes()
        write_bench(record, path)
        assert path.read_bytes() == first


class TestBenchCli:
    def test_bench_writes_record(self, tmp_path, capsys):
        output = tmp_path / "BENCH_engine.json"
        code = main(
            ["bench", "--length", "500", "--repeats", "1", "--output", str(output)]
        )
        assert code == 0
        record = json.loads(output.read_text())
        assert [case["parity"] for case in record["cases"]] == [True] * 4
        printed = capsys.readouterr().out
        assert "replay-hot" in printed
        assert str(output) in printed

    def test_bench_shards_flag(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        code = main(
            [
                "bench",
                "--length",
                "500",
                "--repeats",
                "1",
                "--shards",
                "3",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        record = json.loads(output.read_text())
        sharded = [case for case in record["cases"] if "shards" in case]
        assert [case["shards"] for case in sharded] == [3]

    def test_bench_rejects_bad_shards(self, capsys):
        assert main(["bench", "--shards", "1,x", "--output", "-"]) == 2
        assert "repro:" in capsys.readouterr().err
        assert main(["bench", "--shards", "1", "--output", "-"]) == 2

    def test_bench_dash_skips_writing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--length", "500", "--repeats", "1", "--output", "-"]) == 0
        assert not (tmp_path / "BENCH_engine.json").exists()
        assert "engine kernel benchmark" in capsys.readouterr().out

    def test_bench_rejects_bad_length(self, capsys):
        assert main(["bench", "--length", "-5", "--output", "-"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_parity_mismatch_renders_cleanly(self, monkeypatch, capsys):
        """A kernel divergence exits 1 with a one-line error, no traceback."""

        def diverge(**kwargs):
            raise BenchParityError("replay-hot: kernels disagree on ['cycles']")

        monkeypatch.setattr(bench, "run_bench", diverge)
        assert main(["bench", "--length", "500", "--output", "-"]) == 1
        captured = capsys.readouterr()
        assert "kernels disagree" in captured.err
        assert "Traceback" not in captured.err


class TestKernelCliFlag:
    def test_run_accepts_kernel_flag(self, capsys):
        code = main(
            [
                "run",
                "xalan",
                "--config",
                "triage",
                "--trace-length",
                "900",
                "--max-accesses",
                "400",
                "--kernel",
                "reference",
                "--no-cache",
            ]
        )
        assert code == 0
        assert "triage" in capsys.readouterr().out

    def test_kernel_flag_does_not_change_output(self, tmp_path, capsys):
        argv = [
            "run",
            "xalan",
            "--config",
            "triangel",
            "--trace-length",
            "900",
            "--max-accesses",
            "400",
            "--no-cache",
        ]
        assert main(argv + ["--kernel", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(argv + ["--kernel", "fast"]) == 0
        assert capsys.readouterr().out == reference_out
