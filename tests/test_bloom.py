"""Unit tests for the Bloom filter and the Bloom-based partition sizer."""

from repro.triage.bloom import BloomFilter, BloomPartitionSizer


class TestBloomFilter:
    def test_insert_then_contains(self):
        bloom = BloomFilter(bits=1 << 10, hashes=3)
        assert bloom.insert(0x1234)
        assert bloom.contains(0x1234)

    def test_reinsert_reports_not_new(self):
        bloom = BloomFilter()
        bloom.insert(0x42)
        assert not bloom.insert(0x42)

    def test_unseen_value_usually_absent(self):
        bloom = BloomFilter(bits=1 << 12, hashes=4)
        for value in range(100):
            bloom.insert(value)
        misses = sum(1 for value in range(10_000, 10_100) if not bloom.contains(value))
        assert misses > 90

    def test_clear(self):
        bloom = BloomFilter()
        bloom.insert(1)
        bloom.clear()
        assert not bloom.contains(1)
        assert bloom.inserted == 0

    def test_false_positive_rate_grows_with_load(self):
        bloom = BloomFilter(bits=256, hashes=2)
        early = bloom.false_positive_rate()
        for value in range(200):
            bloom.insert(value)
        assert bloom.false_positive_rate() > early


class TestBloomPartitionSizer:
    def test_grows_with_unique_addresses(self):
        sizer = BloomPartitionSizer(entries_per_way=16, max_ways=4, window=1000)
        decision = None
        for index in range(40):
            result = sizer.observe(index * 64)
            if result is not None:
                decision = result
        assert decision is not None
        assert sizer.current_ways >= 2

    def test_capped_at_max_ways(self):
        sizer = BloomPartitionSizer(entries_per_way=4, max_ways=3, window=10_000)
        for index in range(500):
            sizer.observe(index * 64)
        assert sizer.current_ways == 3

    def test_repeated_addresses_do_not_grow(self):
        sizer = BloomPartitionSizer(entries_per_way=16, max_ways=4, window=1000)
        for _ in range(200):
            sizer.observe(0x1000)
        assert sizer.current_ways <= 1

    def test_window_reset_allows_shrink(self):
        sizer = BloomPartitionSizer(entries_per_way=8, max_ways=4, window=64)
        for index in range(64):
            sizer.observe(index * 64)
        grown = sizer.current_ways
        assert grown >= 2
        # Second window: a single hot address; at the boundary the partition shrinks.
        decision = None
        for _ in range(64):
            result = sizer.observe(0x5000)
            if result is not None:
                decision = result
        assert sizer.current_ways <= grown
        assert decision is not None or sizer.current_ways == grown

    def test_bias_factor_overallocates(self):
        plain = BloomPartitionSizer(entries_per_way=32, max_ways=8, window=10_000, bias=1.0)
        biased = BloomPartitionSizer(entries_per_way=32, max_ways=8, window=10_000, bias=1.5)
        for index in range(100):
            plain.observe(index * 64)
            biased.observe(index * 64)
        assert biased.current_ways >= plain.current_ways

    def test_required_ways_rounding(self):
        sizer = BloomPartitionSizer(entries_per_way=10, max_ways=8, window=1000)
        for index in range(11):
            sizer.observe(index * 64)
        assert sizer.required_ways() == 2
