"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory.cache import SetAssociativeCache


def make_cache(size=1024, assoc=2, policy="lru"):
    return SetAssociativeCache("test", size, assoc, 64, policy)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=1024, assoc=2)
        assert cache.num_sets == 8
        assert cache.capacity_lines == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", 1000, 3, 64)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", 0, 2, 64)

    def test_locate_splits_set_and_tag(self):
        cache = make_cache()
        set_a, tag_a = cache.locate(0)
        set_b, tag_b = cache.locate(cache.num_sets * 64)
        assert set_a == set_b == 0
        assert tag_b == tag_a + 1


class TestAccessAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x100).hit
        cache.fill(0x100)
        assert cache.access(0x100).hit

    def test_probe_does_not_change_state(self):
        cache = make_cache()
        cache.fill(0x0)
        cache.fill(0x200)  # same set (8 sets * 64 = 0x200 stride)
        before = cache.stats.hits
        assert cache.probe(0x0)
        assert cache.stats.hits == before

    def test_eviction_on_conflict(self):
        cache = make_cache(size=256, assoc=2)  # 2 sets
        base = 0x0
        stride = cache.num_sets * 64
        cache.fill(base)
        cache.fill(base + stride)
        victim = cache.fill(base + 2 * stride)
        assert victim is not None
        assert victim.address == base  # LRU

    def test_eviction_reports_dirty(self):
        cache = make_cache(size=256, assoc=1)
        cache.fill(0x0, is_write=True)
        victim = cache.fill(cache.num_sets * 64)
        assert victim is not None and victim.dirty
        assert cache.stats.writebacks == 1

    def test_refill_resident_line_does_not_evict(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.fill(0x40) is None

    def test_write_marks_dirty(self):
        cache = make_cache()
        cache.fill(0x80)
        cache.access(0x80, is_write=True)
        assert cache.get_line(0x80).dirty

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x100)
        assert cache.invalidate(0x100)
        assert not cache.probe(0x100)
        assert not cache.invalidate(0x100)

    def test_mark_dirty(self):
        cache = make_cache()
        cache.fill(0xC0)
        assert cache.mark_dirty(0xC0)
        assert not cache.mark_dirty(0x1C0)

    def test_resident_line_addresses_roundtrip(self):
        cache = make_cache()
        addresses = [0x0, 0x40, 0x80]
        for address in addresses:
            cache.fill(address)
        assert set(cache.resident_line_addresses()) == set(addresses)


class TestPrefetchTagging:
    def test_first_use_reported_once(self):
        # access() returns a per-cache scratch outcome, so each one must be
        # read before the next access on the same cache.
        cache = make_cache()
        cache.fill(0x300, prefetched=True)
        assert cache.access(0x300).first_prefetch_use
        assert not cache.access(0x300).first_prefetch_use
        assert cache.stats.prefetch_first_uses == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = make_cache(size=256, assoc=1)
        cache.fill(0x0, prefetched=True)
        cache.fill(cache.num_sets * 64)  # evicts the unused prefetch
        assert cache.stats.prefetched_evicted_unused == 1

    def test_used_prefetch_eviction_not_counted(self):
        cache = make_cache(size=256, assoc=1)
        cache.fill(0x0, prefetched=True)
        cache.access(0x0)
        cache.fill(cache.num_sets * 64)
        assert cache.stats.prefetched_evicted_unused == 0

    def test_ready_cycle_propagated(self):
        cache = make_cache()
        cache.fill(0x40, prefetched=True, ready_cycle=500.0)
        outcome = cache.access(0x40)
        assert outcome.ready_cycle == 500.0

    def test_demand_fill_over_prefetch_keeps_flag(self):
        cache = make_cache()
        cache.fill(0x40, prefetched=True, ready_cycle=100.0)
        cache.fill(0x40)  # racing demand fill
        assert cache.access(0x40).first_prefetch_use


class TestStats:
    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0x0)
        cache.fill(0x0)
        cache.access(0x0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = make_cache()
        cache.access(0x0)
        cache.stats.reset()
        assert cache.stats.accesses == 0
