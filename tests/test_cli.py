"""Tests for the command-line interface."""

import pytest

from repro.cli import ANALYTIC_COMMANDS, FIGURE_COMMANDS, build_parser, main
from repro.experiments.runner import clear_caches


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "xalan", "--config", "triangel", "--max-accesses", "500"]
        )
        assert args.workload == "xalan"
        assert args.config == ["triangel"]
        assert args.max_accesses == 500

    def test_figure_choices_cover_all_figures(self):
        parser = build_parser()
        for name in list(FIGURE_COMMANDS) + list(ANALYTIC_COMMANDS):
            args = parser.parse_args(["figure", name])
            assert args.name == name

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list_prints_workloads_and_configs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "xalan" in output
        assert "triangel" in output

    def test_run_prints_metrics_table(self, capsys):
        clear_caches()
        code = main(
            [
                "run",
                "xalan",
                "--config",
                "triage",
                "--trace-length",
                "2000",
                "--max-accesses",
                "800",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "triage" in output

    def test_figure_table1_is_analytic_and_fast(self, capsys):
        assert main(["figure", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Training Table" in output

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "L3 Cache" in capsys.readouterr().out


class TestExecutionOptions:
    def test_jobs_and_cache_dir_accepted(self, tmp_path):
        args = build_parser().parse_args(
            ["figure", "fig10", "--jobs", "4", "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 4
        assert args.cache_dir == str(tmp_path)

    def test_run_populates_named_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run",
            "xalan",
            "--config",
            "triage",
            "--trace-length",
            "1200",
            "--max-accesses",
            "500",
            "--cache-dir",
            cache,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "show", "--cache-dir", cache]) == 0
        output = capsys.readouterr().out
        assert "entries: 2" in output  # baseline + triage

    def test_cache_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(
            [
                "run",
                "xalan",
                "--trace-length",
                "1200",
                "--max-accesses",
                "400",
                "--cache-dir",
                cache,
            ]
        )
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "cleared 3" in capsys.readouterr().out  # baseline, triage, triangel

    def test_cache_show_lists_record_kinds(self, tmp_path, capsys):
        """Acceptance: multiprogram and replacement-study records are listed."""

        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.store import ResultStore

        cache = tmp_path / "cache"
        runner = ExperimentRunner(
            max_accesses=300,
            trace_overrides={"length": 600},
            warmup_fraction=0.2,
            store=ResultStore(cache),
        )
        runner.run("xalan", "baseline")
        runner.run("xalan", "triage-hawkeye", config_params={"max_entries": 64})
        runner.run_multiprogram(("xalan", "omnet"), "baseline", 150)

        assert main(["cache", "show", "--cache-dir", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "entries: 3" in output
        assert "run records:" in output
        assert "parameterised run records:" in output
        assert "multiprogram records:" in output
        assert "xalan × triage-hawkeye [max_entries=64]" in output
        assert "xalan + omnet × baseline" in output

    def test_no_cache_bypasses_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run",
            "xalan",
            "--config",
            "triage",
            "--trace-length",
            "1200",
            "--max-accesses",
            "400",
            "--cache-dir",
            cache,
            "--no-cache",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        main(["cache", "show", "--cache-dir", cache])
        assert "entries: 0" in capsys.readouterr().out
