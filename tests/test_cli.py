"""Tests for the command-line interface."""

import pytest

from repro.cli import ANALYTIC_COMMANDS, FIGURE_COMMANDS, build_parser, main
from repro.experiments.runner import clear_caches


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "xalan", "--config", "triangel", "--max-accesses", "500"]
        )
        assert args.workload == "xalan"
        assert args.config == ["triangel"]
        assert args.max_accesses == 500

    def test_figure_choices_cover_all_figures(self):
        parser = build_parser()
        for name in list(FIGURE_COMMANDS) + list(ANALYTIC_COMMANDS):
            args = parser.parse_args(["figure", name])
            assert args.name == name

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list_prints_workloads_and_configs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "xalan" in output
        assert "triangel" in output

    def test_run_prints_metrics_table(self, capsys):
        clear_caches()
        code = main(
            [
                "run",
                "xalan",
                "--config",
                "triage",
                "--trace-length",
                "2000",
                "--max-accesses",
                "800",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "triage" in output

    def test_figure_table1_is_analytic_and_fast(self, capsys):
        assert main(["figure", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Training Table" in output

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "L3 Cache" in capsys.readouterr().out


class TestStudyCommands:
    def test_study_list_names_every_study(self, capsys):
        from repro.experiments.studies import STUDIES

        assert main(["study", "list"]) == 0
        output = capsys.readouterr().out
        for name in STUDIES.names():
            assert name in output

    def test_study_describe_shows_axes(self, capsys):
        assert main(["study", "describe", "fig16"]) == 0
        output = capsys.readouterr().out
        assert "multiprogram" in output
        assert "xalan & omnet" in output
        assert "batch:" in output

    def test_study_run_with_overrides(self, capsys):
        clear_caches()
        code = main(
            [
                "study",
                "run",
                "replacement-study",
                "--workloads",
                "xalan",
                "--set",
                "max_entries=64",
                "--trace-length",
                "1200",
                "--max-accesses",
                "500",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "capacity capped at 64 entries" in output
        assert "triage-hawkeye" in output
        assert "xalan" in output

    def test_study_run_name_lists_tolerate_whitespace(self, capsys):
        clear_caches()
        code = main(
            [
                "study",
                "run",
                "fig10",
                "--workloads",
                "xalan, mcf",
                "--configs",
                " triage ,triangel",
                "--trace-length",
                "1200",
                "--max-accesses",
                "400",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "xalan" in output and "mcf" in output

    def test_study_run_rejects_empty_name_lists(self, capsys):
        assert main(["study", "run", "fig10", "--workloads", ", "]) == 2
        assert "--workloads: no names given" in capsys.readouterr().err

    def test_study_run_rejects_max_accesses_on_multiprogram(self, capsys):
        assert main(["study", "run", "fig16", "--max-accesses", "500"]) == 2
        assert "--max-accesses does not apply" in capsys.readouterr().err

    def test_study_run_rejects_non_positive_trace_length(self, capsys):
        assert main(["study", "run", "fig10", "--trace-length", "0"]) == 2
        assert "--trace-length must be positive" in capsys.readouterr().err

    def test_validation_errors_exit_cleanly_not_with_tracebacks(self, capsys):
        """User input problems print one line to stderr and return 2."""

        assert main(["study", "run", "fig10", "--configs", "trianglee"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert "unknown configuration" in err

    def test_study_run_analytic(self, capsys):
        assert main(["study", "run", "table1"]) == 0
        assert "Training Table" in capsys.readouterr().out

    def test_study_run_requires_name_or_all(self, capsys):
        assert main(["study", "run"]) == 2
        assert "study name or --all" in capsys.readouterr().err

    def test_study_run_all_rejects_axis_overrides(self, capsys):
        assert main(["study", "run", "--all", "--set", "scale=0.5"]) == 2
        assert "does not take axis overrides" in capsys.readouterr().err

    def test_study_run_all_rejects_a_study_name(self, capsys):
        assert main(["study", "run", "fig10", "--all"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_study_run_all_rejects_truncation_flags(self, capsys):
        assert main(["study", "run", "--all", "--max-accesses", "500"]) == 2
        assert "truncation flags" in capsys.readouterr().err
        assert main(["study", "run", "--all", "--trace-length", "1000"]) == 2
        assert "truncation flags" in capsys.readouterr().err

    def test_study_run_no_cache_executes_each_cell_once(self, capsys):
        """--no-cache must not double-simulate (no store to warm up front)."""

        from unittest.mock import patch

        from repro.experiments.jobs import execute_spec

        calls = []

        def counting(spec, *args, **kwargs):
            calls.append(spec)
            return execute_spec(spec, *args, **kwargs)

        with patch("repro.experiments.parallel.execute", side_effect=counting):
            code = main(
                [
                    "study",
                    "run",
                    "fig10",
                    "--workloads",
                    "xalan",
                    "--configs",
                    "triangel",
                    "--trace-length",
                    "1200",
                    "--max-accesses",
                    "400",
                    "--no-cache",
                ]
            )
        assert code == 0
        assert "Figure 10" in capsys.readouterr().out
        assert len(calls) == len(set(calls)) == 2  # baseline + triangel, once each

    def test_study_run_no_cache_two_metric_study_executes_each_cell_once(self, capsys):
        """fig20's two-metric reduction must share one submission per cell."""

        from unittest.mock import patch

        from repro.experiments.jobs import execute_spec

        calls = []

        def counting(spec, *args, **kwargs):
            calls.append(spec)
            return execute_spec(spec, *args, **kwargs)

        with patch("repro.experiments.parallel.execute", side_effect=counting):
            code = main(
                [
                    "study",
                    "run",
                    "fig20",
                    "--workloads",
                    "xalan",
                    "--configs",
                    "ablation-Triage-Deg-4",
                    "--trace-length",
                    "1200",
                    "--max-accesses",
                    "400",
                    "--no-cache",
                ]
            )
        assert code == 0
        assert "Figure 20" in capsys.readouterr().out
        assert len(calls) == len(set(calls)) == 2  # baseline + one ladder step

    def test_unknown_study_rejected(self, capsys):
        assert main(["study", "describe", "fig99"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_list_shows_parameter_signatures(self, capsys):
        """Acceptance: parameterised configs are visible with signatures."""

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "triage-lru(max_entries=1024)" in output
        assert "Studies:" in output
        assert "replacement-study" in output


class TestTraceCommands:
    """The ``repro trace record|import|info|sample`` workflow end-to-end."""

    @pytest.fixture(autouse=True)
    def _trace_dir(self, tmp_path, monkeypatch):
        from repro.experiments.jobs import clear_trace_memo
        from repro.traces.format import clear_digest_memo

        self.directory = tmp_path / "traces"
        self.directory.mkdir()
        monkeypatch.setenv("REPRO_TRACE_DIR", str(self.directory))
        clear_trace_memo()
        clear_digest_memo()
        yield
        clear_trace_memo()

    def test_record_writes_to_the_search_path(self, capsys):
        code = main(["trace", "record", "pointer_chase", "--override", "nodes=32"])
        assert code == 0
        output = capsys.readouterr().out
        assert "trace:pointer_chase" in output
        assert (self.directory / "pointer_chase.rtrc").is_file()

    def test_prefixed_name_flag_is_normalised_to_the_bare_stem(self, tmp_path, capsys):
        """--name trace:leela means the workload name, not a literal stem."""

        source = tmp_path / "dump.trace"
        source.write_text("0x1 0x40 L\n0x2 0x80 L\n")
        assert main(["trace", "import", str(source), "--name", "trace:leela"]) == 0
        output = capsys.readouterr().out
        assert "workload trace:leela" in output
        assert "trace:trace:" not in output
        assert (self.directory / "leela.rtrc").is_file()
        assert main(["trace", "info", "trace:leela"]) == 0

    def test_rerecord_of_trace_workload_claims_single_prefix(self, capsys):
        assert main(["trace", "record", "pointer_chase", "--override", "nodes=8"]) == 0
        capsys.readouterr()
        assert main(["trace", "record", "trace:pointer_chase", "--gzip"]) == 0
        output = capsys.readouterr().out
        assert "workload trace:pointer_chase" in output
        assert "trace:trace:" not in output

    def test_record_unknown_workload_rejected(self, capsys):
        assert main(["trace", "record", "nonesuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_info_reports_header_and_footprint(self, capsys):
        assert main(["trace", "record", "sequential", "--length", "64"]) == 2
        capsys.readouterr()  # sequential takes `lines`, not `length`
        assert main(["trace", "record", "sequential", "--override", "lines=64"]) == 0
        capsys.readouterr()
        assert main(["trace", "info", "trace:sequential"]) == 0
        output = capsys.readouterr().out
        assert "accesses:     64" in output
        assert "unique lines: 64" in output
        assert "line shift 6" in output
        assert "recorded:" in output

    def test_import_then_run_workload(self, tmp_path, capsys):
        source = tmp_path / "dump.trace"
        source.write_text(
            "".join(f"0x400400 {hex(0x70000000 + (i % 40) * 64)} L\n" for i in range(1500))
        )
        assert main(["trace", "import", str(source), "--name", "ext"]) == 0
        capsys.readouterr()
        clear_caches()
        code = main(
            ["run", "trace:ext", "--config", "triage", "--max-accesses", "400"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workload: trace:ext" in output

    def test_sample_window_and_systematic(self, capsys):
        assert main(["trace", "record", "pointer_chase", "--override", "nodes=64"]) == 0
        capsys.readouterr()
        code = main(
            ["trace", "sample", "trace:pointer_chase", "--window", "10:100", "--name", "hot"]
        )
        assert code == 0
        assert "100 accesses" in capsys.readouterr().out
        code = main(
            ["trace", "sample", "trace:pointer_chase", "--every", "4", "--name", "thin"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "info", "trace:thin"]) == 0
        assert "sampled:" in capsys.readouterr().out

    def test_sample_requires_exactly_one_mode(self, capsys):
        assert main(["trace", "record", "pointer_chase"]) == 0
        capsys.readouterr()
        assert main(["trace", "sample", "trace:pointer_chase"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert (
            main(
                [
                    "trace",
                    "sample",
                    "trace:pointer_chase",
                    "--window",
                    "0:10",
                    "--block",
                    "4",
                ]
            )
            == 2
        )
        assert "--block/--offset apply to --every" in capsys.readouterr().err
        assert (
            main(
                [
                    "trace",
                    "sample",
                    "trace:pointer_chase",
                    "--window",
                    "0:10",
                    "--every",
                    "2",
                ]
            )
            == 2
        )

    def test_off_search_path_dir_does_not_claim_a_workload_name(
        self, tmp_path, capsys
    ):
        """--dir outside the search path must not advertise trace:<name>."""

        elsewhere = tmp_path / "elsewhere"
        code = main(
            ["trace", "record", "pointer_chase", "--dir", str(elsewhere)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workload trace:pointer_chase" not in output
        assert "not on the trace search path" in output
        assert "REPRO_TRACE_DIR" in output

    def test_missing_trace_errors_cleanly(self, capsys):
        assert main(["trace", "info", "trace:absent"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert "no trace file" in err

    def test_info_shows_header_for_foreign_line_shift_files(self, capsys):
        """`info` must diagnose files this build refuses to simulate."""

        assert main(["trace", "record", "pointer_chase", "--override", "nodes=8"]) == 0
        capsys.readouterr()
        path = self.directory / "pointer_chase.rtrc"
        data = bytearray(path.read_bytes())
        data[8] = 7  # the header's line-shift byte
        path.write_bytes(bytes(data))
        assert main(["trace", "info", "trace:pointer_chase"]) == 0
        output = capsys.readouterr().out
        assert "line shift 7" in output
        assert "header shown only" in output
        # Simulating it still fails loudly.
        assert main(["run", "trace:pointer_chase", "--config", "triage"]) == 2
        assert "line shift 7" in capsys.readouterr().err

    def test_study_runs_over_recorded_trace(self, capsys):
        assert main(["trace", "record", "pointer_chase", "--override", "nodes=64"]) == 0
        capsys.readouterr()
        clear_caches()
        code = main(
            [
                "study",
                "run",
                "fig10",
                "--workloads",
                "trace:pointer_chase",
                "--configs",
                "triangel",
                "--max-accesses",
                "400",
            ]
        )
        assert code == 0
        assert "trace:pointer_chase" in capsys.readouterr().out


class TestExecutionOptions:
    def test_jobs_and_cache_dir_accepted(self, tmp_path):
        args = build_parser().parse_args(
            ["figure", "fig10", "--jobs", "4", "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 4
        assert args.cache_dir == str(tmp_path)

    def test_run_populates_named_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run",
            "xalan",
            "--config",
            "triage",
            "--trace-length",
            "1200",
            "--max-accesses",
            "500",
            "--cache-dir",
            cache,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "show", "--cache-dir", cache]) == 0
        output = capsys.readouterr().out
        assert "entries: 2" in output  # baseline + triage

    def test_cache_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(
            [
                "run",
                "xalan",
                "--trace-length",
                "1200",
                "--max-accesses",
                "400",
                "--cache-dir",
                cache,
            ]
        )
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "cleared 3" in capsys.readouterr().out  # baseline, triage, triangel

    def test_cache_show_lists_record_kinds(self, tmp_path, capsys):
        """Acceptance: multiprogram and replacement-study records are listed."""

        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.store import ResultStore

        cache = tmp_path / "cache"
        runner = ExperimentRunner(
            max_accesses=300,
            trace_overrides={"length": 600},
            warmup_fraction=0.2,
            store=ResultStore(cache),
        )
        runner.run("xalan", "baseline")
        runner.run("xalan", "triage-hawkeye", config_params={"max_entries": 64})
        runner.run_multiprogram(("xalan", "omnet"), "baseline", 150)

        assert main(["cache", "show", "--cache-dir", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "entries: 3" in output
        assert "run records:" in output
        assert "parameterised run records:" in output
        assert "multiprogram records:" in output
        assert "xalan × triage-hawkeye [max_entries=64]" in output
        assert "xalan + omnet × baseline" in output

    def test_no_cache_bypasses_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run",
            "xalan",
            "--config",
            "triage",
            "--trace-length",
            "1200",
            "--max-accesses",
            "400",
            "--cache-dir",
            cache,
            "--no-cache",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        main(["cache", "show", "--cache-dir", cache])
        assert "entries: 0" in capsys.readouterr().out
