"""Tests for the command-line interface."""

import pytest

from repro.cli import ANALYTIC_COMMANDS, FIGURE_COMMANDS, build_parser, main
from repro.experiments.runner import clear_caches


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "xalan", "--config", "triangel", "--max-accesses", "500"]
        )
        assert args.workload == "xalan"
        assert args.config == ["triangel"]
        assert args.max_accesses == 500

    def test_figure_choices_cover_all_figures(self):
        parser = build_parser()
        for name in list(FIGURE_COMMANDS) + list(ANALYTIC_COMMANDS):
            args = parser.parse_args(["figure", name])
            assert args.name == name

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list_prints_workloads_and_configs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "xalan" in output
        assert "triangel" in output

    def test_run_prints_metrics_table(self, capsys):
        clear_caches()
        code = main(
            [
                "run",
                "xalan",
                "--config",
                "triage",
                "--trace-length",
                "2000",
                "--max-accesses",
                "800",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "triage" in output

    def test_figure_table1_is_analytic_and_fast(self, capsys):
        assert main(["figure", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Training Table" in output

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "L3 Cache" in capsys.readouterr().out
