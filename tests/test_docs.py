"""Tests keeping the documentation honest.

Runs the same link checker the CI docs job uses, and cross-checks the
figure-reproduction guide against the CLI's actual figure registry so the
table can never drift from the commands it documents.
"""

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class TestDocs:
    def test_doc_pages_exist(self):
        assert (ROOT / "docs" / "architecture.md").exists()
        assert (ROOT / "docs" / "reproducing-figures.md").exists()
        assert (ROOT / "docs" / "traces.md").exists()

    def test_markdown_links_resolve(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_reproducing_figures_covers_every_figure_command(self):
        """Every `repro figure NAME` choice appears in the reproduction guide."""

        from repro.cli import ANALYTIC_COMMANDS, FIGURE_COMMANDS

        text = (ROOT / "docs" / "reproducing-figures.md").read_text()
        for name in list(FIGURE_COMMANDS) + list(ANALYTIC_COMMANDS):
            assert f"repro figure {name}" in text, f"{name} missing from the guide"

    def test_guide_mentions_only_real_figure_commands(self):
        from repro.cli import ANALYTIC_COMMANDS, FIGURE_COMMANDS

        known = set(FIGURE_COMMANDS) | set(ANALYTIC_COMMANDS)
        text = (ROOT / "docs" / "reproducing-figures.md").read_text()
        for name in re.findall(r"repro figure ([\w-]+)", text):
            assert name in known, f"guide documents unknown figure {name!r}"

    def test_readme_links_to_both_doc_pages(self):
        text = (ROOT / "README.md").read_text()
        assert "docs/architecture.md" in text
        assert "docs/reproducing-figures.md" in text

    def test_studies_registry_in_sync_with_guide(self):
        """Both directions of check_docs.py's STUDIES cross-check hold.

        Calls the checker's own ``check_studies`` (rather than duplicating
        its regex here), so the test and CI can never enforce different
        rules.
        """

        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_docs", ROOT / "tools" / "check_docs.py"
        )
        check_docs = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_docs)
        assert check_docs.check_studies(ROOT) == []
