"""Unit tests for the DRAM traffic/energy/bandwidth model."""

import pytest

from repro.memory.dram import DramModel


class TestTrafficAccounting:
    def test_counts_by_kind(self):
        dram = DramModel()
        dram.access(0.0)
        dram.access(10.0, is_write=True)
        dram.access(20.0, is_prefetch=True)
        assert dram.stats.demand_reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.prefetch_fills == 1
        assert dram.total_accesses == 3

    def test_energy_uses_25_unit_cost(self):
        dram = DramModel(energy_per_access=25.0)
        for _ in range(4):
            dram.access(0.0)
        assert dram.energy == 100.0

    def test_reset(self):
        dram = DramModel()
        dram.access(0.0)
        dram.reset()
        assert dram.total_accesses == 0
        assert dram.energy == 0.0


class TestBandwidthModel:
    def test_idle_channel_has_base_latency(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        assert dram.access(1000.0) == pytest.approx(100.0)

    def test_back_to_back_accesses_queue(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        first = dram.access(0.0)
        second = dram.access(0.0)
        third = dram.access(0.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(110.0)
        assert third == pytest.approx(120.0)
        assert dram.stats.total_wait_cycles == pytest.approx(30.0)

    def test_spaced_accesses_do_not_queue(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        dram.access(0.0)
        assert dram.access(50.0) == pytest.approx(100.0)


class TestBatchedAccounting:
    """The accumulator-batched counters flush transparently through ``stats``."""

    def test_mid_run_reads_are_flushed_and_idempotent(self):
        dram = DramModel()
        dram.access(0.0)
        assert dram.stats.demand_reads == 1
        assert dram.stats.demand_reads == 1  # re-reading never double-counts
        dram.access(0.0, is_write=True)
        dram.access(0.0, is_prefetch=True)
        snapshot = dram.stats
        assert snapshot.writes == 1
        assert snapshot.prefetch_fills == 1
        assert snapshot.total_accesses == 3

    def test_stats_object_identity_is_stable(self):
        """Holders of a ``stats`` reference (the sharded kernel's counter
        snapshots read it repeatedly) see updates in place — the flush
        target is one long-lived DramStats, not a fresh copy per read."""

        dram = DramModel()
        held = dram.stats
        dram.access(5.0, is_prefetch=True)
        assert dram.stats is held
        assert held.prefetch_fills == 1

    def test_wait_accumulates_identically_to_per_access_bookkeeping(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        expected = 0.0
        next_free = 0.0
        for now in (0.0, 0.0, 3.0, 40.0):
            expected += max(0.0, next_free - now)
            next_free = now + max(0.0, next_free - now) + 10.0
            dram.access(now)
        assert dram.stats.total_wait_cycles == expected  # bit-identical

    def test_reset_clears_accumulators_and_flush_target(self):
        dram = DramModel()
        dram.access(0.0)
        held = dram.stats
        dram.reset()
        assert dram.total_accesses == 0
        assert held.demand_reads == 0
        assert dram.stats.total_wait_cycles == 0.0
