"""Unit tests for the DRAM traffic/energy/bandwidth model."""

import pytest

from repro.memory.dram import DramModel


class TestTrafficAccounting:
    def test_counts_by_kind(self):
        dram = DramModel()
        dram.access(0.0)
        dram.access(10.0, is_write=True)
        dram.access(20.0, is_prefetch=True)
        assert dram.stats.demand_reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.prefetch_fills == 1
        assert dram.total_accesses == 3

    def test_energy_uses_25_unit_cost(self):
        dram = DramModel(energy_per_access=25.0)
        for _ in range(4):
            dram.access(0.0)
        assert dram.energy == 100.0

    def test_reset(self):
        dram = DramModel()
        dram.access(0.0)
        dram.reset()
        assert dram.total_accesses == 0
        assert dram.energy == 0.0


class TestBandwidthModel:
    def test_idle_channel_has_base_latency(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        assert dram.access(1000.0) == pytest.approx(100.0)

    def test_back_to_back_accesses_queue(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        first = dram.access(0.0)
        second = dram.access(0.0)
        third = dram.access(0.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(110.0)
        assert third == pytest.approx(120.0)
        assert dram.stats.total_wait_cycles == pytest.approx(30.0)

    def test_spaced_accesses_do_not_queue(self):
        dram = DramModel(latency_cycles=100.0, occupancy_cycles=10.0)
        dram.access(0.0)
        assert dram.access(50.0) == pytest.approx(100.0)
